//! Quickstart: the paper's running example (graph G1, query Q1) end to
//! end — build an ExtVP store, inspect its partitions and statistics, run
//! Q1, and reproduce the join-comparison numbers of Figs. 8 and 12.
//!
//! Run with: `cargo run --release --example quickstart`

use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_model::{Graph, Term, Triple};

fn main() {
    // The RDF graph G1 of Fig. 1: a tiny social network.
    let edge = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
    let graph = Graph::from_triples([
        edge("A", "follows", "B"),
        edge("B", "follows", "C"),
        edge("B", "follows", "D"),
        edge("C", "follows", "D"),
        edge("A", "likes", "I1"),
        edge("A", "likes", "I2"),
        edge("C", "likes", "I2"),
    ]);

    // Build the store: VP tables + every ExtVP semi-join reduction.
    let store = S2rdfStore::build(&graph, &BuildOptions::default());
    println!(
        "G1: {} triples, {} predicates",
        graph.len(),
        store.catalog().num_predicates()
    );
    println!(
        "VP tuples: {}, materialized ExtVP tables: {} ({} tuples)",
        store.vp_tuples(),
        store.num_extvp_tables(),
        store.extvp_tuples()
    );
    println!("\nExtVP statistics (the paper's Fig. 10):");
    for (key, stat) in store.catalog().extvp_stats() {
        println!(
            "  {:<2} {} | {}  SF = {:.2}{}",
            key.corr.label(),
            store.dict().term(s2rdf_model::TermId(key.p1)),
            store.dict().term(s2rdf_model::TermId(key.p2)),
            stat.sf,
            if stat.materialized {
                ""
            } else {
                "  (not stored)"
            },
        );
    }

    // Q1: "friends of friends who like the same things" (§2.1).
    let q1 = "SELECT * WHERE {
        ?x <likes> ?w . ?x <follows> ?y .
        ?y <follows> ?z . ?z <likes> ?w
    }";
    let solutions = store.query(q1).expect("Q1 runs");
    println!("\nQ1 solutions ({}):\n{solutions}", solutions.len());

    // Fig. 8: ExtVP cuts the naive join comparisons of the 2-pattern chain
    // from 12 (VP) to 1.
    let chain = "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }";
    let (_, ext) = store
        .engine(true)
        .query_opt(chain, &Default::default())
        .unwrap();
    let (_, vp) = store
        .engine(false)
        .query_opt(chain, &Default::default())
        .unwrap();
    println!(
        "Fig. 8 — chain join comparisons: VP = {}, ExtVP = {}",
        vp.naive_join_comparisons, ext.naive_join_comparisons
    );

    // Fig. 12: join-order optimization cuts Q1 from 10 to 6 comparisons.
    let engine = store.engine(true);
    let (_, unopt) = engine
        .query_opt(
            q1,
            &QueryOptions {
                optimize_join_order: false,
                ..Default::default()
            },
        )
        .unwrap();
    let (_, opt) = engine.query_opt(q1, &QueryOptions::default()).unwrap();
    println!(
        "Fig. 12 — Q1 join comparisons: as-written = {}, optimized = {}",
        unopt.naive_join_comparisons, opt.naive_join_comparisons
    );
    println!("\nTables chosen for Q1 (optimized order):");
    for step in &opt.bgp_steps {
        println!("  {} ({} rows, SF {:.2})", step.table, step.rows, step.sf);
    }
}
