//! Social-network analytics on generated WatDiv-style data: the
//! friend-of-a-friend linear chains the paper's intro motivates, comparing
//! the ExtVP and VP execution paths.
//!
//! Run with: `cargo run --release --example social_network`

use std::time::Instant;

use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::{generate, Config};

const PREFIXES: &str = "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX sorg: <http://schema.org/>
PREFIX foaf: <http://xmlns.com/foaf/>
PREFIX rev: <http://purl.org/stuff/rev#>
";

fn main() {
    println!("generating a WatDiv-style social graph (SF1 ≈ 100K triples)…");
    let data = generate(&Config { scale: 1, seed: 42 });
    println!("  {} triples", data.graph.len());

    let build_start = Instant::now();
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    println!(
        "  store built in {:.2?}: {} VP tables, {} ExtVP tables\n",
        build_start.elapsed(),
        store.catalog().num_predicates(),
        store.num_extvp_tables()
    );

    let queries: &[(&str, String)] = &[
        (
            "who do influencers' friends follow? (linear, diameter 3)",
            format!(
                "{PREFIXES}SELECT ?a ?c WHERE {{
                    ?a wsdbm:friendOf ?b .
                    ?b wsdbm:follows ?c .
                    ?c sorg:jobTitle ?t .
                }} LIMIT 10"
            ),
        ),
        (
            "reviewers reachable from user 5's follow list (diameter 4)",
            format!(
                "{PREFIXES}SELECT ?v ?review WHERE {{
                    wsdbm:User5 wsdbm:follows ?v .
                    ?v wsdbm:likes ?product .
                    ?product rev:hasReview ?review .
                    ?review rev:reviewer ?reviewer .
                }} LIMIT 10"
            ),
        ),
        (
            "mutual-interest pairs (the paper's Q1 shape on real data)",
            format!(
                "{PREFIXES}SELECT ?x ?z ?w WHERE {{
                    ?x wsdbm:likes ?w .
                    ?x wsdbm:follows ?y .
                    ?y wsdbm:follows ?z .
                    ?z wsdbm:likes ?w .
                }} LIMIT 10"
            ),
        ),
    ];

    let extvp = store.engine(true);
    let vp = store.engine(false);
    for (label, query) in queries {
        println!("== {label}");
        let start = Instant::now();
        let (solutions, explain) = extvp.query_opt(query, &Default::default()).unwrap();
        let ext_time = start.elapsed();
        let start = Instant::now();
        let (vp_solutions, _) = vp.query_opt(query, &Default::default()).unwrap();
        let vp_time = start.elapsed();
        assert_eq!(solutions.canonical(), vp_solutions.canonical());
        println!(
            "   {} solutions — ExtVP {:.2?} vs VP {:.2?}",
            solutions.len(),
            ext_time,
            vp_time
        );
        for step in &explain.bgp_steps {
            println!(
                "   scan {} → {} rows (SF {:.2})",
                step.table, step.rows, step.sf
            );
        }
        println!();
    }
}
