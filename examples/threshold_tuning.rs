//! SF-threshold tuning walkthrough (paper §5.3 / §7.4): sweep the
//! selectivity threshold, showing the storage-vs-performance trade-off and
//! why the paper recommends `SF_TH = 0.25`.
//!
//! Run with: `cargo run --release --example threshold_tuning`

use std::time::Instant;

use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::{generate, Config, Workload};

fn main() {
    println!("generating WatDiv-style data (SF1)…\n");
    let data = generate(&Config { scale: 1, seed: 42 });
    let basic = Workload::basic_testing();

    // A mixed bag of queries, one per category.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let queries: Vec<(String, String)> = ["L2", "S3", "F5", "C3"]
        .iter()
        .map(|name| {
            (
                name.to_string(),
                basic.get(name).unwrap().instantiate(&data, &mut rng),
            )
        })
        .collect();

    println!(
        "{:>6}  {:>8}  {:>10}  {:>12}  {:>12}",
        "SF_TH", "#tables", "#tuples", "build time", "workload time"
    );
    for threshold in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let build_start = Instant::now();
        let store = S2rdfStore::build(
            &data.graph,
            &BuildOptions {
                threshold,
                build_extvp: true,
                ..Default::default()
            },
        );
        let build_time = build_start.elapsed();
        let engine = store.engine(true);

        // Warm-up + measured pass over the query mix.
        for (_, q) in &queries {
            engine.query(q).unwrap();
        }
        let run_start = Instant::now();
        for _ in 0..3 {
            for (_, q) in &queries {
                engine.query(q).unwrap();
            }
        }
        let run_time = run_start.elapsed() / 3;

        println!(
            "{:>6.2}  {:>8}  {:>10}  {:>12.2?}  {:>12.2?}",
            threshold,
            store.num_extvp_tables(),
            store.vp_tuples() + store.extvp_tuples(),
            build_time,
            run_time,
        );
    }

    println!("\nReading the table: SF_TH = 0 is plain VP (smallest, slowest);");
    println!("SF_TH = 0.25 keeps only the highly selective reductions and already");
    println!("captures most of the speedup — the paper's recommended setting;");
    println!("SF_TH = 1.0 stores every proper reduction for the best runtimes.");
}
