//! E-commerce analytics: the star/snowflake retailer workload WatDiv
//! models, including OPTIONAL, FILTER, ORDER BY and UNION — the full
//! SPARQL 1.0 surface S2RDF supports.
//!
//! Run with: `cargo run --release --example ecommerce`

use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::{generate, Config};

const PREFIXES: &str = "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX sorg: <http://schema.org/>
PREFIX gr: <http://purl.org/goodrelations/>
PREFIX og: <http://ogp.me/ns#>
PREFIX rev: <http://purl.org/stuff/rev#>
";

fn main() {
    println!("generating the WatDiv-style shop (SF1)…");
    let data = generate(&Config { scale: 1, seed: 42 });
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let engine = store.engine(true);

    // A star query over offers (the paper's S1 shape): everything retailer
    // 0 currently offers, with prices.
    let offers = format!(
        "{PREFIXES}SELECT ?offer ?product ?price WHERE {{
            wsdbm:Retailer0 gr:offers ?offer .
            ?offer gr:includes ?product .
            ?offer gr:price ?price .
        }} ORDER BY ?price LIMIT 5"
    );
    let cheap = engine.query(&offers).unwrap();
    println!(
        "\ncheapest offers from Retailer0 ({} shown):\n{cheap}",
        cheap.len()
    );

    // A snowflake (the paper's F5 shape) with an OPTIONAL: offered products
    // with their titles, review counts optional.
    let snowflake = format!(
        "{PREFIXES}SELECT ?product ?title ?review WHERE {{
            ?offer gr:includes ?product .
            wsdbm:Retailer1 gr:offers ?offer .
            ?product og:title ?title .
            OPTIONAL {{ ?product rev:hasReview ?review }}
        }} ORDER BY ?title LIMIT 8"
    );
    let catalog = engine.query(&snowflake).unwrap();
    let reviewed = (0..catalog.len())
        .filter(|&i| catalog.binding(i, "review").is_some())
        .count();
    println!(
        "Retailer1 catalogue sample: {} products, {reviewed} with reviews",
        catalog.len()
    );

    // UNION + FILTER: products attributed to a person as author or editor,
    // keeping only large content.
    let attributed = format!(
        "{PREFIXES}SELECT ?product ?person ?size WHERE {{
            {{ ?product sorg:author ?person }} UNION {{ ?product sorg:editor ?person }}
            ?product sorg:contentSize ?size .
            FILTER(?size >= 5000)
        }} ORDER BY ?size LIMIT 5"
    );
    let heavy = engine.query(&attributed).unwrap();
    println!("\nlarge attributed products:\n{heavy}");

    // Aggregation (SPARQL 1.1, the paper's future work): offers per
    // retailer with average price.
    let per_retailer = format!(
        "{PREFIXES}SELECT ?r (COUNT(?offer) AS ?n) (AVG(?price) AS ?avg) WHERE {{
            ?r gr:offers ?offer .
            ?offer gr:price ?price .
        }} GROUP BY ?r ORDER BY DESC(?n)"
    );
    let stats = engine.query(&per_retailer).unwrap();
    println!(
        "
offers per retailer (top {}):
{stats}",
        stats.len()
    );

    // The empty-result fast path (§6.1): offers never "like" anything, so
    // the statistics alone prove this query empty — no scan runs.
    let impossible = format!(
        "{PREFIXES}SELECT * WHERE {{
            ?r gr:offers ?o .
            ?o wsdbm:likes ?x .
        }}"
    );
    let (none, explain) = engine.query_opt(&impossible, &Default::default()).unwrap();
    assert!(none.is_empty());
    println!(
        "impossible correlation: {} results, proven empty from statistics: {}",
        none.len(),
        explain.statically_empty
    );
}
