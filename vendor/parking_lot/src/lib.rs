//! Minimal in-tree `parking_lot`: `Mutex`/`RwLock` with the parking_lot
//! API shape (no poisoning, guards returned without `Result`), implemented
//! over `std::sync`. See `vendor/README.md`.

use std::fmt;

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Reader-writer lock; lock methods never return poisoned errors (a
/// panicked holder's data is handed over as-is, like parking_lot).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Mutual-exclusion lock; [`Mutex::lock`] never returns poisoned errors.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
