//! Minimal in-tree `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for named-field structs and unit-variant enums, supporting the
//! `#[serde(with = "module")]` and `#[serde(default)]` field attributes.
//! Parses the token stream directly (no `syn`/`quote`) and emits impls of
//! the Content-tree traits defined by the in-tree `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    with: Option<String>,
    default: bool,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<String>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Extracts `with`/`default` from a `#[serde(...)]` attribute body.
fn parse_serde_attr(group: &proc_macro::Group, with: &mut Option<String>, default: &mut bool) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    // Attribute shape: serde ( ... )
    if inner.first().map(|t| t.to_string()) != Some("serde".to_string()) {
        return;
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().clone().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                *default = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "path"
                if let Some(TokenTree::Literal(lit)) = args.get(i + 2) {
                    let raw = lit.to_string();
                    *with = Some(raw.trim_matches('"').to_string());
                }
                i += 3;
            }
            _ => i += 1,
        }
    }
}

/// Skips attributes at `i`, collecting serde attrs; returns the new index.
fn skip_attrs(
    tokens: &[TokenTree],
    mut i: usize,
    with: &mut Option<String>,
    default: &mut bool,
) -> usize {
    while i < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else { break };
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            parse_serde_attr(g, with, default);
        }
        i += 2;
    }
    i
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut with = None;
        let mut default = false;
        i = skip_attrs(&tokens, i, &mut with, &mut default);
        if i >= tokens.len() {
            break;
        }
        // Optional visibility: `pub` possibly followed by `(...)`.
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1; // name
        i += 1; // ':'
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, with, default });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut with = None;
        let mut default = false;
        i = skip_attrs(&tokens, i, &mut with, &mut default);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => panic!("serde_derive: expected enum variant, found {other}"),
        }
        i += 1;
        // Only unit variants are supported; any payload group is an error.
        if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
            panic!("serde_derive: only unit enum variants are supported");
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip leading attributes (doc comments etc.) and visibility.
    loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                break;
            }
            _ => i += 1,
        }
    }
    let is_struct = tokens[i].to_string() == "struct";
    let name = tokens[i + 1].to_string();
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("serde_derive: no braced body on `{name}` (named-field structs and unit enums only)"));
    let kind = if is_struct {
        Kind::Struct(parse_fields(body))
    } else {
        Kind::Enum(parse_variants(body))
    };
    Input { name, kind }
}

/// Derives the Content-tree `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let fname = &f.name;
                let value = match &f.with {
                    Some(path) => format!(
                        "match {path}::serialize(&self.{fname}, ::serde::ContentSerializer) {{ \
                         Ok(c) => c, \
                         Err(e) => ::serde::Content::Str(format!(\"<serialize error: {{e}}>\")) }}"
                    ),
                    None => format!("::serde::Serialize::to_content(&self.{fname})"),
                };
                pushes.push_str(&format!(
                    "fields.push((String::from(\"{fname}\"), {value}));\n"
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Content)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Content::Map(fields)"
            )
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Content::Str(String::from(\"{v}\")),\n"))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the Content-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                let init = match (&f.with, f.default) {
                    (Some(path), _) => format!(
                        "{fname}: {path}::deserialize(::serde::ContentDeserializer::new(\
                         ::serde::__require_field(&mut entries, \"{fname}\")?))?,\n"
                    ),
                    (None, true) => format!(
                        "{fname}: match ::serde::__take_field(&mut entries, \"{fname}\") {{ \
                         Some(c) => ::serde::Deserialize::from_content(c)?, \
                         None => Default::default() }},\n"
                    ),
                    (None, false) => format!(
                        "{fname}: ::serde::Deserialize::from_content(\
                         ::serde::__require_field(&mut entries, \"{fname}\")?)?,\n"
                    ),
                };
                inits.push_str(&init);
            }
            format!(
                "let mut entries = content.into_map_entries()?;\n\
                 let _ = &mut entries;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "match content {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant {{other:?}}\"))),\n\
                 }},\n\
                 _ => Err(::serde::Error::custom(String::from(\
                 \"expected string for enum {name}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_content(content: ::serde::Content) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}
