//! Minimal in-tree `rustc-hash`: the FxHash algorithm behind
//! `FxHashMap`/`FxHashSet`. See `vendor/README.md` for why this exists.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: multiply-xor-rotate per machine word. Fast for small
/// integer-ish keys; not DoS-resistant (neither is upstream).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final mix so high bits depend on the whole state (std's HashMap
        // uses the top 7 bits for SIMD tag bytes).
        let h = self.hash;
        h ^ (h >> 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&7], 14);
        let s: FxHashSet<u64> = (0..100u64).collect();
        assert!(s.contains(&42));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(1), h(1));
        assert_ne!(h(1), h(2));
        // Low-bit-only inputs must differ in low output bits (HashMap
        // buckets use the low bits).
        assert_ne!(h(1) & 0xff, h(2) & 0xff);
    }
}
