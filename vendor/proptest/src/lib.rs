//! Minimal in-tree `proptest`: deterministic random-input testing with the
//! subset of the proptest 1.x API this workspace uses. No shrinking — a
//! failing case reports its case number and seed, then re-panics.
//! See `vendor/README.md`.

pub mod test_runner {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// SplitMix64 generator: deterministic per test name + case index.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform integer in `lo..=hi` via i128 arithmetic (covers the
        /// full u64 range without overflow).
        pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo + 1) as u128;
            lo + (self.next_u64() as u128 % span) as i128
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one `proptest!`-generated test: `cases` deterministic runs,
    /// reporting the case number and seed before re-raising any panic.
    pub fn run_proptest<F: FnMut(&mut TestRng)>(name: &str, cfg: &ProptestConfig, mut body: F) {
        let base = fnv1a(name);
        for case in 0..cfg.cases {
            let seed = base.wrapping_add((case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
            let mut rng = TestRng::new(seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest `{name}`: failed at case {case}/{} (seed {seed:#x}); \
                     no shrinking in the in-tree harness",
                    cfg.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

pub mod strategy {
    use crate::string_gen;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Produces random values of `Value`. No shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!` arms.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("proptest filter rejected 1000 candidates: {}", self.reason);
        }
    }

    /// Weighted choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof! weights are all zero");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64_unit() * (self.end - self.start)
        }
    }

    /// A `&'static str` is interpreted as a regex-subset pattern and
    /// generates matching strings (see `string_gen`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            string_gen::generate(self, rng)
        }
    }

    impl<A: Strategy> Strategy for (A,) {
        type Value = (A::Value,);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng),)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

mod string_gen {
    //! Generator for the regex subset used by workspace tests: literals,
    //! character classes (ranges, `\n`/`\t`-style escapes, trailing `-`),
    //! groups, `.`, and the quantifiers `{n}` / `{m,n}` / `?` / `*` / `+`.

    use crate::test_runner::TestRng;

    enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<Piece>),
    }

    struct Piece {
        node: Node,
        min: usize,
        max: usize,
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let pieces = parse_seq(&chars, &mut pos, pattern);
        if pos != chars.len() {
            panic!("proptest: unsupported regex construct in {pattern:?} at {pos}");
        }
        let mut out = String::new();
        emit_seq(&pieces, rng, &mut out);
        out
    }

    fn emit_seq(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
        for p in pieces {
            let span = (p.max - p.min) as u64;
            let n = p.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            for _ in 0..n {
                match &p.node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(ranges) => out.push(pick_from_class(ranges, rng)),
                    Node::Group(inner) => emit_seq(inner, rng, out),
                }
            }
        }
    }

    fn pick_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
        let mut pick = rng.below(total);
        for (lo, hi) in ranges {
            let size = (*hi as u64) - (*lo as u64) + 1;
            if pick < size {
                return char::from_u32(*lo as u32 + pick as u32).expect("class range char");
            }
            pick -= size;
        }
        unreachable!("class pick out of range")
    }

    fn escape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Parses pieces until end of input or a `)` (left for the caller).
    fn parse_seq(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        while *pos < chars.len() {
            let node = match chars[*pos] {
                ')' => break,
                '[' => {
                    *pos += 1;
                    Node::Class(parse_class(chars, pos, pattern))
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, pattern);
                    if chars.get(*pos) != Some(&')') {
                        panic!("proptest: unclosed group in {pattern:?}");
                    }
                    *pos += 1;
                    Node::Group(inner)
                }
                '.' => {
                    *pos += 1;
                    Node::Class(vec![(' ', '~')])
                }
                '\\' => {
                    *pos += 1;
                    let c = *chars
                        .get(*pos)
                        .unwrap_or_else(|| panic!("proptest: dangling escape in {pattern:?}"));
                    *pos += 1;
                    Node::Lit(escape(c))
                }
                c @ ('|' | '^' | '$' | '*' | '+' | '?' | '{') => {
                    panic!("proptest: unsupported regex construct {c:?} in {pattern:?}")
                }
                c => {
                    *pos += 1;
                    Node::Lit(c)
                }
            };
            let (min, max) = parse_quantifier(chars, pos, pattern);
            pieces.push(Piece { node, min, max });
        }
        pieces
    }

    fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<(char, char)> {
        if chars.get(*pos) == Some(&'^') {
            panic!("proptest: negated classes unsupported in {pattern:?}");
        }
        let mut ranges = Vec::new();
        loop {
            let lo = match chars.get(*pos) {
                None => panic!("proptest: unclosed class in {pattern:?}"),
                Some(']') => {
                    *pos += 1;
                    return ranges;
                }
                Some('\\') => {
                    *pos += 1;
                    let c = *chars
                        .get(*pos)
                        .unwrap_or_else(|| panic!("proptest: dangling escape in {pattern:?}"));
                    *pos += 1;
                    escape(c)
                }
                Some(&c) => {
                    *pos += 1;
                    c
                }
            };
            // `a-z` range, unless the `-` is the literal just before `]`.
            if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|c| *c != ']') {
                *pos += 1;
                let hi = match chars.get(*pos) {
                    Some('\\') => {
                        *pos += 1;
                        let c = *chars
                            .get(*pos)
                            .unwrap_or_else(|| panic!("proptest: dangling escape in {pattern:?}"));
                        escape(c)
                    }
                    Some(&c) => c,
                    None => panic!("proptest: unclosed class in {pattern:?}"),
                };
                *pos += 1;
                assert!(lo <= hi, "proptest: inverted class range in {pattern:?}");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*pos) {
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            Some('*') => {
                *pos += 1;
                (0, 8)
            }
            Some('+') => {
                *pos += 1;
                (1, 8)
            }
            Some('{') => {
                *pos += 1;
                let mut min = 0usize;
                while let Some(c) = chars.get(*pos).filter(|c| c.is_ascii_digit()) {
                    min = min * 10 + c.to_digit(10).unwrap() as usize;
                    *pos += 1;
                }
                let max = if chars.get(*pos) == Some(&',') {
                    *pos += 1;
                    let mut max = 0usize;
                    while let Some(c) = chars.get(*pos).filter(|c| c.is_ascii_digit()) {
                        max = max * 10 + c.to_digit(10).unwrap() as usize;
                        *pos += 1;
                    }
                    max
                } else {
                    min
                };
                if chars.get(*pos) != Some(&'}') {
                    panic!("proptest: malformed quantifier in {pattern:?}");
                }
                *pos += 1;
                assert!(min <= max, "proptest: inverted quantifier in {pattern:?}");
                (min, max)
            }
            _ => (1, 1),
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty => $name:ident),* $(,)?) => {$(
            pub struct $name;
            impl Strategy for $name {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_i128(<$t>::MIN as i128, <$t>::MAX as i128) as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = $name;
                fn arbitrary() -> $name { $name }
            }
        )*};
    }

    arbitrary_int!(
        u8 => AnyU8,
        u16 => AnyU16,
        u32 => AnyU32,
        u64 => AnyU64,
        usize => AnyUsize,
        i8 => AnyI8,
        i16 => AnyI16,
        i32 => AnyI32,
        i64 => AnyI64,
        isize => AnyIsize,
    );

    pub struct AnyString;

    impl Strategy for AnyString {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            // Mostly printable ASCII, with a tail of characters that stress
            // escaping and multi-byte handling.
            const SPICE: &[char] =
                &['"', '\\', '\n', '\t', '\r', 'é', 'λ', '中', '\u{1F4A1}', '\u{0}'];
            let len = rng.below(17) as usize;
            let mut out = String::new();
            for _ in 0..len {
                if rng.below(5) == 0 {
                    out.push(SPICE[rng.below(SPICE.len() as u64) as usize]);
                } else {
                    out.push(char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii"));
                }
            }
            out
        }
    }

    impl Arbitrary for String {
        type Strategy = AnyString;
        fn arbitrary() -> AnyString {
            AnyString
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`], inclusive on both ends.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len =
                self.size.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` one time in four, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            $crate::test_runner::run_proptest(
                stringify!($name),
                &cfg,
                |rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, rng);)+
                    $body
                },
            );
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($w as u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (1u8..=255).generate(&mut rng);
            assert!(v >= 1);
            let v = (0u32..=95).generate(&mut rng);
            assert!(v <= 95);
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn regex_patterns_match_shape() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let s = "[a-zA-Z0-9:/._#~-]{1,30}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 30);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || ":/._#~-".contains(c)));

            let lang = "[a-z]{2}(-[A-Z]{2})?".generate(&mut rng);
            assert!(lang.len() == 2 || lang.len() == 5, "bad lang tag {lang:?}");

            let lit = "[a-zA-Z0-9 \\\\\"\n\t]{0,20}".generate(&mut rng);
            assert!(lit.chars().count() <= 20);
            assert!(lit
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " \\\"\n\t".contains(c)));
        }
    }

    #[test]
    fn filter_and_map_compose() {
        let mut rng = TestRng::new(3);
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0).prop_map(|v| v + 1);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 1);
        }
    }

    #[test]
    fn oneof_honors_zero_weight() {
        let mut rng = TestRng::new(9);
        let strat = prop_oneof![0 => Just(1u8), 5 => Just(2u8)];
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng), 2);
        }
    }

    #[test]
    fn vec_and_option_strategies() {
        let mut rng = TestRng::new(5);
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        let mut saw_none = false;
        let opt = crate::option::of(Just(7u8));
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            saw_none |= opt.generate(&mut rng).is_none();
        }
        assert!(saw_none);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_smoke(a in 0u32..10, (b, c) in (0u8..4, any::<bool>())) {
            prop_assume!(a != 9);
            prop_assert!(a < 9, "a was {a}");
            prop_assert_eq!(b as u32 * 0, 0);
            prop_assert_ne!(c as u8, 2);
        }
    }
}
