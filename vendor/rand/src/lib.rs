//! Minimal in-tree `rand`: the surface this workspace uses —
//! `rngs::StdRng` (seeded, deterministic), `Rng::{gen_range, gen_bool,
//! gen}`, `SeedableRng::seed_from_u64`, and `rngs::mock::StepRng`.
//! `StdRng` is a SplitMix64 generator: deterministic per seed, but its
//! stream differs from upstream rand's ChaCha12 (see `vendor/README.md`).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform value of a [`Standard`]-distributed type.
    fn gen<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// `u64` → uniform `f64` in `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait StandardDist: Sized {
    /// Uniform sample.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardDist for bool {
    fn standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardDist for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: SplitMix64. Deterministic per seed;
    /// passes casual statistical checks, fine for test data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use super::super::RngCore;

        /// Yields `initial`, `initial + increment`, ... — upstream rand's
        /// mock generator.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the generator.
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng { value: initial, increment }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).filter(|_| a.gen_range(0u32..100) == c.gen_range(0u32..100)).count();
        assert!(same < 30, "different seeds should diverge");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=255);
            let _ = w;
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(0, 1);
        // Sampling still works even though the stream is trivially linear.
        let v = rng.gen_range(0usize..10);
        assert!(v < 10);
    }
}
