//! Minimal in-tree `criterion`: wall-clock timing with median-of-samples
//! reporting, API-compatible with the subset of criterion 0.5 this
//! workspace's benches use. No statistical analysis, plots, or baselines.
//! See `vendor/README.md`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The in-tree harness always
/// runs one setup per routine call, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }

    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { sample_size, samples: Vec::new() };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id}: median {} (min {}, max {}, {} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample. Criterion proper scales iteration
    /// counts to a time budget; a fixed per-sample call keeps benches fast
    /// and is accurate enough for the millisecond-scale routines here.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, excluded from samples
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` input per sample; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, excluded from samples
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(2 * 2)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
