//! Minimal in-tree `serde`: serialization through an explicit [`Content`]
//! tree (the JSON data model) instead of the full serde visitor machinery.
//! The derive macros in `serde_derive` generate `to_content`/`from_content`
//! implementations; `serde_json` prints and parses the tree. The generic
//! `Serialize::serialize(&self, S)` / `Deserialize::deserialize(D)` entry
//! points keep source compatibility with code written against real serde
//! (custom `#[serde(with = ...)]` modules included). See `vendor/README.md`.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object (ordered field list; duplicate keys never produced).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Unwraps a map's entries, or errors with the expected type.
    pub fn into_map_entries(self) -> Result<Vec<(String, Content)>, Error> {
        match self {
            Content::Map(entries) => Ok(entries),
            other => Err(Error::custom(format!("expected map, found {}", other.kind()))),
        }
    }

    /// Unwraps a sequence, or errors with the expected type.
    pub fn into_seq(self) -> Result<Vec<Content>, Error> {
        match self {
            Content::Seq(items) => Ok(items),
            other => Err(Error::custom(format!("expected sequence, found {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error: a message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Content`] tree.
pub trait Serialize {
    /// The value as a content tree.
    fn to_content(&self) -> Content;

    /// serde-compatible entry point: hands the content tree to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_content(self.to_content())
    }
}

/// Consumes a [`Content`] tree produced by [`Serialize`].
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Error type.
    type Error: fmt::Display;

    /// Accepts the serialized content tree.
    fn collect_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// The identity serializer: returns the [`Content`] tree itself. Used by
/// derived code to invoke `#[serde(with = ...)]` modules.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Error;

    fn collect_content(self, content: Content) -> Result<Content, Error> {
        Ok(content)
    }
}

/// Error trait for [`Deserializer`] implementations.
pub trait DeError: fmt::Display + Sized {
    /// Creates an error from a message.
    fn custom(msg: String) -> Self;
}

impl DeError for Error {
    fn custom(msg: String) -> Error {
        Error(msg)
    }
}

/// A source of one [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: DeError;

    /// Produces the content tree to deserialize from.
    fn into_content(self) -> Result<Content, Self::Error>;
}

/// The identity deserializer over an in-memory [`Content`] tree. Used by
/// derived code to invoke `#[serde(with = ...)]` modules.
pub struct ContentDeserializer(Content);

impl ContentDeserializer {
    /// Wraps a content tree.
    pub fn new(content: Content) -> ContentDeserializer {
        ContentDeserializer(content)
    }
}

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = Error;

    fn into_content(self) -> Result<Content, Error> {
        Ok(self.0)
    }
}

/// A type reconstructible from a [`Content`] tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds the value from a content tree.
    fn from_content(content: Content) -> Result<Self, Error>;

    /// serde-compatible entry point.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Self::from_content(deserializer.into_content()?)
            .map_err(|e| D::Error::custom(e.to_string()))
    }
}

// ---- derive support helpers (used by serde_derive expansions) ----

/// Removes and returns the field `name` from a map entry list.
#[doc(hidden)]
pub fn __take_field(
    entries: &mut Vec<(String, Content)>,
    name: &str,
) -> Option<Content> {
    let idx = entries.iter().position(|(k, _)| k == name)?;
    Some(entries.remove(idx).1)
}

/// Removes field `name`, erroring when absent (non-`default` fields).
#[doc(hidden)]
pub fn __require_field(
    entries: &mut Vec<(String, Content)>,
    name: &str,
) -> Result<Content, Error> {
    __take_field(entries, name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---- primitive impls ----

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: Content) -> Result<$t, Error> {
                let v = match content {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!("integer {v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: Content) -> Result<$t, Error> {
                let v = match content {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v).map_err(|_| {
                        Error::custom(format!("integer {v} out of range for i64"))
                    })?,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!("integer {v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: Content) -> Result<$t, Error> {
                match content {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: Content) -> Result<bool, Error> {
        match content {
            Content::Bool(b) => Ok(b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: Content) -> Result<String, Error> {
        match content {
            Content::Str(s) => Ok(s),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: Content) -> Result<Vec<T>, Error> {
        content.into_seq()?.into_iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: Content) -> Result<Option<T>, Error> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_content(content: Content) -> Result<(A, B), Error> {
        let mut items = content.into_seq()?;
        if items.len() != 2 {
            return Err(Error::custom(format!("expected 2-tuple, found {} items", items.len())));
        }
        let b = B::from_content(items.pop().expect("len checked"))?;
        let a = A::from_content(items.pop().expect("len checked"))?;
        Ok((a, b))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content(), self.2.to_content()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_content(content: Content) -> Result<(A, B, C), Error> {
        let mut items = content.into_seq()?;
        if items.len() != 3 {
            return Err(Error::custom(format!("expected 3-tuple, found {} items", items.len())));
        }
        let c = C::from_content(items.pop().expect("len checked"))?;
        let b = B::from_content(items.pop().expect("len checked"))?;
        let a = A::from_content(items.pop().expect("len checked"))?;
        Ok((a, b, c))
    }
}

/// Map keys, rendered as JSON object keys (strings). Integer keys are
/// stringified, as real serde_json does.
pub trait MapKey: Sized {
    /// The key as a string.
    fn to_key(&self) -> String;
    /// Parses a key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<$t, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!("invalid {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<String, Error> {
        Ok(key.to_string())
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_content())).collect())
    }
}

impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_content(content: Content) -> Result<BTreeMap<K, V>, Error> {
        content
            .into_map_entries()?
            .into_iter()
            .map(|(k, v)| Ok((K::from_key(&k)?, V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content((-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(0.25f64.to_content()).unwrap(), 0.25);
        assert_eq!(bool::from_content(true.to_content()).unwrap(), true);
        assert_eq!(
            String::from_content("hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2usize), (3, 4)];
        assert_eq!(Vec::<(u32, usize)>::from_content(v.to_content()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(7u32, 9usize);
        let c = m.to_content();
        assert_eq!(c, Content::Map(vec![("7".to_string(), Content::U64(9))]));
        assert_eq!(BTreeMap::<u32, usize>::from_content(c).unwrap(), m);
    }

    #[test]
    fn float_accepts_integer_content() {
        // JSON prints 1.0 as "1"; reading it back as f64 must work.
        assert_eq!(f64::from_content(Content::U64(1)).unwrap(), 1.0);
    }

    #[test]
    fn missing_field_reports_name() {
        let mut entries = vec![("a".to_string(), Content::U64(1))];
        assert!(__require_field(&mut entries, "b").unwrap_err().to_string().contains("`b`"));
        assert!(__require_field(&mut entries, "a").is_ok());
    }
}
