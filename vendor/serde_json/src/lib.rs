//! Minimal in-tree `serde_json`: pretty printing and parsing of the
//! in-tree serde [`Content`] tree. See `vendor/README.md`.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// JSON error: a message, with byte offset for parse errors.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes a value as pretty-printed JSON bytes (2-space indent).
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out.into_bytes())
}

/// Serializes a value as compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Deserializes a value from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(text: &'de str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_content(content)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's shortest round-trip formatting; integral floats keep a
        // ".0" so the value reads back as a float-compatible number.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no inf/nan; real serde_json emits null.
        out.push_str("null");
    }
}

fn write_compact(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_number(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(content: &Content, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs: combine a high surrogate with
                            // the following \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("lone high surrogate".to_string()));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                                let hex2 = std::str::from_utf8(hex2)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?;
                                self.pos += 4;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("bad \\u escape".to_string()))?);
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("bad number {text:?} at byte {start}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars() {
        let v: u64 = from_str(&to_string(&42u64).unwrap()).unwrap();
        assert_eq!(v, 42);
        let v: i64 = from_str(&to_string(&-42i64).unwrap()).unwrap();
        assert_eq!(v, -42);
        let v: f64 = from_str(&to_string(&0.25f64).unwrap()).unwrap();
        assert_eq!(v, 0.25);
        let v: f64 = from_str(&to_string(&1.0f64).unwrap()).unwrap();
        assert_eq!(v, 1.0);
        let v: bool = from_str(&to_string(&true).unwrap()).unwrap();
        assert!(v);
    }

    #[test]
    fn roundtrip_strings_with_escapes() {
        for s in ["", "plain", "quo\"te", "back\\slash", "new\nline", "tab\t", "unicode é λ 💡"] {
            let json = to_string(&s.to_string()).unwrap();
            let back: String = from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn roundtrip_containers() {
        let mut m: BTreeMap<u32, usize> = BTreeMap::new();
        m.insert(1, 10);
        m.insert(2, 20);
        let bytes = to_vec_pretty(&m).unwrap();
        let back: BTreeMap<u32, usize> = from_slice(&bytes).unwrap();
        assert_eq!(back, m);

        let v = vec![(1u32, 0.5f64), (2, 1.0)];
        let back: Vec<(u32, f64)> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn unicode_escape_parses() {
        let s: String = from_str("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(s, "Aé");
    }
}
