//! Property-based validation of the property-path fixpoint: on random
//! directed graphs — cycles and self-loops included — the engine's `+`/`*`
//! path answers must equal a naive BFS transitive-closure oracle, proving
//! the delta-set iteration terminates and is complete. A second property
//! re-runs each query on a single-worker pool (the in-process stand-in for
//! launching with `S2RDF_THREADS=1`) and demands bit-identical results,
//! so morsel scheduling cannot change path semantics.

use std::collections::{BTreeSet, VecDeque};
use std::sync::OnceLock;

use proptest::prelude::*;
use s2rdf_columnar::{pool, WorkerPool};
use s2rdf_core::{BuildOptions, S2rdfStore, Solutions};
use s2rdf_model::{Graph, Term, Triple};

/// A leaked single-worker pool: `with_workers(1)` runs every task inline on
/// the caller, in submission order.
fn serial_pool() -> &'static WorkerPool {
    static POOL: OnceLock<&'static WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| Box::leak(Box::new(WorkerPool::with_workers(1))))
}

/// Random directed graph: node count plus an edge set over those nodes
/// (self-loops allowed, so single-node cycles are exercised too).
fn graph_strategy() -> impl Strategy<Value = (usize, BTreeSet<(usize, usize)>)> {
    (
        2usize..9,
        proptest::collection::vec((0usize..9, 0usize..9), 0..=20),
    )
        .prop_map(|(n, raw)| {
            let edges = raw.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            (n, edges)
        })
}

fn build_graph(edges: &BTreeSet<(usize, usize)>) -> Graph {
    let mut g = Graph::new();
    for &(u, v) in edges {
        g.insert(&Triple::new(
            Term::iri(format!("n{u}")),
            Term::iri("e"),
            Term::iri(format!("n{v}")),
        ));
    }
    g
}

/// BFS from every node: all `(s, t)` with a path of length ≥ 1, the oracle
/// for `<e>+`.
fn closure_oracle(n: usize, edges: &BTreeSet<(usize, usize)>) -> BTreeSet<(usize, usize)> {
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u].push(v);
    }
    let mut out = BTreeSet::new();
    for s in 0..n {
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        for &v in &adj[s] {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
        while let Some(u) = queue.pop_front() {
            out.insert((s, u));
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    out
}

fn node_index(t: &Term) -> usize {
    t.to_string()
        .trim_start_matches("<n")
        .trim_end_matches('>')
        .parse()
        .expect("path solution should bind a node IRI")
}

fn solution_pairs(s: &Solutions) -> BTreeSet<(usize, usize)> {
    let xi = s.vars.iter().position(|v| v == "x").unwrap();
    let yi = s.vars.iter().position(|v| v == "y").unwrap();
    s.rows
        .iter()
        .map(|row| {
            (
                node_index(row[xi].as_ref().unwrap()),
                node_index(row[yi].as_ref().unwrap()),
            )
        })
        .collect()
}

fn solution_nodes(s: &Solutions) -> BTreeSet<usize> {
    let yi = s.vars.iter().position(|v| v == "y").unwrap();
    s.rows
        .iter()
        .map(|row| node_index(row[yi].as_ref().unwrap()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `?x <e>+ ?y` equals the BFS transitive closure — in particular it
    /// terminates on cyclic graphs and reports `(v, v)` for cycle members.
    #[test]
    fn plus_matches_bfs_oracle((n, edges) in graph_strategy()) {
        let g = build_graph(&edges);
        let store = S2rdfStore::build(&g, &BuildOptions::default());
        let sols = store.query("SELECT ?x ?y WHERE { ?x <e>+ ?y }").unwrap();
        prop_assert_eq!(solution_pairs(&sols), closure_oracle(n, &edges));
    }

    /// `?x <e>* ?y` equals the closure plus the identity pair for every
    /// node that occurs in the graph (SPARQL's zero-length step).
    #[test]
    fn star_adds_identity_over_graph_nodes((n, edges) in graph_strategy()) {
        let g = build_graph(&edges);
        let store = S2rdfStore::build(&g, &BuildOptions::default());
        let sols = store.query("SELECT ?x ?y WHERE { ?x <e>* ?y }").unwrap();
        let mut expected = closure_oracle(n, &edges);
        for &(u, v) in &edges {
            expected.insert((u, u));
            expected.insert((v, v));
        }
        prop_assert_eq!(solution_pairs(&sols), expected);
    }

    /// `<n0> <e>* ?y` is BFS reachability from node 0 plus node 0 itself —
    /// even when node 0 has no edges at all.
    #[test]
    fn bound_subject_star_matches_bfs((n, edges) in graph_strategy()) {
        let g = build_graph(&edges);
        let store = S2rdfStore::build(&g, &BuildOptions::default());
        let sols = store.query("SELECT ?y WHERE { <n0> <e>* ?y }").unwrap();
        let mut expected: BTreeSet<usize> = closure_oracle(n, &edges)
            .into_iter()
            .filter(|&(s, _)| s == 0)
            .map(|(_, t)| t)
            .collect();
        expected.insert(0);
        prop_assert_eq!(solution_nodes(&sols), expected);
    }

    /// The same path query on a single-worker pool returns the identical
    /// solution multiset: morsel scheduling is semantics-free.
    #[test]
    fn serial_pool_equivalence((_n, edges) in graph_strategy()) {
        let g = build_graph(&edges);
        let store = S2rdfStore::build(&g, &BuildOptions::default());
        for query in [
            "SELECT ?x ?y WHERE { ?x <e>+ ?y }",
            "SELECT ?y WHERE { <n0> (<e>/<e>)* ?y }",
        ] {
            let parallel = store.query(query).unwrap();
            let serial = pool::with_pool(serial_pool(), || store.query(query).unwrap());
            prop_assert_eq!(parallel.canonical(), serial.canonical(), "{}", query);
        }
    }
}
