//! Property-based tests of the paper's formal claims:
//!
//! * the semi-join decomposition identity `T1 ⋈ T2 = (T1 ⋉ T2) ⋈ (T2 ⋉ T1)`
//!   that justifies ExtVP (§5.2),
//! * ExtVP partitions equal their defining semi-joins on arbitrary graphs,
//! * BGP evaluation over ExtVP, VP, the triples table, the property table
//!   and the centralized indexes all match a naive pattern-matching
//!   reference on random graphs and random BGPs (§2.1 semantics).

use proptest::prelude::*;

use s2rdf_columnar::exec::row_multiset;
use s2rdf_columnar::ops::{natural_join, semi_join_on};
use s2rdf_columnar::{Schema, Table};
use s2rdf_core::engines::centralized::CentralizedEngine;
use s2rdf_core::engines::property_table::PropertyTableEngine;
use s2rdf_core::engines::triples_table::TriplesTableEngine;
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::layout::vp::build_vp;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_model::{Graph, Term, TermId, Triple};

// ---------- strategies ----------

fn arb_table(cols: &'static [&'static str]) -> impl Strategy<Value = Table> {
    proptest::collection::vec(proptest::collection::vec(0u32..16, cols.len()), 0..40).prop_map(
        move |rows| Table::from_rows(Schema::new(cols.iter().map(|c| c.to_string())), &rows),
    )
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0usize..12, 0usize..5, 0usize..12), 1..60).prop_map(|triples| {
        Graph::from_triples(triples.into_iter().map(|(s, p, o)| {
            Triple::new(
                Term::iri(format!("e{s}")),
                Term::iri(format!("p{p}")),
                Term::iri(format!("e{o}")),
            )
        }))
    })
}

/// A triple-pattern position: variable index (0..4 → ?x ?y ?z ?w) or
/// constant entity/predicate index.
#[derive(Debug, Clone)]
enum Pos {
    Var(u8),
    Const(u8),
}

fn arb_pos(const_range: u8) -> impl Strategy<Value = Pos> {
    prop_oneof![
        3 => (0u8..4).prop_map(Pos::Var),
        1 => (0u8..const_range).prop_map(Pos::Const),
    ]
}

fn arb_bgp() -> impl Strategy<Value = Vec<(Pos, Pos, Pos)>> {
    proptest::collection::vec(
        (
            arb_pos(12),
            // Predicates are mostly bound, as in real SPARQL (§5.2).
            prop_oneof![5 => (0u8..5).prop_map(Pos::Const), 1 => (0u8..4).prop_map(Pos::Var)],
            arb_pos(12),
        ),
        1..4,
    )
}

fn render_query(bgp: &[(Pos, Pos, Pos)]) -> String {
    const VARS: [&str; 4] = ["x", "y", "z", "w"];
    let mut body = String::new();
    for (s, p, o) in bgp {
        let part = |pos: &Pos, kind: &str| match pos {
            Pos::Var(v) => format!("?{}", VARS[*v as usize]),
            Pos::Const(c) => format!("<{kind}{c}>"),
        };
        body.push_str(&format!(
            "{} {} {} . ",
            part(s, "e"),
            part(p, "p"),
            part(o, "e")
        ));
    }
    format!("SELECT * WHERE {{ {body}}}")
}

/// Naive reference: enumerate solution mappings by backtracking over the
/// graph's triples (the definitional semantics of §2.1), then canonicalize
/// identically to `Solutions::canonical`.
fn reference_solutions(graph: &Graph, bgp: &[(Pos, Pos, Pos)]) -> Vec<String> {
    // Which variables occur (canonical output includes only those).
    let mut used = [false; 4];
    for (s, p, o) in bgp {
        for pos in [s, p, o] {
            if let Pos::Var(v) = pos {
                used[*v as usize] = true;
            }
        }
    }
    let decoded: Vec<Triple> = graph.iter_decoded().collect();
    let mut out = Vec::new();
    let mut binding: [Option<Term>; 4] = [None, None, None, None];

    fn recurse(
        depth: usize,
        bgp: &[(Pos, Pos, Pos)],
        triples: &[Triple],
        binding: &mut [Option<Term>; 4],
        used: &[bool; 4],
        out: &mut Vec<String>,
    ) {
        if depth == bgp.len() {
            const VARS: [&str; 4] = ["x", "y", "z", "w"];
            let mut parts = Vec::new();
            for v in 0..4 {
                if used[v] {
                    parts.push(format!(
                        "{}={}",
                        VARS[v],
                        binding[v].as_ref().expect("bound at leaf")
                    ));
                }
            }
            // Canonical form sorts variables by name; w < x < y < z.
            parts.sort();
            out.push(parts.join(" "));
            return;
        }
        let (s, p, o) = &bgp[depth];
        for t in triples {
            let mut local: Vec<(usize, Term)> = Vec::new();
            let mut ok = true;
            for (pos, term, kind) in [(s, &t.s, "e"), (p, &t.p, "p"), (o, &t.o, "e")] {
                match pos {
                    Pos::Const(c) => {
                        if term != &Term::iri(format!("{kind}{c}")) {
                            ok = false;
                            break;
                        }
                    }
                    Pos::Var(v) => {
                        let vi = *v as usize;
                        let bound = binding[vi]
                            .as_ref()
                            .or_else(|| local.iter().find(|(i, _)| *i == vi).map(|(_, t)| t));
                        match bound {
                            Some(existing) if existing != term => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => local.push((vi, term.clone())),
                        }
                    }
                }
            }
            if ok {
                for (vi, term) in &local {
                    binding[*vi] = Some(term.clone());
                }
                recurse(depth + 1, bgp, triples, binding, used, out);
                for (vi, _) in &local {
                    binding[*vi] = None;
                }
            }
        }
    }
    recurse(0, bgp, &decoded, &mut binding, &used, &mut out);
    out.sort();
    out
}

// ---------- properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §5.2: `T1 ⋈ T2 = (T1 ⋉ T2) ⋈ (T2 ⋉ T1)` — the decomposition that
    /// makes precomputed semi-join reductions lossless.
    #[test]
    fn join_decomposition_identity(
        t1 in arb_table(&["a", "j"]),
        t2 in arb_table(&["j", "b"]),
    ) {
        let direct = natural_join(&t1, &t2);
        let r1 = semi_join_on(&t1, 1, &t2, 0);
        let r2 = semi_join_on(&t2, 0, &t1, 1);
        let via_semi = natural_join(&r1, &r2);
        prop_assert_eq!(row_multiset(&direct), row_multiset(&via_semi));
    }

    /// Semi-join reductions are subsets of their base table.
    #[test]
    fn semi_join_is_a_reduction(
        t1 in arb_table(&["a", "j"]),
        t2 in arb_table(&["j", "b"]),
    ) {
        let reduced = semi_join_on(&t1, 1, &t2, 0);
        prop_assert!(reduced.num_rows() <= t1.num_rows());
        let base = row_multiset(&t1);
        for row in row_multiset(&reduced) {
            prop_assert!(base.contains(&row));
        }
    }

    /// Every materialized ExtVP partition of a random graph equals the
    /// semi-join in its definition, and its SF bookkeeping is exact.
    #[test]
    fn extvp_matches_definition(graph in arb_graph()) {
        let vp = build_vp(&graph);
        let store = S2rdfStore::build(&graph, &BuildOptions::default());
        let mut materialized = 0;
        for (key, stat) in store.catalog().extvp_stats() {
            let vp1 = &vp[&TermId(key.p1)];
            let vp2 = &vp[&TermId(key.p2)];
            let (lk, rk) = s2rdf_core::layout::extvp::semi_join_columns(key.corr);
            let expected = semi_join_on(vp1, lk, vp2, rk);
            prop_assert_eq!(stat.count, expected.num_rows(), "{:?}", key);
            let sf = expected.num_rows() as f64 / vp1.num_rows() as f64;
            prop_assert!((stat.sf - sf).abs() < 1e-12);
            if let Some(table) = store.extvp_table(key) {
                materialized += 1;
                prop_assert_eq!(row_multiset(&table), row_multiset(&expected));
                prop_assert!(stat.sf < 1.0);
            }
        }
        prop_assert_eq!(materialized, store.num_extvp_tables());
    }

    /// BGP evaluation agrees with the naive reference across all layouts.
    #[test]
    fn engines_match_reference(graph in arb_graph(), bgp in arb_bgp()) {
        let expected = reference_solutions(&graph, &bgp);
        let query = render_query(&bgp);

        let store = S2rdfStore::build(&graph, &BuildOptions::default());
        let engines: Vec<(&str, Box<dyn SparqlEngine>)> = vec![
            ("tt", Box::new(TriplesTableEngine::new(&graph))),
            ("pt", Box::new(PropertyTableEngine::new(&graph))),
            ("central", Box::new(CentralizedEngine::new(&graph))),
        ];
        for (label, engine) in &engines {
            let got = engine.query(&query)
                .unwrap_or_else(|e| panic!("{label}: {e}\n{query}"));
            prop_assert_eq!(got.canonical(), expected.clone(), "{} on {}", label, query);
        }
        for use_extvp in [true, false] {
            let got = store.engine(use_extvp).query(&query)
                .unwrap_or_else(|e| panic!("s2rdf({use_extvp}): {e}\n{query}"));
            prop_assert_eq!(
                got.canonical(), expected.clone(),
                "s2rdf(extvp={}) on {}", use_extvp, query
            );
        }
    }
}
