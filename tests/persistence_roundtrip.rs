//! Store persistence: save/load round-trips, disk-size accounting, and the
//! monotonicity of the SF-threshold knob (paper Tables 2 and 6).

use std::path::PathBuf;

use s2rdf_bench::dataset;
use s2rdf_core::{BuildOptions, S2rdfStore};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2rdf-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_store_roundtrip_on_watdiv_data() {
    let data = dataset(1);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let dir = tmp("roundtrip");
    store.save(&dir).unwrap();
    let loaded = S2rdfStore::load(&dir).unwrap();

    assert_eq!(loaded.vp_tuples(), store.vp_tuples());
    assert_eq!(loaded.extvp_tuples(), store.extvp_tuples());
    assert_eq!(loaded.num_extvp_tables(), store.num_extvp_tables());
    assert_eq!(
        loaded.catalog().num_predicates(),
        store.catalog().num_predicates()
    );
    assert_eq!(
        loaded.catalog().total_triples,
        store.catalog().total_triples
    );

    // Every ExtVP stat survives (including non-materialized ones).
    for (key, stat) in store.catalog().extvp_stats() {
        let back = loaded.catalog().extvp_stat(key).unwrap();
        assert_eq!(back.count, stat.count, "{key:?}");
        assert_eq!(back.materialized, stat.materialized, "{key:?}");
    }

    // Queries agree between the original and the loaded store.
    let queries = [
        "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         SELECT * WHERE { ?u wsdbm:follows ?v . ?v wsdbm:likes ?p }",
        "PREFIX sorg: <http://schema.org/>
         PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         SELECT ?u ?t WHERE { ?u sorg:jobTitle ?t . ?u wsdbm:friendOf ?f }",
    ];
    for q in queries {
        assert_eq!(
            loaded.query(q).unwrap().canonical(),
            store.query(q).unwrap().canonical()
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_sizes_are_attributed_by_family() {
    let data = dataset(1);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let dir = tmp("sizes");
    store.save(&dir).unwrap();
    let (tt, vp, extvp) = S2rdfStore::disk_sizes(&dir).unwrap();
    assert!(tt > 0 && vp > 0 && extvp > 0);
    // ExtVP holds several times the VP tuples, so its bytes must dominate.
    assert!(extvp > vp, "extvp {extvp} vs vp {vp}");
    // VP stores the same tuples as TT minus the predicate column; with
    // per-predicate RLE-friendly layout it must not be drastically larger.
    assert!(vp < tt * 2, "vp {vp} vs tt {tt}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn threshold_monotonicity() {
    // Table 6: tables, tuples and bytes grow monotonically with SF_TH, and
    // SF_TH = 0 stores nothing beyond VP.
    let data = dataset(1);
    let thresholds = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
    let mut prev: Option<(usize, usize, u64)> = None;
    for th in thresholds {
        let store = S2rdfStore::build(
            &data.graph,
            &BuildOptions {
                threshold: th,
                build_extvp: true,
                ..Default::default()
            },
        );
        let dir = tmp(&format!("th{}", (th * 100.0) as u32));
        store.save(&dir).unwrap();
        let (_, _, extvp_bytes) = S2rdfStore::disk_sizes(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let current = (store.num_extvp_tables(), store.extvp_tuples(), extvp_bytes);
        if th == 0.0 {
            assert_eq!(current.0, 0);
            assert_eq!(current.1, 0);
        }
        if let Some(p) = prev {
            assert!(current.0 >= p.0, "tables must grow with threshold");
            assert!(current.1 >= p.1, "tuples must grow with threshold");
            assert!(current.2 >= p.2, "bytes must grow with threshold");
        }
        // Materialized tables always respect the threshold.
        for (key, stat) in store.catalog().extvp_stats() {
            if stat.materialized {
                assert!(
                    stat.sf < th.max(f64::MIN_POSITIVE),
                    "{key:?} violates SF_TH"
                );
                assert!(store.extvp_table(key).is_some());
            } else {
                assert!(store.extvp_table(key).is_none());
            }
        }
        prev = Some(current);
    }
}

#[test]
fn vp_only_store_roundtrip() {
    let data = dataset(1);
    let store = S2rdfStore::build(
        &data.graph,
        &BuildOptions {
            threshold: 1.0,
            build_extvp: false,
            ..Default::default()
        },
    );
    let dir = tmp("vponly");
    store.save(&dir).unwrap();
    let loaded = S2rdfStore::load(&dir).unwrap();
    assert!(!loaded.catalog().extvp_built);
    assert_eq!(loaded.num_extvp_tables(), 0);
    let q = "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
             SELECT * WHERE { ?u wsdbm:likes wsdbm:Product0 }";
    assert_eq!(
        loaded.query(q).unwrap().canonical(),
        store.query(q).unwrap().canonical()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
