//! Manifest-driven SPARQL 1.1 conformance harness.
//!
//! Declarative test manifests live in `tests/conformance/manifests/`
//! (shaped after the W3C/oxigraph test-suite idea, with a simple
//! line-oriented format instead of RDF manifests): each entry names a
//! feature, provides N-Triples data, a query, and the expected result —
//! a solution multiset (or sequence, when `:ordered`), an `ASK` boolean,
//! or a `CONSTRUCT`/`DESCRIBE` graph.
//!
//! Every entry runs against **all engines** (S2RDF ExtVP, S2RDF VP,
//! TriplesTable, PropertyTable, Batch, Centralized, Adaptive); a per-feature
//! pass/fail summary is printed either way, and the suite fails if any
//! entry fails anywhere or if the entry count regresses below the
//! checked-in baseline (`tests/conformance/BASELINE`).
//!
//! Manifest format, by example:
//!
//! ```text
//! :test path-plus
//! :feature paths
//! :data
//! <A> <follows> <B> .
//! :query
//! SELECT ?x ?y WHERE { ?x <follows>+ ?y }
//! :expect
//! ?x ?y
//! <A> <B>
//! :end
//! ```
//!
//! `:expect-bool true|false` replaces `:expect` for ASK; `:expect-graph`
//! (N-Triples lines) for CONSTRUCT/DESCRIBE; `:ordered` before `:end`
//! makes the solution comparison order-sensitive. `UNDEF` in an expected
//! row means the variable is unbound. Lines starting with `#` between
//! tests are comments.

use std::collections::BTreeMap;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::time::Duration;

use s2rdf_core::engines::adaptive::AdaptiveEngine;
use s2rdf_core::engines::batch::{BatchEngine, JobGranularity};
use s2rdf_core::engines::centralized::CentralizedEngine;
use s2rdf_core::engines::property_table::PropertyTableEngine;
use s2rdf_core::engines::triples_table::TriplesTableEngine;
use s2rdf_core::engines::{QueryResult, SparqlEngine};
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::{BuildOptions, S2rdfStore, Solutions};
use s2rdf_model::{ntriples, Term, Triple};

#[derive(Debug, Clone)]
enum Expectation {
    Solutions {
        vars: Vec<String>,
        rows: Vec<Vec<Option<Term>>>,
        ordered: bool,
    },
    Bool(bool),
    Graph(Vec<Triple>),
}

#[derive(Debug, Clone)]
struct TestCase {
    name: String,
    feature: String,
    manifest: String,
    data: String,
    query: String,
    expect: Expectation,
}

/// Splits a manifest expectation row into N-Triples terms (IRIs, literals
/// with optional `@lang`/`^^<datatype>` suffixes, or the bare `UNDEF`
/// marker), honouring spaces inside quoted literals.
fn split_row(line: &str) -> Vec<String> {
    let chars: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if chars[i] == '<' {
            while i < chars.len() && chars[i] != '>' {
                i += 1;
            }
            i += 1;
        } else if chars[i] == '"' {
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            while i < chars.len() && !chars[i].is_whitespace() {
                i += 1;
            }
        } else {
            while i < chars.len() && !chars[i].is_whitespace() {
                i += 1;
            }
        }
        out.push(chars[start..i.min(chars.len())].iter().collect());
    }
    out
}

fn parse_expect_rows(lines: &[String]) -> (Vec<String>, Vec<Vec<Option<Term>>>) {
    let header = lines.first().expect(":expect needs a variable header");
    let vars: Vec<String> = header
        .split_whitespace()
        .map(|v| v.trim_start_matches('?').to_string())
        .collect();
    let rows = lines[1..]
        .iter()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let cells = split_row(line);
            assert_eq!(
                cells.len(),
                vars.len(),
                "row arity mismatch in expectation: {line}"
            );
            cells
                .into_iter()
                .map(|c| {
                    if c == "UNDEF" {
                        None
                    } else {
                        Some(Term::parse_ntriples(&c).unwrap_or_else(|e| panic!("{c}: {e}")))
                    }
                })
                .collect()
        })
        .collect();
    (vars, rows)
}

fn parse_manifest(path: &Path) -> Vec<TestCase> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let manifest = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut cases = Vec::new();

    #[derive(PartialEq)]
    enum Section {
        None,
        Data,
        Query,
        Expect,
        ExpectGraph,
    }
    let mut section = Section::None;
    let mut name = String::new();
    let mut feature = String::new();
    let mut data: Vec<String> = Vec::new();
    let mut query: Vec<String> = Vec::new();
    let mut expect_lines: Vec<String> = Vec::new();
    let mut expect_bool: Option<bool> = None;
    let mut ordered = false;
    let mut graph_expected = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw;
        let directive = line.trim_start();
        if directive.starts_with(':') {
            let mut parts = directive.splitn(2, char::is_whitespace);
            let key = parts.next().unwrap();
            let arg = parts.next().unwrap_or("").trim().to_string();
            match key {
                ":test" => {
                    name = arg;
                    feature.clear();
                    data.clear();
                    query.clear();
                    expect_lines.clear();
                    expect_bool = None;
                    ordered = false;
                    graph_expected = false;
                    section = Section::None;
                }
                ":feature" => feature = arg,
                ":data" => section = Section::Data,
                ":query" => section = Section::Query,
                ":expect" => section = Section::Expect,
                ":expect-graph" => {
                    section = Section::ExpectGraph;
                    graph_expected = true;
                }
                ":expect-bool" => {
                    expect_bool = Some(match arg.as_str() {
                        "true" => true,
                        "false" => false,
                        other => panic!("{manifest}:{lineno}: bad :expect-bool {other}"),
                    });
                    section = Section::None;
                }
                ":ordered" => ordered = true,
                ":end" => {
                    assert!(!name.is_empty(), "{manifest}:{lineno}: :end without :test");
                    assert!(!feature.is_empty(), "{manifest}:{name}: missing :feature");
                    let expect = if let Some(b) = expect_bool {
                        Expectation::Bool(b)
                    } else if graph_expected {
                        let text = expect_lines.join("\n");
                        let graph = ntriples::read_graph(Cursor::new(text))
                            .unwrap_or_else(|e| panic!("{manifest}:{name}: bad graph: {e}"));
                        Expectation::Graph(graph.iter_decoded().collect())
                    } else {
                        let (vars, rows) = parse_expect_rows(&expect_lines);
                        Expectation::Solutions {
                            vars,
                            rows,
                            ordered,
                        }
                    };
                    cases.push(TestCase {
                        name: std::mem::take(&mut name),
                        feature: feature.clone(),
                        manifest: manifest.clone(),
                        data: data.join("\n"),
                        query: query.join("\n"),
                        expect,
                    });
                    section = Section::None;
                }
                other => panic!("{manifest}:{lineno}: unknown directive {other}"),
            }
            continue;
        }
        match section {
            Section::Data => data.push(line.to_string()),
            Section::Query => query.push(line.to_string()),
            Section::Expect | Section::ExpectGraph => expect_lines.push(line.to_string()),
            Section::None => {
                let t = line.trim();
                assert!(
                    t.is_empty() || t.starts_with('#'),
                    "{manifest}:{lineno}: stray content outside sections: {line}"
                );
            }
        }
    }
    cases
}

fn manifests_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/conformance/manifests")
}

fn load_all_cases() -> Vec<TestCase> {
    let dir = manifests_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{dir:?}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "manifest"))
        .collect();
    paths.sort();
    let mut cases = Vec::new();
    for path in paths {
        cases.extend(parse_manifest(&path));
    }
    cases
}

/// Normalizes a solution row into sorted `(var, rendered-term)` pairs so
/// comparison is independent of projection order.
type NormRow = Vec<(String, Option<String>)>;

fn normalize(vars: &[String], rows: &[Vec<Option<Term>>], ordered: bool) -> Vec<NormRow> {
    let mut out: Vec<NormRow> = rows
        .iter()
        .map(|row| {
            let mut pairs: NormRow = vars
                .iter()
                .cloned()
                .zip(row.iter().map(|t| t.as_ref().map(Term::to_string)))
                .collect();
            pairs.sort();
            pairs
        })
        .collect();
    if !ordered {
        out.sort();
    }
    out
}

fn normalize_solutions(s: &Solutions, ordered: bool) -> Vec<NormRow> {
    normalize(&s.vars, &s.rows, ordered)
}

fn normalize_graph(triples: &[Triple]) -> Vec<String> {
    let mut out: Vec<String> = triples
        .iter()
        .map(|t| format!("{} {} {}", t.s, t.p, t.o))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Checks one engine's result against the expectation; `None` = pass.
fn check(result: &QueryResult, expect: &Expectation) -> Option<String> {
    match (result, expect) {
        (
            QueryResult::Solutions(actual),
            Expectation::Solutions {
                vars,
                rows,
                ordered,
            },
        ) => {
            let mut expected_vars = vars.clone();
            let mut actual_vars = actual.vars.clone();
            expected_vars.sort();
            actual_vars.sort();
            if expected_vars != actual_vars {
                return Some(format!(
                    "variables differ: expected {expected_vars:?}, got {actual_vars:?}"
                ));
            }
            let expected = normalize(vars, rows, *ordered);
            let got = normalize_solutions(actual, *ordered);
            if expected != got {
                return Some(format!("expected {expected:?}\n        got {got:?}"));
            }
            None
        }
        (QueryResult::Bool(actual), Expectation::Bool(expected)) => {
            (actual != expected).then(|| format!("expected {expected}, got {actual}"))
        }
        (QueryResult::Graph(actual), Expectation::Graph(expected)) => {
            let expected = normalize_graph(expected);
            let got = normalize_graph(actual);
            (expected != got).then(|| format!("expected {expected:?}\n        got {got:?}"))
        }
        (got, _) => Some(format!("result shape mismatch: got {got:?}")),
    }
}

/// Runs one case against every engine; returns failure descriptions.
fn run_case(case: &TestCase, work_dir: &Path) -> Vec<String> {
    let graph = ntriples::read_graph(Cursor::new(case.data.clone()))
        .unwrap_or_else(|e| panic!("{}:{}: bad data: {e}", case.manifest, case.name));
    let store = S2rdfStore::build(&graph, &BuildOptions::default());
    let triples_table = TriplesTableEngine::new(&graph);
    let property_table = PropertyTableEngine::new(&graph);
    let centralized = CentralizedEngine::new(&graph);
    let batch = BatchEngine::new(
        &graph,
        work_dir.join(format!("{}-batch", case.name)),
        Duration::ZERO,
        JobGranularity::MultiJoin,
    )
    .expect("batch engine setup");
    let adaptive =
        AdaptiveEngine::new(&graph, work_dir.join(&case.name), Duration::ZERO, 1_000_000)
            .expect("adaptive engine setup");
    let extvp = store.engine(true);
    let vp = store.engine(false);
    let engines: Vec<(&str, &dyn SparqlEngine)> = vec![
        ("S2RDF ExtVP", &extvp),
        ("S2RDF VP", &vp),
        ("TriplesTable", &triples_table),
        ("PropertyTable", &property_table),
        ("Batch", &batch),
        ("Centralized", &centralized),
        ("Adaptive", &adaptive),
    ];
    let mut failures = Vec::new();
    for (label, engine) in engines {
        match engine.query_result_opt(&case.query, &QueryOptions::default()) {
            Ok((result, _)) => {
                if let Some(why) = check(&result, &case.expect) {
                    failures.push(format!(
                        "{}:{} [{label}]: {why}\n        query: {}",
                        case.manifest,
                        case.name,
                        case.query.replace('\n', " ")
                    ));
                }
            }
            Err(e) => failures.push(format!(
                "{}:{} [{label}]: error: {e}\n        query: {}",
                case.manifest,
                case.name,
                case.query.replace('\n', " ")
            )),
        }
    }
    failures
}

fn baseline() -> usize {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/conformance/BASELINE");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path:?}: {e}"))
        .trim()
        .parse()
        .expect("BASELINE must hold an integer entry count")
}

#[test]
fn conformance_suite() {
    let cases = load_all_cases();
    let work_dir = std::env::temp_dir().join(format!("s2rdf-conformance-{}", std::process::id()));

    let mut failures: Vec<String> = Vec::new();
    // feature → (pass, fail) counts, per engine-execution.
    let mut by_feature: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for case in &cases {
        let case_failures = run_case(case, &work_dir);
        let entry = by_feature.entry(case.feature.clone()).or_insert((0, 0));
        if case_failures.is_empty() {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
        failures.extend(case_failures);
    }
    let _ = std::fs::remove_dir_all(&work_dir);

    println!(
        "conformance summary ({} entries, all engines):",
        cases.len()
    );
    println!("{:<16} {:>5} {:>5}", "feature", "pass", "fail");
    for (feature, (pass, fail)) in &by_feature {
        println!("{feature:<16} {pass:>5} {fail:>5}");
    }

    assert!(
        failures.is_empty(),
        "{} conformance failure(s):\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    let min = baseline();
    assert!(
        cases.len() >= min,
        "conformance suite shrank: {} entries < baseline {min}",
        cases.len()
    );
}

/// Satellite: every manifest query must round-trip through the renderer —
/// parse → render → re-parse yields an identical AST.
#[test]
fn manifest_queries_round_trip() {
    let cases = load_all_cases();
    assert!(!cases.is_empty());
    for case in &cases {
        let parsed = s2rdf_sparql::parse_query(&case.query).unwrap_or_else(|e| {
            panic!("{}:{}: query does not parse: {e}", case.manifest, case.name)
        });
        let rendered = parsed.to_string();
        let reparsed = s2rdf_sparql::parse_query(&rendered).unwrap_or_else(|e| {
            panic!(
                "{}:{}: rendered query does not re-parse: {e}\n{rendered}",
                case.manifest, case.name
            )
        });
        assert_eq!(
            reparsed, parsed,
            "{}:{}: round-trip drift via\n{rendered}",
            case.manifest, case.name
        );
    }
}
