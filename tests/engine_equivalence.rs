//! Cross-engine equivalence: every engine must return the same solution
//! multiset for every query of all three paper workloads.
//!
//! This is the repo's strongest correctness check: S2RDF's central claim is
//! that ExtVP is a *lossless* input reduction — the six execution
//! strategies (ExtVP, VP, property table, triples table, two batch
//! engines, centralized indexes) all implement the same SPARQL semantics,
//! so any divergence is a bug.

use std::sync::OnceLock;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::{dataset, Engines};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::CoreError;
use s2rdf_watdiv::{Dataset, Workload};

struct Fixture {
    data: Dataset,
    engines: Engines,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = dataset(1);
        let engines = Engines::build(&data, Duration::ZERO);
        Fixture { data, engines }
    })
}

/// Runs one query on every engine and asserts identical canonical results.
/// Engines that hit the (generous) deadline are skipped with a note —
/// mirroring the paper's "F" cells — but the S2RDF engines must always
/// finish.
fn assert_all_engines_agree(name: &str, query: &str) {
    let f = fixture();
    let options = QueryOptions {
        deadline: Some(std::time::Instant::now() + Duration::from_secs(300)),
        ..Default::default()
    };
    let mut reference: Option<(String, Vec<String>)> = None;
    f.engines
        .for_each(|label, engine| match engine.query_opt(query, &options) {
            Ok((solutions, _)) => match &reference {
                None => reference = Some((label.to_string(), solutions.canonical())),
                Some((ref_label, ref_canon)) => {
                    assert_eq!(
                        &solutions.canonical(),
                        ref_canon,
                        "{name}: {label} disagrees with {ref_label}\nquery:\n{query}"
                    );
                }
            },
            Err(CoreError::Timeout) => {
                assert!(
                    !label.starts_with("S2RDF"),
                    "{name}: {label} must not time out"
                );
                eprintln!("{name}: {label} timed out (allowed, like the paper's F cells)");
            }
            Err(e) => panic!("{name}: {label} failed: {e}\nquery:\n{query}"),
        });
    assert!(reference.is_some(), "{name}: no engine produced a result");
}

fn check_workload(workload: Workload, instances: usize, seed: u64) {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(seed);
    for template in &workload.templates {
        for i in 0..instances {
            let query = template.instantiate(&f.data, &mut rng);
            assert_all_engines_agree(&format!("{}#{i}", template.name), &query);
        }
    }
}

#[test]
fn basic_testing_agrees_across_engines() {
    check_workload(Workload::basic_testing(), 2, 101);
}

#[test]
fn selectivity_testing_agrees_across_engines() {
    check_workload(Workload::selectivity_testing(), 1, 102);
}

#[test]
fn incremental_linear_agrees_across_engines() {
    check_workload(Workload::incremental_linear(), 1, 103);
}

#[test]
fn modifiers_agree_across_engines() {
    // Queries exercising the operator layer above BGPs.
    let queries = [
        // DISTINCT + LIMIT via ORDER BY for determinism.
        "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         SELECT DISTINCT ?c WHERE { ?u wsdbm:likes ?p . ?p <http://schema.org/caption> ?c }
         ORDER BY ?c LIMIT 20",
        // OPTIONAL.
        "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         PREFIX sorg: <http://schema.org/>
         SELECT ?u ?j WHERE {
            ?u wsdbm:likes wsdbm:Product0 .
            OPTIONAL { ?u sorg:jobTitle ?j }
         }",
        // UNION.
        "PREFIX sorg: <http://schema.org/>
         SELECT ?p ?who WHERE {
            { ?p sorg:author ?who } UNION { ?p sorg:editor ?who }
         }",
        // FILTER with comparison and logical operators.
        "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         PREFIX sorg: <http://schema.org/>
         SELECT ?w ?h WHERE {
            ?w wsdbm:hits ?h . ?w sorg:url ?u
            FILTER(?h > 500000 || ?h < 1000)
         }",
        // FILTER over OPTIONAL with BOUND.
        "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         PREFIX sorg: <http://schema.org/>
         SELECT ?u WHERE {
            ?u wsdbm:likes wsdbm:Product0 .
            OPTIONAL { ?u sorg:jobTitle ?j }
            FILTER(!BOUND(?j))
         }",
        // OFFSET pagination.
        "PREFIX gn: <http://www.geonames.org/ontology#>
         SELECT ?c ?k WHERE { ?c gn:parentCountry ?k } ORDER BY ?c ?k LIMIT 10 OFFSET 5",
        // UNION branch with disjoint variables joined against a mandatory
        // pattern: exercises the compatibility join (unbound shared vars
        // match anything).
        "PREFIX sorg: <http://schema.org/>
         PREFIX mo: <http://purl.org/ontology/mo/>
         SELECT ?p ?who ?t WHERE {
            { ?p sorg:trailer ?t } UNION { ?q mo:conductor ?who }
            ?p sorg:contentRating ?r .
         }",
    ];
    for (i, q) in queries.iter().enumerate() {
        assert_all_engines_agree(&format!("modifier#{i}"), q);
    }
}

#[test]
fn aggregates_agree_across_engines() {
    // SPARQL 1.1 aggregation evaluates above the BGP layer, so every
    // engine must produce identical groups and aggregate values.
    let queries = [
        "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         SELECT (COUNT(*) AS ?n) WHERE { ?u wsdbm:likes ?p }",
        "PREFIX gr: <http://purl.org/goodrelations/>
         SELECT ?r (COUNT(?o) AS ?n) WHERE { ?r gr:offers ?o }
         GROUP BY ?r ORDER BY ?r",
        "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         SELECT ?w (COUNT(DISTINCT ?u) AS ?subs) WHERE { ?u wsdbm:subscribes ?w }
         GROUP BY ?w ORDER BY DESC(?subs) ?w LIMIT 10",
        "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
         SELECT (MIN(?h) AS ?lo) (MAX(?h) AS ?hi) (AVG(?h) AS ?mean)
         WHERE { ?w wsdbm:hits ?h }",
    ];
    for (i, q) in queries.iter().enumerate() {
        assert_all_engines_agree(&format!("aggregate#{i}"), q);
    }
}

#[test]
fn correlation_intersection_is_semantics_preserving() {
    // The §8 future-work unification optimization must not change any
    // workload result.
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(105);
    let engine = f.engines.store.engine(true);
    for workload in [Workload::basic_testing(), Workload::selectivity_testing()] {
        for template in &workload.templates {
            let query = template.instantiate(&f.data, &mut rng);
            let plain = engine
                .query_opt(&query, &QueryOptions::default())
                .unwrap()
                .0;
            let inter = engine
                .query_opt(
                    &query,
                    &QueryOptions {
                        intersect_correlations: true,
                        ..Default::default()
                    },
                )
                .unwrap()
                .0;
            assert_eq!(plain.canonical(), inter.canonical(), "{}", template.name);
        }
    }
}

#[test]
fn join_order_toggle_is_semantics_preserving() {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(104);
    let engine = f.engines.store.engine(true);
    for template in &Workload::basic_testing().templates {
        let query = template.instantiate(&f.data, &mut rng);
        let on = engine
            .query_opt(
                &query,
                &QueryOptions {
                    optimize_join_order: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .0;
        let off = engine
            .query_opt(
                &query,
                &QueryOptions {
                    optimize_join_order: false,
                    ..Default::default()
                },
            )
            .unwrap()
            .0;
        assert_eq!(on.canonical(), off.canonical(), "{}", template.name);
    }
}
