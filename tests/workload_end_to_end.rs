//! End-to-end checks of the paper-specific claims on the generated WatDiv
//! data: measured ExtVP selectivities fall in the bands the paper
//! annotates, statistics answer the empty ST-8 queries without execution,
//! and the workloads return plausible (non-empty where expected) results.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::dataset;
use s2rdf_core::catalog::{Correlation, ExtVpKey};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_model::{Term, TermId};
use s2rdf_watdiv::vocab::{pred, FOAF, MO, REV, SORG, WSDBM};
use s2rdf_watdiv::{Dataset, Workload};

struct Fixture {
    data: Dataset,
    store: S2rdfStore,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = dataset(1);
        let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
        Fixture { data, store }
    })
}

fn pid(f: &Fixture, ns: &str, local: &str) -> TermId {
    f.store
        .dict()
        .id(&pred(ns, local))
        .unwrap_or_else(|| panic!("predicate {ns}{local} missing"))
}

fn sf(f: &Fixture, corr: Correlation, p1: TermId, p2: TermId) -> f64 {
    f.store
        .catalog()
        .extvp_stat(&ExtVpKey::new(corr, p1, p2))
        .expect("extvp stats built")
        .sf
}

/// The ST workload's annotated selectivities (paper Appendix B), with
/// generous bands — the paper itself reports approximations.
#[test]
fn st_annotated_selectivities_hold() {
    let f = fixture();
    let friend = pid(f, WSDBM, "friendOf");
    let follows = pid(f, WSDBM, "follows");
    let likes = pid(f, WSDBM, "likes");
    let email = pid(f, SORG, "email");
    let age = pid(f, FOAF, "age");
    let job = pid(f, SORG, "jobTitle");
    let reviewer = pid(f, REV, "reviewer");
    let author = pid(f, SORG, "author");
    let artist = pid(f, MO, "artist");
    let language = pid(f, SORG, "language");
    let trailer = pid(f, SORG, "trailer");
    let homepage = pid(f, FOAF, "homepage");

    use Correlation::*;
    let checks: Vec<(&str, f64, (f64, f64))> = vec![
        // ST-1-x: OS selectivity of friendOf w.r.t. user attributes.
        (
            "OS friendOf|email ~0.9",
            sf(f, OS, friend, email),
            (0.8, 0.97),
        ),
        ("OS friendOf|age ~0.5", sf(f, OS, friend, age), (0.4, 0.6)),
        (
            "OS friendOf|jobTitle ~0.05",
            sf(f, OS, friend, job),
            (0.02, 0.1),
        ),
        // ST-1-x annotation: SO of the attribute w.r.t. friendOf is ~1
        // (every attribute-holder is somebody's friend).
        (
            "SO email|friendOf ~1",
            sf(f, SO, email, friend),
            (0.97, 1.0),
        ),
        // ST-2-x: reviewer variants.
        (
            "OS reviewer|email ~0.9",
            sf(f, OS, reviewer, email),
            (0.8, 0.97),
        ),
        (
            "OS reviewer|jobTitle ~0.05",
            sf(f, OS, reviewer, job),
            (0.0, 0.12),
        ),
        (
            "SO email|reviewer ~0.31",
            sf(f, SO, email, reviewer),
            (0.15, 0.45),
        ),
        // ST-3-x: SO selectivity of friendOf.
        (
            "SO friendOf|follows ~0.9",
            sf(f, SO, friend, follows),
            (0.8, 0.98),
        ),
        (
            "SO friendOf|reviewer ~0.31",
            sf(f, SO, friend, reviewer),
            (0.15, 0.45),
        ),
        (
            "SO friendOf|author ~0.04",
            sf(f, SO, friend, author),
            (0.005, 0.12),
        ),
        // ST-4-x.
        (
            "SO likes|follows ~0.9",
            sf(f, SO, likes, follows),
            (0.8, 1.0),
        ),
        (
            "OS follows|likes ~0.24",
            sf(f, OS, follows, likes),
            (0.12, 0.4),
        ),
        (
            "SO likes|author ~0.04",
            sf(f, SO, likes, author),
            (0.005, 0.15),
        ),
        // ST-5-x: SS selectivities.
        (
            "SS friendOf|email ~0.9",
            sf(f, SS, friend, email),
            (0.8, 0.97),
        ),
        (
            "SS friendOf|follows ~0.77",
            sf(f, SS, friend, follows),
            (0.65, 0.9),
        ),
        // ST-6-1: trailer.
        (
            "OS likes|trailer <0.03",
            sf(f, OS, likes, trailer),
            (0.0, 0.03),
        ),
        (
            "SO trailer|likes ~0.96",
            sf(f, SO, trailer, likes),
            (0.8, 1.0),
        ),
        // ST-7: OS vs SO choice.
        (
            "OS follows|homepage ~0.05",
            sf(f, OS, follows, homepage),
            (0.02, 0.12),
        ),
        (
            "SO friendOf|artist ~0.01-0.03",
            sf(f, SO, friend, artist),
            (0.003, 0.06),
        ),
        // ST-8: structural zeros.
        (
            "OS friendOf|language = 0",
            sf(f, OS, friend, language),
            (0.0, 0.0),
        ),
        (
            "OS follows|language = 0",
            sf(f, OS, follows, language),
            (0.0, 0.0),
        ),
    ];
    for (label, value, (lo, hi)) in checks {
        assert!(
            (lo..=hi).contains(&value),
            "{label}: measured SF {value:.4} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn st8_answered_from_statistics_alone() {
    let f = fixture();
    let engine = f.store.engine(true);
    let mut rng = StdRng::seed_from_u64(1);
    for name in ["ST-8-1", "ST-8-2"] {
        let template = Workload::selectivity_testing();
        let template = template.get(name).unwrap();
        let q = template.instantiate(&f.data, &mut rng);
        let (solutions, explain) = engine.query_opt(&q, &Default::default()).unwrap();
        assert!(solutions.is_empty(), "{name} must be empty");
        assert!(
            explain.statically_empty,
            "{name} must be proven empty statically"
        );
        assert!(
            explain.bgp_steps.is_empty(),
            "{name} must not execute scans"
        );
        assert_eq!(explain.naive_join_comparisons, 0);
    }
}

#[test]
fn extvp_reduces_scanned_input() {
    // The mechanism behind Fig. 13: for ST-1-3 the ExtVP plan reads far
    // fewer friendOf tuples than the VP plan.
    let f = fixture();
    let template = Workload::selectivity_testing();
    let template = template.get("ST-1-3").unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let q = template.instantiate(&f.data, &mut rng);
    let (_, ext) = f
        .store
        .engine(true)
        .query_opt(&q, &Default::default())
        .unwrap();
    let (_, vp) = f
        .store
        .engine(false)
        .query_opt(&q, &Default::default())
        .unwrap();
    let ext_rows: usize = ext.bgp_steps.iter().map(|s| s.rows).sum();
    let vp_rows: usize = vp.bgp_steps.iter().map(|s| s.rows).sum();
    assert!(
        ext_rows * 5 < vp_rows,
        "ExtVP should scan ≪ VP: {ext_rows} vs {vp_rows}"
    );
    assert!(ext.naive_join_comparisons < vp.naive_join_comparisons);
}

#[test]
fn key_basic_queries_return_results() {
    // Templates that are near-certainly non-empty at SF1 given the
    // generator's coverages (instantiated several times to smooth over
    // unlucky placeholder draws).
    let f = fixture();
    let engine = f.store.engine(true);
    let basic = Workload::basic_testing();
    let mut rng = StdRng::seed_from_u64(3);
    for name in ["L1", "L3", "L4", "S1", "S3", "F5", "C1", "C3"] {
        let template = basic.get(name).unwrap();
        let total: usize = (0..5)
            .map(|_| {
                let q = template.instantiate(&f.data, &mut rng);
                engine.query(&q).unwrap().len()
            })
            .sum();
        assert!(total > 0, "{name} returned no results in 5 instantiations");
    }
}

#[test]
fn il_chains_return_results() {
    let f = fixture();
    let engine = f.store.engine(true);
    let il = Workload::incremental_linear();
    let mut rng = StdRng::seed_from_u64(4);
    // Unbound chains must be non-empty through diameter 8.
    for name in ["IL-3-5", "IL-3-6", "IL-3-7", "IL-3-8"] {
        let q = il.get(name).unwrap().instantiate(&f.data, &mut rng);
        assert!(!engine.query(&q).unwrap().is_empty(), "{name} empty");
    }
    // Bound chains: at least one of several users/retailers reaches depth 5.
    for name in ["IL-1-5", "IL-2-5"] {
        let total: usize = (0..10)
            .map(|_| {
                let q = il.get(name).unwrap().instantiate(&f.data, &mut rng);
                engine.query(&q).unwrap().len()
            })
            .sum();
        assert!(total > 0, "{name} empty over 10 instantiations");
    }
}

#[test]
fn predicate_shares_match_paper_notes() {
    // §7.3: friendOf + follows ≈ 0.7·|G|; likes ≈ 0.01·|G|.
    let f = fixture();
    let n = f.store.catalog().total_triples as f64;
    let size = |local: &str| f.store.catalog().vp_size(pid(f, WSDBM, local)) as f64 / n;
    assert!((0.6..0.8).contains(&(size("friendOf") + size("follows"))));
    assert!((0.005..0.02).contains(&size("likes")));
}

#[test]
fn extvp_overhead_matches_paper_scale() {
    // Paper §5.3: ExtVP ≈ 11·n tuples without threshold, and >90% of the
    // possible tables empty or SF=1. With our ~45 predicates the ratio
    // lands lower but must stay within the same order of magnitude.
    let f = fixture();
    let ratio = f.store.extvp_tuples() as f64 / f.store.vp_tuples() as f64;
    assert!((3.0..20.0).contains(&ratio), "ExtVP/VP tuple ratio {ratio}");

    let k = f.store.catalog().num_predicates();
    let possible = k * (k - 1) + 2 * k * k; // SS pairs + OS/SO pairs
    let materialized = f.store.num_extvp_tables();
    let frac = materialized as f64 / possible as f64;
    assert!(
        frac < 0.35,
        "most possible ExtVP tables should not be materialized, got {frac:.2}"
    );
}

#[test]
fn queries_with_literal_constants_work() {
    let f = fixture();
    let engine = f.store.engine(true);
    // Bound literal object.
    let q = "PREFIX sorg: <http://schema.org/>
             SELECT ?u WHERE { ?u sorg:jobTitle \"Chef\" }";
    let with_const = engine.query(q).unwrap();
    let q_all = "PREFIX sorg: <http://schema.org/>
                 SELECT ?u ?t WHERE { ?u sorg:jobTitle ?t }";
    let all = engine.query(q_all).unwrap();
    let chefs = (0..all.len())
        .filter(|&i| all.binding(i, "t") == Some(&Term::literal("Chef")))
        .count();
    assert_eq!(with_const.len(), chefs);
}
