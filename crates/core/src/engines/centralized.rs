//! Centralized-store simulation: six sorted triple-permutation indexes
//! with single-threaded index-nested-loop joins (Hexastore / RDF-3X
//! style), standing in for Virtuoso in the paper's comparison (§7).
//!
//! Highly selective queries are answered by a handful of binary searches —
//! exactly why the paper's Virtuoso beats everything on small lookups —
//! while unselective large-diameter queries enumerate enormous
//! intermediate bindings on one core and hit the harness deadline, like
//! Virtuoso's "F" entries on IL-3.

use s2rdf_columnar::{Schema, Table};
use s2rdf_model::{Dictionary, Graph};
use s2rdf_sparql::{TermPattern, TriplePattern};

use crate::compiler::bgp::order_patterns_by;
use crate::error::CoreError;
use crate::exec::{BgpEvaluator, ExecContext, Explain, QueryOptions, Solutions, StepExplain};

use super::{run_query, run_query_result, QueryResult, SparqlEngine};

/// Triple component order of one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Perm {
    Spo,
    Sop,
    Pso,
    Pos,
    Osp,
    Ops,
}

impl Perm {
    /// Reorders an `(s, p, o)` triple into this permutation.
    fn encode(self, t: (u32, u32, u32)) -> [u32; 3] {
        let (s, p, o) = t;
        match self {
            Perm::Spo => [s, p, o],
            Perm::Sop => [s, o, p],
            Perm::Pso => [p, s, o],
            Perm::Pos => [p, o, s],
            Perm::Osp => [o, s, p],
            Perm::Ops => [o, p, s],
        }
    }

    /// Maps a permuted row back to `(s, p, o)`.
    fn decode(self, r: [u32; 3]) -> (u32, u32, u32) {
        match self {
            Perm::Spo => (r[0], r[1], r[2]),
            Perm::Sop => (r[0], r[2], r[1]),
            Perm::Pso => (r[1], r[0], r[2]),
            Perm::Pos => (r[2], r[0], r[1]),
            Perm::Osp => (r[1], r[2], r[0]),
            Perm::Ops => (r[2], r[1], r[0]),
        }
    }
}

const PERMS: [Perm; 6] = [
    Perm::Spo,
    Perm::Sop,
    Perm::Pso,
    Perm::Pos,
    Perm::Osp,
    Perm::Ops,
];

/// Centralized (Virtuoso-style) engine.
#[derive(Debug)]
pub struct CentralizedEngine {
    dict: Dictionary,
    /// One sorted array per permutation, in [`PERMS`] order.
    indexes: [Vec<[u32; 3]>; 6],
}

impl CentralizedEngine {
    /// Builds all six permutation indexes.
    pub fn new(graph: &Graph) -> CentralizedEngine {
        let mut indexes: [Vec<[u32; 3]>; 6] = Default::default();
        for (perm, index) in PERMS.iter().zip(indexes.iter_mut()) {
            index.reserve(graph.len());
            for t in graph.triples() {
                index.push(perm.encode((t.s.0, t.p.0, t.o.0)));
            }
            index.sort_unstable();
        }
        CentralizedEngine {
            dict: graph.dict().clone(),
            indexes,
        }
    }

    /// Total index entries (6 · |G|), for the load/size report.
    pub fn index_entries(&self) -> usize {
        self.indexes.iter().map(Vec::len).sum()
    }

    /// Picks the index whose sort order puts the bound components first
    /// and returns the matching sorted range.
    fn range(&self, s: Option<u32>, p: Option<u32>, o: Option<u32>) -> (Perm, &[[u32; 3]]) {
        let (perm, prefix): (Perm, Vec<u32>) = match (s, p, o) {
            (Some(s), Some(p), Some(o)) => (Perm::Spo, vec![s, p, o]),
            (Some(s), Some(p), None) => (Perm::Spo, vec![s, p]),
            (Some(s), None, Some(o)) => (Perm::Sop, vec![s, o]),
            (Some(s), None, None) => (Perm::Spo, vec![s]),
            (None, Some(p), Some(o)) => (Perm::Pos, vec![p, o]),
            (None, Some(p), None) => (Perm::Pso, vec![p]),
            (None, None, Some(o)) => (Perm::Osp, vec![o]),
            (None, None, None) => (Perm::Spo, vec![]),
        };
        let index = &self.indexes[PERMS.iter().position(|&q| q == perm).unwrap()];
        let lower = index.partition_point(|row| row[..prefix.len()] < prefix[..]);
        let upper = index.partition_point(|row| row[..prefix.len()] <= prefix[..]);
        (perm, &index[lower..upper])
    }

    /// Iterates the `(s, p, o)` triples matching the bound components.
    fn scan(
        &self,
        s: Option<u32>,
        p: Option<u32>,
        o: Option<u32>,
    ) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        let (perm, range) = self.range(s, p, o);
        range.iter().map(move |&r| perm.decode(r))
    }

    /// Estimated matches for a pattern — the index range length, obtained
    /// with two binary searches. Also used by the adaptive (H2RDF+-style)
    /// engine to choose its execution mode.
    pub fn estimate(&self, tp: &TriplePattern) -> usize {
        let resolve = |pat: &TermPattern| match pat {
            TermPattern::Var(_) => Ok(None),
            TermPattern::Term(t) => match self.dict.id(t) {
                Some(id) => Ok(Some(id.0)),
                None => Err(()),
            },
        };
        match (resolve(&tp.s), resolve(&tp.p), resolve(&tp.o)) {
            (Ok(s), Ok(p), Ok(o)) => self.range(s, p, o).1.len(),
            _ => 0,
        }
    }
}

/// Per-query state for the index-nested-loop evaluation.
struct Inlj<'e> {
    engine: &'e CentralizedEngine,
    plan: Vec<TriplePattern>,
    vars: Vec<String>,
    /// Constant ids per pattern position, or the var's binding slot.
    resolved: Vec<[Slot; 3]>,
    out: Table,
    visited: usize,
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Const(u32),
    Var(usize),
    /// A constant not present in the dictionary: no match possible.
    Impossible,
}

impl Inlj<'_> {
    fn recurse(
        &mut self,
        depth: usize,
        binding: &mut Vec<Option<u32>>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<(), CoreError> {
        if depth == self.plan.len() {
            let row: Vec<u32> = binding
                .iter()
                .map(|b| b.expect("all vars bound at leaf"))
                .collect();
            self.out.push_row(&row);
            return Ok(());
        }
        self.visited += 1;
        if self.visited.is_multiple_of(8192) {
            ctx.check_deadline()?;
        }
        let slots = self.resolved[depth];
        let fetch = |slot: Slot, binding: &Vec<Option<u32>>| match slot {
            Slot::Const(c) => Some(Some(c)),
            Slot::Var(i) => Some(binding[i]),
            Slot::Impossible => None,
        };
        let (Some(s), Some(p), Some(o)) = (
            fetch(slots[0], binding),
            fetch(slots[1], binding),
            fetch(slots[2], binding),
        ) else {
            return Ok(()); // impossible constant
        };
        // Collect matches first: `scan` borrows the engine immutably while
        // we mutate bindings below.
        let matches: Vec<(u32, u32, u32)> = self.engine.scan(s, p, o).collect();
        for (ms, mp, mo) in matches {
            self.visited += 1;
            if self.visited.is_multiple_of(8192) {
                ctx.check_deadline()?;
            }
            let mut newly = [usize::MAX; 3];
            let mut ok = true;
            for (slot_idx, (slot, val)) in slots.iter().zip([ms, mp, mo]).enumerate() {
                if let Slot::Var(v) = slot {
                    match binding[*v] {
                        Some(existing) if existing != val => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            binding[*v] = Some(val);
                            newly[slot_idx] = *v;
                        }
                    }
                }
            }
            if ok {
                self.recurse(depth + 1, binding, ctx)?;
            }
            for v in newly {
                if v != usize::MAX {
                    binding[v] = None;
                }
            }
        }
        Ok(())
    }
}

impl BgpEvaluator for CentralizedEngine {
    fn dict(&self) -> &Dictionary {
        &self.dict
    }

    fn eval_bgp(
        &self,
        bgp: &[TriplePattern],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError> {
        let plan = if ctx.options.optimize_join_order {
            order_patterns_by(bgp, |tp| self.estimate(tp), ctx.options.dp_max_patterns)
        } else {
            bgp.to_vec()
        };
        // Variable slots in first-occurrence order of the plan.
        let mut vars: Vec<String> = Vec::new();
        for tp in &plan {
            for v in tp.vars() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        let resolved: Vec<[Slot; 3]> = plan
            .iter()
            .map(|tp| {
                [&tp.s, &tp.p, &tp.o].map(|pat| match pat {
                    TermPattern::Var(v) => Slot::Var(vars.iter().position(|x| x == v).unwrap()),
                    TermPattern::Term(t) => match self.dict.id(t) {
                        Some(id) => Slot::Const(id.0),
                        None => Slot::Impossible,
                    },
                })
            })
            .collect();

        let schema = if vars.is_empty() {
            Schema::new([crate::exec::pattern::UNIT_COL])
        } else {
            Schema::new(vars.clone())
        };
        let unit = vars.is_empty();
        let mut inlj = Inlj {
            engine: self,
            plan,
            vars,
            resolved,
            out: Table::empty(schema),
            visited: 0,
        };
        let mut binding: Vec<Option<u32>> = vec![None; inlj.vars.len().max(usize::from(unit))];
        if unit {
            binding[0] = Some(0); // unit column value
        }
        // One explain step per pattern, in plan order: the INLJ touches
        // each pattern's index range once per outer binding, so we report
        // the estimated range length (the cost driver) as the row count.
        let started = std::time::Instant::now();
        for tp in &inlj.plan {
            let estimate = self.estimate(tp);
            ctx.explain.bgp_steps.push(StepExplain {
                table: "PermIndex".to_string(),
                rows: estimate,
                sf: 1.0,
                wall_micros: 0,
                rationale: "index-nested-loop: sorted permutation range scan".to_string(),
                est_rows: estimate,
            });
        }
        let span = ctx.span_open("inlj");
        let result = inlj.recurse(0, &mut binding, ctx);
        let detail = format!(
            "{} pattern(s), {} index probes",
            inlj.plan.len(),
            inlj.visited
        );
        ctx.span_close(span, detail, Some(inlj.out.num_rows()));
        // Fold the total INLJ wall time into the last step: the recursion
        // interleaves all patterns, so per-pattern attribution is moot.
        if let Some(step) = ctx.explain.bgp_steps.last_mut() {
            step.wall_micros = started.elapsed().as_micros() as u64;
        }
        result?;
        Ok(inlj.out)
    }
}

impl SparqlEngine for CentralizedEngine {
    fn name(&self) -> String {
        "Centralized (Virtuoso-sim)".to_string()
    }

    fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError> {
        run_query(self, sparql, options)
    }

    fn query_result_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(QueryResult, Explain), CoreError> {
        run_query_result(self, sparql, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    #[test]
    fn builds_six_indexes() {
        let e = CentralizedEngine::new(&g1());
        assert_eq!(e.index_entries(), 6 * 7);
    }

    #[test]
    fn scans_use_all_binding_shapes() {
        let e = CentralizedEngine::new(&g1());
        let id = |x: &str| e.dict.id(&Term::iri(x)).unwrap().0;
        assert_eq!(e.scan(None, None, None).count(), 7);
        assert_eq!(e.scan(Some(id("A")), None, None).count(), 3);
        assert_eq!(e.scan(None, Some(id("follows")), None).count(), 4);
        assert_eq!(e.scan(None, None, Some(id("D"))).count(), 2);
        assert_eq!(e.scan(Some(id("A")), Some(id("likes")), None).count(), 2);
        assert_eq!(e.scan(Some(id("A")), None, Some(id("I1"))).count(), 1);
        assert_eq!(e.scan(None, Some(id("likes")), Some(id("I2"))).count(), 2);
        assert_eq!(
            e.scan(Some(id("A")), Some(id("follows")), Some(id("B")))
                .count(),
            1
        );
    }

    #[test]
    fn q1_matches_paper() {
        let e = CentralizedEngine::new(&g1());
        let s = e
            .query(
                "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y .
                                  ?y <follows> ?z . ?z <likes> ?w }",
            )
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "y"), Some(&Term::iri("B")));
    }

    #[test]
    fn fully_bound_and_unknown_constants() {
        let e = CentralizedEngine::new(&g1());
        assert_eq!(
            e.query("SELECT * WHERE { <A> <follows> <B> }")
                .unwrap()
                .len(),
            1
        );
        assert!(e
            .query("SELECT * WHERE { <A> <follows> <Z9> }")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn repeated_variable_constrains() {
        let e = CentralizedEngine::new(&g1());
        let s = e.query("SELECT * WHERE { ?x <follows> ?x }").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn deadline_enforced() {
        let e = CentralizedEngine::new(&g1());
        let opts = QueryOptions {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..Default::default()
        };
        match e.query_opt("SELECT * WHERE { ?a ?b ?c . ?c ?d ?e }", &opts) {
            Err(CoreError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
