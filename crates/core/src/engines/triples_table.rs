//! Baseline engine over a single triples table (paper §4.1).
//!
//! Every triple pattern is a selection over the full TT — the layout whose
//! "whole dataset has to be touched at least once, even if the query only
//! selects a very small subset". Joins and everything above them reuse the
//! shared executor, so the measured difference to S2RDF isolates the
//! layout.

use rustc_hash::FxHashMap;

use s2rdf_columnar::exec::natural_join_auto;
use s2rdf_columnar::Table;
use s2rdf_model::{Dictionary, Graph, TermId};
use s2rdf_sparql::{TermPattern, TriplePattern};

use crate::compiler::bgp::order_patterns_by;
use crate::error::CoreError;
use crate::exec::{BgpEvaluator, ExecContext, Explain, QueryOptions, Solutions, StepExplain};
use crate::layout::triples_table::build_triples_table;
use crate::layout::TT_NAME;

use super::{run_query, run_query_result, scan_pattern, QueryResult, SparqlEngine};

/// Triples-table baseline engine.
#[derive(Debug)]
pub struct TriplesTableEngine {
    dict: Dictionary,
    tt: Table,
    pred_counts: FxHashMap<TermId, usize>,
}

impl TriplesTableEngine {
    /// Builds the engine from a graph.
    pub fn new(graph: &Graph) -> TriplesTableEngine {
        TriplesTableEngine {
            dict: graph.dict().clone(),
            tt: build_triples_table(graph),
            pred_counts: graph.predicate_counts().into_iter().collect(),
        }
    }

    /// Size estimate used for join ordering: the predicate's triple count,
    /// or the full table for unbound predicates.
    fn estimate(&self, tp: &TriplePattern) -> usize {
        match &tp.p {
            TermPattern::Var(_) => self.tt.num_rows(),
            TermPattern::Term(t) => self
                .dict
                .id(t)
                .and_then(|p| self.pred_counts.get(&p).copied())
                .unwrap_or(0),
        }
    }
}

impl BgpEvaluator for TriplesTableEngine {
    fn dict(&self) -> &Dictionary {
        &self.dict
    }

    fn eval_bgp(
        &self,
        bgp: &[TriplePattern],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError> {
        let ordered = if ctx.options.optimize_join_order {
            order_patterns_by(bgp, |tp| self.estimate(tp), ctx.options.dp_max_patterns)
        } else {
            bgp.to_vec()
        };
        let mut result: Option<Table> = None;
        for tp in &ordered {
            ctx.check_deadline()?;
            let span = ctx.span_open("scan");
            let started = std::time::Instant::now();
            let scanned = scan_pattern(&self.tt, &[(0, &tp.s), (1, &tp.p), (2, &tp.o)], &self.dict);
            let rationale = "single triples table: the only physical layout".to_string();
            ctx.span_close(
                span,
                format!("{TT_NAME}: {rationale}"),
                Some(scanned.num_rows()),
            );
            ctx.explain.bgp_steps.push(StepExplain {
                table: TT_NAME.to_string(),
                rows: scanned.num_rows(),
                sf: 1.0,
                wall_micros: started.elapsed().as_micros() as u64,
                rationale,
                est_rows: 0,
            });
            result = Some(match result {
                None => scanned,
                Some(acc) => {
                    let span = ctx.span_open("join");
                    let joined = natural_join_auto(&acc, &scanned);
                    ctx.span_close(
                        span,
                        format!(
                            "build={} probe={}",
                            acc.num_rows().min(scanned.num_rows()),
                            acc.num_rows().max(scanned.num_rows())
                        ),
                        Some(joined.num_rows()),
                    );
                    ctx.note_join(acc.num_rows(), scanned.num_rows(), joined.num_rows())?;
                    joined
                }
            });
        }
        Ok(result.expect("non-empty BGP"))
    }
}

impl SparqlEngine for TriplesTableEngine {
    fn name(&self) -> String {
        "TriplesTable".to_string()
    }

    fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError> {
        run_query(self, sparql, options)
    }

    fn query_result_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(QueryResult, Explain), CoreError> {
        run_query_result(self, sparql, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    #[test]
    fn q1_matches_paper() {
        let e = TriplesTableEngine::new(&g1());
        let s = e
            .query(
                "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y .
                                  ?y <follows> ?z . ?z <likes> ?w }",
            )
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "x"), Some(&Term::iri("A")));
    }

    #[test]
    fn var_predicate_query() {
        let e = TriplesTableEngine::new(&g1());
        let s = e.query("SELECT DISTINCT ?p WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn estimate_prefers_smaller_predicates() {
        let e = TriplesTableEngine::new(&g1());
        let follows = TriplePattern::new(
            TermPattern::Var("a".into()),
            TermPattern::Term(Term::iri("follows")),
            TermPattern::Var("b".into()),
        );
        let likes = TriplePattern::new(
            TermPattern::Var("b".into()),
            TermPattern::Term(Term::iri("likes")),
            TermPattern::Var("c".into()),
        );
        assert_eq!(e.estimate(&follows), 4);
        assert_eq!(e.estimate(&likes), 3);
    }
}
