//! The S2RDF engine: ExtVP-aware BGP evaluation (paper §6).

use rustc_hash::{FxHashMap, FxHashSet};
use s2rdf_columnar::exec::{natural_join_adaptive, BuildSide, JoinDecision, JoinStrategy};
use s2rdf_columnar::{ops, SidewaysFilter, Table};
use s2rdf_model::{Dictionary, TermId};
use s2rdf_sparql::{TermPattern, TriplePattern};

use crate::catalog::ExtVpKey;
use crate::compiler::bgp::{compile_bgp, CompileOptions};
use crate::compiler::cost::{self, CostModel};
use crate::compiler::{TableSource, TpPlan};
use crate::error::CoreError;
use crate::exec::{
    BgpEvaluator, DegradedStep, ExecContext, Explain, QueryOptions, ReplanExplain, Solutions,
    StepExplain,
};
use crate::layout::{extvp_table_name, vp_table_name, TT_NAME};
use crate::store::S2rdfStore;

use super::{
    empty_bgp_table, run_query, run_query_result, scan_pattern, scan_pattern_pruned, QueryResult,
    SparqlEngine,
};

/// The S2RDF query engine over a built store.
///
/// With `use_extvp = true` it compiles BGPs against the ExtVP statistics
/// (Algorithms 1–4); with `false` it restricts table selection to VP — the
/// paper's "S2RDF VP" configuration used throughout §7.1's comparison.
#[derive(Debug, Clone, Copy)]
pub struct S2rdfEngine<'a> {
    store: &'a S2rdfStore,
    use_extvp: bool,
}

impl<'a> S2rdfEngine<'a> {
    /// Creates an engine over a store.
    pub fn new(store: &'a S2rdfStore, use_extvp: bool) -> S2rdfEngine<'a> {
        S2rdfEngine { store, use_extvp }
    }

    /// Whether this engine uses ExtVP candidates.
    pub fn uses_extvp(&self) -> bool {
        self.use_extvp
    }

    /// Executes one scan step. Returns the scanned table plus, when the
    /// scan is a *pure rename* of a stored table (every pattern position a
    /// distinct variable, no bound constants, no correlation
    /// intersection), the stored table's name: successive scans of the
    /// same source are then row-identical, so `eval_bgp` can reuse a join
    /// hash index built over one of them for the others.
    fn exec_step(
        &self,
        step: &TpPlan,
        ctx: &mut ExecContext<'_>,
        sideways: Option<(&str, &SidewaysFilter)>,
    ) -> Result<(Table, Option<String>), CoreError> {
        let dict = self.store.dict();
        let started = std::time::Instant::now();
        let span = ctx.span_open("scan");
        let intersected = ctx.options.intersect_correlations && !step.extra_reducers.is_empty();
        // Zone-map pruned fast path: for VP/ExtVP steps with a bound
        // constant (or an applicable sideways semi-join filter) over a
        // chunked on-disk body, scan the compressed form directly,
        // skipping whole chunks before decode. Falls through to the
        // materialized path in every other case.
        let pruned = if intersected {
            None
        } else {
            self.pruned_scan(step, sideways)?
        };
        let (out, name, sf, rationale, source) = match step.source {
            _ if pruned.is_some() => {
                let out = pruned.expect("guard checked");
                let (name, rationale) = match step.source {
                    TableSource::Vp(p) => (
                        vp_table_name(dict, p),
                        "VP: zone-map pruned chunk scan".to_string(),
                    ),
                    TableSource::ExtVp(key) => (
                        extvp_table_name(dict, &key),
                        format!(
                            "ExtVP (SF {:.3} ≤ threshold): zone-map pruned chunk scan",
                            step.sf
                        ),
                    ),
                    _ => unreachable!("pruned scans only serve VP/ExtVP sources"),
                };
                (out, name, step.sf, rationale, None)
            }
            TableSource::TriplesTable => {
                let cols = [(0, &step.tp.s), (1, &step.tp.p), (2, &step.tp.o)];
                let out = scan_pattern(self.store.triples_table(), &cols, dict);
                let source = (!intersected && distinct_vars(&cols)).then(|| TT_NAME.to_string());
                let rationale = "triples table: predicate unbound, no VP candidate".to_string();
                (out, TT_NAME.to_string(), step.sf, rationale, source)
            }
            TableSource::Vp(p) => {
                let name = vp_table_name(dict, p);
                let table = self.store.try_vp_table(p)?.ok_or_else(|| {
                    CoreError::Catalog(format!(
                        "VP table {name} missing though the compiler selected it"
                    ))
                })?;
                let table = self.apply_intersection(table, step, ctx);
                let cols = [(0, &step.tp.s), (1, &step.tp.o)];
                let out = scan_pattern(&table, &cols, dict);
                let source = (!intersected && distinct_vars(&cols)).then(|| name.clone());
                let rationale = if self.use_extvp {
                    "VP: no ExtVP reduction under threshold for this pattern".to_string()
                } else {
                    "VP: ExtVP disabled for this engine".to_string()
                };
                (out, name, step.sf, rationale, source)
            }
            TableSource::ExtVp(key) => {
                let planned = extvp_table_name(dict, &key);
                match self.load_extvp_with_retry(&key, &planned, ctx) {
                    Ok(table) => {
                        let table = self.apply_intersection(table, step, ctx);
                        let cols = [(0, &step.tp.s), (1, &step.tp.o)];
                        let out = scan_pattern(&table, &cols, dict);
                        let source =
                            (!intersected && distinct_vars(&cols)).then(|| planned.clone());
                        let rationale = format!(
                            "ExtVP: most selective correlation (SF {:.3} ≤ threshold)",
                            step.sf
                        );
                        (out, planned, step.sf, rationale, source)
                    }
                    Err((attempts, reason)) => {
                        // Degraded execution: every ExtVP partition is a
                        // subset of its VP table that contains all rows
                        // which can survive the join, so scanning the VP
                        // table instead changes cost, never results (the
                        // shared-memory analogue of Spark recomputing a
                        // lost partition from lineage).
                        let p1 = TermId(key.p1);
                        let fallback = vp_table_name(dict, p1);
                        let table = self.store.try_vp_table(p1)?.ok_or_else(|| {
                            CoreError::Catalog(format!(
                                "VP table {fallback} missing; cannot degrade {planned}"
                            ))
                        })?;
                        ctx.explain.degraded_steps.push(DegradedStep {
                            planned: planned.clone(),
                            fallback: fallback.clone(),
                            reason,
                            attempts,
                        });
                        let table = self.apply_intersection(table, step, ctx);
                        let cols = [(0, &step.tp.s), (1, &step.tp.o)];
                        let out = scan_pattern(&table, &cols, dict);
                        let source =
                            (!intersected && distinct_vars(&cols)).then(|| fallback.clone());
                        let rationale =
                            format!("degraded: {planned} unavailable, VP base table used");
                        (
                            out,
                            format!("{fallback} (degraded)"),
                            1.0,
                            rationale,
                            source,
                        )
                    }
                }
            }
            TableSource::Empty => unreachable!("empty plans short-circuit earlier"),
        };
        let table_label = if intersected {
            format!("{name} ∩ {} reducers", step.extra_reducers.len())
        } else {
            name
        };
        ctx.span_close(
            span,
            format!("{table_label}: {rationale}"),
            Some(out.num_rows()),
        );
        ctx.explain.bgp_steps.push(StepExplain {
            table: table_label,
            rows: out.num_rows(),
            sf,
            wall_micros: started.elapsed().as_micros() as u64,
            rationale,
            est_rows: self
                .store
                .zone_estimated_rows(&step.source, &step.tp)
                .unwrap_or_else(|| self.store.estimated_rows(&step.source)),
        });
        Ok((out, source))
    }

    /// The zone-map-pruned scan for one step, or `None` to use the
    /// materialized path. Engaged only when pruning can pay — the pattern
    /// binds a constant, or a sideways filter targets one of its
    /// variables — over a chunked on-disk VP/ExtVP body, with no fault
    /// injector attached (the injector's deterministic op counting is
    /// calibrated to the materialized path). Decode errors also fall back:
    /// the materialized path re-reads and runs the full retry/degradation
    /// machinery.
    fn pruned_scan(
        &self,
        step: &TpPlan,
        sideways: Option<(&str, &SidewaysFilter)>,
    ) -> Result<Option<Table>, CoreError> {
        let cols = [(0, &step.tp.s), (1, &step.tp.o)];
        let has_bound = cols.iter().any(|(_, p)| !p.is_var());
        let sw_applies =
            sideways.is_some_and(|(var, _)| cols.iter().any(|&(_, p)| p.as_var() == Some(var)));
        if (!has_bound && !sw_applies) || !self.store.pruned_scans_enabled() {
            return Ok(None);
        }
        let ct = match step.source {
            TableSource::Vp(p) => self.store.try_vp_compressed(p)?,
            TableSource::ExtVp(key) => self.store.try_extvp_compressed(&key)?,
            TableSource::TriplesTable | TableSource::Empty => None,
        };
        let Some(ct) = ct else {
            return Ok(None);
        };
        match scan_pattern_pruned(&ct, &cols, self.store.dict(), sideways) {
            Some(Ok(out)) => Ok(Some(out)),
            Some(Err(_)) | None => Ok(None),
        }
    }

    /// The stored-table name [`S2rdfEngine::exec_step`] would expose for
    /// index reuse — computed from the plan alone, before any scan, so
    /// `eval_bgp` can count how often each source repeats. Degraded
    /// fallbacks can rename a source at runtime; the count is then merely
    /// conservative (reuse caching is a pure optimization).
    fn planned_source(&self, step: &TpPlan, ctx: &ExecContext<'_>) -> Option<String> {
        let dict = self.store.dict();
        if ctx.options.intersect_correlations && !step.extra_reducers.is_empty() {
            return None;
        }
        match step.source {
            TableSource::TriplesTable => {
                let cols = [(0, &step.tp.s), (1, &step.tp.p), (2, &step.tp.o)];
                distinct_vars(&cols).then(|| TT_NAME.to_string())
            }
            TableSource::Vp(p) => {
                let cols = [(0, &step.tp.s), (1, &step.tp.o)];
                distinct_vars(&cols).then(|| vp_table_name(dict, p))
            }
            TableSource::ExtVp(key) => {
                let cols = [(0, &step.tp.s), (1, &step.tp.o)];
                distinct_vars(&cols).then(|| extvp_table_name(dict, &key))
            }
            TableSource::Empty => None,
        }
    }

    /// Loads an ExtVP partition with bounded retries
    /// ([`QueryOptions::max_retries`], exponential backoff from
    /// [`QueryOptions::retry_backoff_ms`]). Transient failures are recorded
    /// in [`Explain::recovered_errors`]; on exhaustion (or a non-retryable
    /// miss, e.g. a quarantined partition) returns `Err((attempts,
    /// reason))` so the caller can degrade to the VP table.
    fn load_extvp_with_retry(
        &self,
        key: &ExtVpKey,
        planned: &str,
        ctx: &mut ExecContext<'_>,
    ) -> Result<std::sync::Arc<Table>, (u32, String)> {
        let max_attempts = ctx.options.max_retries.saturating_add(1);
        let mut backoff_ms = ctx.options.retry_backoff_ms;
        for attempt in 1..=max_attempts {
            match self.store.try_extvp_table(key) {
                Ok(Some(table)) => {
                    if attempt > 1 {
                        ctx.explain
                            .recovered_errors
                            .push(format!("{planned}: recovered on attempt {attempt}"));
                    }
                    return Ok(table);
                }
                Ok(None) => {
                    return Err((
                        attempt,
                        "partition not materialized or quarantined".to_string(),
                    ))
                }
                Err(e) => {
                    ctx.explain
                        .recovered_errors
                        .push(format!("{planned}: attempt {attempt} failed: {e}"));
                    if attempt < max_attempts && backoff_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                        backoff_ms = backoff_ms.saturating_mul(2);
                    }
                }
            }
        }
        Err((
            max_attempts,
            format!("all {max_attempts} load attempts failed"),
        ))
    }

    /// The §8 future-work "unification" optimization: every materialized
    /// reduction applicable to the pattern is a superset of the rows that
    /// can contribute, so their intersection is a tighter input than the
    /// single best table. Computed here at query time via hash-set
    /// filtering against the chosen table.
    fn apply_intersection(
        &self,
        chosen: std::sync::Arc<Table>,
        step: &TpPlan,
        ctx: &ExecContext<'_>,
    ) -> std::sync::Arc<Table> {
        if !ctx.options.intersect_correlations || step.extra_reducers.is_empty() {
            return chosen;
        }
        let mut keep: Option<Vec<bool>> = None;
        for key in &step.extra_reducers {
            let Some(reducer) = self.store.extvp_table(key) else {
                continue;
            };
            let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
            set.reserve(reducer.num_rows());
            for row in 0..reducer.num_rows() {
                set.insert((reducer.value(row, 0), reducer.value(row, 1)));
            }
            let keep = keep.get_or_insert_with(|| vec![true; chosen.num_rows()]);
            for (row, flag) in keep.iter_mut().enumerate() {
                if *flag && !set.contains(&(chosen.value(row, 0), chosen.value(row, 1))) {
                    *flag = false;
                }
            }
        }
        match keep {
            Some(keep) if keep.iter().any(|&k| !k) => {
                let indices: Vec<usize> = keep
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &k)| k.then_some(i))
                    .collect();
                std::sync::Arc::new(chosen.gather(&indices))
            }
            _ => chosen,
        }
    }
}

impl BgpEvaluator for S2rdfEngine<'_> {
    fn dict(&self) -> &Dictionary {
        self.store.dict()
    }

    fn eval_bgp(
        &self,
        bgp: &[TriplePattern],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError> {
        let options = CompileOptions {
            use_extvp: self.use_extvp,
            optimize_join_order: ctx.options.optimize_join_order,
            dp_max_patterns: ctx.options.dp_max_patterns,
        };
        let mut plan = compile_bgp(bgp, self.store.catalog(), self.store.dict(), options);
        ctx.explain.join_order_method = plan.order_method.label().to_string();
        if plan.statically_empty {
            ctx.explain.statically_empty = true;
            return Ok(empty_bgp_table(bgp));
        }
        // Refine per-node estimates with zone-map evidence: bound-constant
        // scans over chunked on-disk bodies report the surviving-chunk row
        // sum, usually far below the catalog's whole-table count. The
        // compiler's initial order stands (estimates refine, they don't
        // re-litigate the plan); the tightened graph feeds the AQE replans
        // below, which start from observed cardinalities anyway.
        if plan.graph.len() == plan.steps.len() {
            for (i, step) in plan.steps.iter().enumerate() {
                if let Some(rows) = self.store.zone_estimated_rows(&step.source, &step.tp) {
                    plan.graph.set_node_estimate(i, rows as f64);
                }
            }
        }
        // Build-side hash indexes keyed by (stored table name, key column
        // positions). A star query scans the same VP/ExtVP table for
        // several patterns with the same join variable; the scans are pure
        // renames of the stored table, so one build pass serves them all.
        // Count each source's planned occurrences up front: a source that
        // repeats is worth building on even when the planner's
        // cardinality rule would put the build on the other (smaller)
        // side, because the cached index pays for itself on every later
        // scan. (Keying the cache on the size-preferred build side alone
        // broke reuse whenever the accumulator was smaller — e.g. a star
        // whose first pattern has a bound subject.)
        let mut source_uses: FxHashMap<String, usize> = FxHashMap::default();
        for step in &plan.steps {
            if let Some(src) = self.planned_source(step, ctx) {
                *source_uses.entry(src).or_insert(0) += 1;
            }
        }
        let mut index_cache: FxHashMap<(String, Vec<usize>), ops::BuildIndex> =
            FxHashMap::default();
        let mut result: Option<Table> = None;
        // Execution worklist over `plan.steps` indices. The compiler fixed
        // the initial order; the AQE feedback loop below may permute the
        // not-yet-executed tail when the materialized cardinality after a
        // step diverges from the planner's estimate. `prefix_est[pos]` is
        // the planner's estimate for the accumulator after executing
        // `sequence[pos]` (re-spliced on every re-plan).
        let mut sequence: Vec<usize> = (0..plan.steps.len()).collect();
        let mut prefix_est = plan.prefix_est.clone();
        let mut executed: Vec<usize> = Vec::with_capacity(plan.steps.len());
        let mut pos = 0;
        while pos < sequence.len() {
            let step_no = sequence[pos];
            let step = &plan.steps[step_no];
            ctx.check_deadline()?;
            // Sideways semi-join filter: when the accumulator is small,
            // hand its join-key column (the first variable shared with the
            // pattern) to the scan — chunks outside the accumulator's key
            // range are pruned before decode, and surviving rows are
            // Bloom-tested before they reach the join. Purely a reduction:
            // false positives are dropped by the join as always.
            let sideways_built: Option<(&str, SidewaysFilter)> = result.as_ref().and_then(|acc| {
                let vars = step.tp.vars();
                let (col, var) = acc
                    .schema()
                    .names()
                    .iter()
                    .enumerate()
                    .find(|(_, n)| vars.contains(&n.as_ref()))
                    .map(|(i, n)| (i, n.as_ref()))?;
                SidewaysFilter::build(acc.column(col)).map(|f| (var, f))
            });
            let (scanned, source) =
                self.exec_step(step, ctx, sideways_built.as_ref().map(|(v, f)| (*v, f)))?;
            result = Some(match result {
                None => scanned,
                Some(acc) => {
                    let span = ctx.span_open("join");
                    // Natural-join key columns, paired by variable name.
                    let mut scan_keys = Vec::new();
                    let mut acc_keys = Vec::new();
                    for (i, name) in scanned.schema().names().iter().enumerate() {
                        if let Some(j) = acc.schema().index_of(name.as_ref()) {
                            scan_keys.push(i);
                            acc_keys.push(j);
                        }
                    }
                    let mut reused = false;
                    // Serial index-join decision for the cache paths below:
                    // one build index over `scanned`, probed by `acc`.
                    let indexed_decision = |out_rows: usize| JoinDecision {
                        strategy: JoinStrategy::Serial,
                        build_side: BuildSide::Right,
                        partitions: 1,
                        resplits: 0,
                        build_rows: scanned.num_rows(),
                        probe_rows: acc.num_rows(),
                        out_rows,
                    };
                    // The serial index-join (and its cross-step cache) only
                    // competes in the serial regime: once the accumulator
                    // is past the serial threshold, a parallel probe beats
                    // even a cache hit — rebuilding an index over a stored
                    // table costs milliseconds, while serially probing a
                    // huge accumulator costs seconds — so large joins
                    // always go through the adaptive planner.
                    let serial_regime = acc.num_rows() < ctx.options.join.serial_row_threshold;
                    let join_started = std::time::Instant::now();
                    let (joined, decision) = match source {
                        Some(src) if !scan_keys.is_empty() && serial_regime => {
                            let cache_key = (src.clone(), scan_keys.clone());
                            if let Some(index) = index_cache.get(&cache_key) {
                                // The cached index was built over a
                                // row-identical scan of the same source,
                                // so its row ids address `scanned`
                                // directly (which supplies this step's
                                // column names).
                                reused = true;
                                ctx.explain.index_reuses += 1;
                                s2rdf_columnar::metrics::counter("columnar.join.index_reuses")
                                    .inc();
                                let out =
                                    ops::hash_join_probe(&scanned, index, &acc, &acc_keys, false);
                                let decision = indexed_decision(out.num_rows());
                                (out, decision)
                            } else if source_uses.get(&src).copied().unwrap_or(0) >= 2
                                || scanned.num_rows() <= acc.num_rows()
                            {
                                let index = ops::build_join_index(&scanned, &scan_keys);
                                let out =
                                    ops::hash_join_probe(&scanned, &index, &acc, &acc_keys, false);
                                index_cache.insert(cache_key, index);
                                let decision = indexed_decision(out.num_rows());
                                (out, decision)
                            } else {
                                natural_join_adaptive(&acc, &scanned, &ctx.options.join)
                            }
                        }
                        _ => natural_join_adaptive(&acc, &scanned, &ctx.options.join),
                    };
                    ctx.note_join_decision(
                        format!("bgp step {step_no}"),
                        decision,
                        reused,
                        prefix_est.get(pos).map(|e| e.round().max(0.0) as u64),
                        join_started.elapsed().as_micros() as u64,
                    );
                    ctx.span_close(
                        span,
                        format!(
                            "{}{}",
                            decision.summary(),
                            if reused { ", index reused" } else { "" }
                        ),
                        Some(joined.num_rows()),
                    );
                    ctx.note_join(acc.num_rows(), scanned.num_rows(), joined.num_rows())?;
                    // Re-check after the join as well: a single large join can
                    // dominate the step time, and checking only at step entry
                    // would let the engine overrun the deadline by one full
                    // join before noticing.
                    ctx.check_deadline()?;
                    joined
                }
            });
            executed.push(step_no);
            // AQE feedback (paper §8 "adaptive optimization" direction):
            // when the materialized accumulator diverges from the estimate
            // by more than `replan_threshold` (in either direction) and at
            // least two steps remain — with one remaining step there is
            // nothing to reorder — re-run ordering over the tail with the
            // observed cardinality as the known start. The graph is empty
            // when ordering was disabled or the BGP exceeded the planner's
            // 64-pattern limit; replanning is off in both cases.
            let remaining = sequence.len() - pos - 1;
            if ctx.options.replan_threshold > 0.0
                && remaining >= 2
                && plan.graph.len() == plan.steps.len()
            {
                if let (Some(est), Some(acc)) = (prefix_est.get(pos), result.as_ref()) {
                    let observed = acc.num_rows();
                    let lo = est.min(observed as f64).max(1.0);
                    let hi = est.max(observed as f64).max(1.0);
                    if hi / lo > ctx.options.replan_threshold {
                        let new = cost::replan_remaining(
                            &plan.graph,
                            &executed,
                            observed,
                            &CostModel::default(),
                            ctx.options.dp_max_patterns,
                        );
                        let changed = new.order != sequence[pos + 1..];
                        ctx.explain.replans.push(ReplanExplain {
                            after_step: pos,
                            estimated_rows: *est,
                            observed_rows: observed,
                            changed,
                            new_order: new
                                .order
                                .iter()
                                .map(|&i| plan.steps[i].tp.to_string())
                                .collect(),
                        });
                        sequence.truncate(pos + 1);
                        sequence.extend(new.order);
                        prefix_est.truncate(pos + 1);
                        prefix_est.extend(new.prefix_est);
                    }
                }
            }
            pos += 1;
        }
        Ok(result.expect("eval_bgp called with non-empty BGP"))
    }
}

/// True when every pattern position is a variable and no variable repeats
/// — exactly the case where [`scan_pattern`] is a pure column rename of
/// the stored table (same rows, same order), making its hash index
/// shareable across scans of the same source.
fn distinct_vars(cols: &[(usize, &TermPattern)]) -> bool {
    let mut names: Vec<&str> = Vec::new();
    for (_, pat) in cols {
        match pat.as_var() {
            Some(v) if !names.contains(&v) => names.push(v),
            _ => return false,
        }
    }
    true
}

impl SparqlEngine for S2rdfEngine<'_> {
    fn name(&self) -> String {
        if self.use_extvp {
            "S2RDF ExtVP".to_string()
        } else {
            "S2RDF VP".to_string()
        }
    }

    fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError> {
        run_query(self, sparql, options)
    }

    fn query_result_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(QueryResult, Explain), CoreError> {
        run_query_result(self, sparql, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BuildOptions;
    use s2rdf_model::{Graph, Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    /// Q1 from the paper (§2.1): "friends of friends who like the same
    /// things" — exactly one solution on G1.
    const Q1: &str = "SELECT * WHERE {
        ?x <likes> ?w . ?x <follows> ?y .
        ?y <follows> ?z . ?z <likes> ?w
    }";

    #[test]
    fn q1_on_g1() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let s = store.query(Q1).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "x"), Some(&Term::iri("A")));
        assert_eq!(s.binding(0, "y"), Some(&Term::iri("B")));
        assert_eq!(s.binding(0, "z"), Some(&Term::iri("C")));
        assert_eq!(s.binding(0, "w"), Some(&Term::iri("I2")));
    }

    #[test]
    fn extvp_and_vp_agree() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let a = store.engine(true).query(Q1).unwrap();
        let b = store.engine(false).query(Q1).unwrap();
        assert_eq!(a.canonical(), b.canonical());
    }

    /// Fig. 8: the single BGP join of (?x follows ?y . ?y likes ?z) costs
    /// 12 naive comparisons on VP but 1 on ExtVP.
    #[test]
    fn fig8_join_comparisons() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let q = "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }";
        let (s_ext, ex_ext) = store
            .engine(true)
            .query_opt(q, &Default::default())
            .unwrap();
        let (s_vp, ex_vp) = store
            .engine(false)
            .query_opt(q, &Default::default())
            .unwrap();
        assert_eq!(s_ext.canonical(), s_vp.canonical());
        assert_eq!(s_ext.len(), 1);
        assert_eq!(ex_vp.naive_join_comparisons, 12); // 4 × 3
        assert_eq!(ex_ext.naive_join_comparisons, 1); // 1 × 1
    }

    /// Fig. 12: with join-order optimization Q1 does 6 naive comparisons
    /// instead of 10.
    #[test]
    fn fig12_join_order_comparisons() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let engine = store.engine(true);
        let (_, unopt) = engine
            .query_opt(
                Q1,
                &QueryOptions {
                    optimize_join_order: false,
                    ..Default::default()
                },
            )
            .unwrap();
        let (_, opt) = engine.query_opt(Q1, &QueryOptions::default()).unwrap();
        assert_eq!(unopt.naive_join_comparisons, 10); // (3·2) + (2·1) + (2·1)
        assert_eq!(opt.naive_join_comparisons, 6); // (1·1) + (1·2) + (1·3)
    }

    #[test]
    fn statistics_answer_empty_queries() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        // likes → likes chains don't exist in G1 (ST-8-style query).
        let q = "SELECT * WHERE { ?a <likes> ?b . ?b <likes> ?c }";
        let (s, explain) = store
            .engine(true)
            .query_opt(q, &Default::default())
            .unwrap();
        assert!(s.is_empty());
        assert!(explain.statically_empty);
        assert!(explain.bgp_steps.is_empty()); // nothing was executed

        // The VP engine cannot know statically.
        let (s_vp, ex_vp) = store
            .engine(false)
            .query_opt(q, &Default::default())
            .unwrap();
        assert!(s_vp.is_empty());
        assert!(!ex_vp.statically_empty);
    }

    #[test]
    fn bound_constants_and_var_predicates() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let s = store.query("SELECT ?y WHERE { <A> <follows> ?y }").unwrap();
        assert_eq!(s.len(), 1);
        // Var predicate goes through the triples table.
        let s = store.query("SELECT ?p WHERE { <A> ?p ?o }").unwrap();
        assert_eq!(s.len(), 3);
        // Fully bound pattern.
        let s = store.query("SELECT * WHERE { <A> <follows> <B> }").unwrap();
        assert_eq!(s.len(), 1);
        let s = store.query("SELECT * WHERE { <A> <follows> <C> }").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn correlation_intersection_is_semantics_preserving_and_tighter() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let engine = store.engine(true);
        let plain = engine.query_opt(Q1, &QueryOptions::default()).unwrap();
        let inter = engine
            .query_opt(
                Q1,
                &QueryOptions {
                    intersect_correlations: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(plain.0.canonical(), inter.0.canonical());
        // The intersected plan never scans more rows than the plain one…
        let rows = |ex: &Explain| ex.bgp_steps.iter().map(|s| s.rows).sum::<usize>();
        assert!(rows(&inter.1) <= rows(&plain.1));
        // …and Q1's TP2 has two applicable reductions (OS follows|follows,
        // SS follows|likes), whose intersection {(A,B)} is strictly
        // smaller than either (size 2). The explain notes the reducers.
        assert!(
            inter.1.bgp_steps.iter().any(|s| s.table.contains("∩")),
            "no intersected step in {:?}",
            inter.1.bgp_steps
        );
        assert!(rows(&inter.1) < rows(&plain.1));
    }

    #[test]
    fn expired_deadline_aborts_with_timeout() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        for use_extvp in [true, false] {
            let err = store
                .engine(use_extvp)
                .query_opt(
                    Q1,
                    &QueryOptions {
                        deadline: Some(std::time::Instant::now()),
                        ..Default::default()
                    },
                )
                .unwrap_err();
            assert!(matches!(err, CoreError::Timeout), "got {err:?}");
        }
    }

    #[test]
    fn intermediate_row_budget_aborts_with_resource_exhausted() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        // Q1 on G1 needs at least one non-empty intermediate join, so a
        // zero-row budget must trip on the VP engine.
        let err = store
            .engine(false)
            .query_opt(
                Q1,
                &QueryOptions {
                    max_intermediate_rows: Some(0),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, CoreError::ResourceExhausted(_)),
            "got {err:?}"
        );
        // A generous budget changes nothing.
        let (s, _) = store
            .engine(false)
            .query_opt(
                Q1,
                &QueryOptions {
                    max_intermediate_rows: Some(1_000_000),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn star_query_reuses_join_index_across_patterns() {
        // Three patterns share the object variable ?x and (with OO not
        // built) all scan the same VP table as pure renames, so the third
        // join can probe the hash index built for the second.
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let q = "SELECT * WHERE { ?a <likes> ?x . ?b <likes> ?x . ?c <likes> ?x }";
        let (ext, ex_ext) = store
            .engine(true)
            .query_opt(q, &Default::default())
            .unwrap();
        let (vp, ex_vp) = store
            .engine(false)
            .query_opt(q, &Default::default())
            .unwrap();
        assert_eq!(ext.canonical(), vp.canonical());
        // likes = {(A,I1),(A,I2),(C,I2)}: I1 contributes 1³, I2 2³.
        assert_eq!(ext.len(), 9);
        assert!(
            ex_ext.index_reuses >= 1 && ex_vp.index_reuses >= 1,
            "expected index reuse, got ext={} vp={}",
            ex_ext.index_reuses,
            ex_vp.index_reuses
        );
        // Non-star queries never reuse (every source is scanned once).
        let (_, ex_q1) = store
            .engine(true)
            .query_opt(Q1, &Default::default())
            .unwrap();
        assert_eq!(ex_q1.index_reuses, 0);
    }

    #[test]
    fn bound_star_reuses_index_after_build_side_flip() {
        // Regression test for the build-side-selection bug in index reuse:
        // a bound first pattern makes the accumulator the smaller join
        // input, so the size-preferred build side is the accumulator — and
        // the old code, which only cached when the scanned side happened
        // to be smaller, never cached and never reused. The repeated
        // source (VP likes, scanned by the ?b and ?c patterns) must be
        // built on and reused regardless of which side is smaller.
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let q = "SELECT * WHERE { <A> <likes> ?x . ?b <likes> ?x . ?c <likes> ?x }";
        for use_extvp in [true, false] {
            let (s, ex) = store
                .engine(use_extvp)
                .query_opt(q, &Default::default())
                .unwrap();
            // A likes {I1, I2}; I1 has 1 liker, I2 has 2 → 1·1 + 2·2.
            assert_eq!(s.len(), 5);
            assert!(
                ex.index_reuses >= 1,
                "extvp={use_extvp}: expected index reuse, got {}",
                ex.index_reuses
            );
            // Both joins record a planner decision, one of them a reuse.
            assert_eq!(ex.join_steps.len(), 2, "{:?}", ex.join_steps);
            assert!(ex.join_steps.iter().any(|j| j.reused_index));
        }
    }

    #[test]
    fn threshold_store_still_correct() {
        // With a harsh threshold nothing is materialized but results match.
        let full = S2rdfStore::build(&g1(), &BuildOptions::default());
        let th = S2rdfStore::build(
            &g1(),
            &BuildOptions {
                threshold: 0.3,
                build_extvp: true,
                ..Default::default()
            },
        );
        assert!(th.num_extvp_tables() < full.num_extvp_tables());
        assert_eq!(
            th.query(Q1).unwrap().canonical(),
            full.query(Q1).unwrap().canonical()
        );
    }

    /// Seeded mis-estimate: a bound-subject star scan where the heuristic
    /// (`size × 0.1`) underestimates the scan by 10× — every `p` triple
    /// has subject `Hub`, so the bound constant filters nothing. The
    /// divergence exceeds the default threshold (4.0), the AQE loop
    /// re-plans the remaining two steps, and the result multiset is
    /// unchanged against a run with re-planning disabled.
    #[test]
    fn replanning_fires_on_misestimate_and_preserves_results() {
        let mut triples = Vec::new();
        for i in 0..30 {
            triples.push(t("Hub", "p", &format!("X{i}")));
            triples.push(t(&format!("X{i}"), "q", &format!("Y{i}")));
            triples.push(t(&format!("Y{i}"), "r", &format!("Z{i}")));
        }
        let store = S2rdfStore::build(&Graph::from_triples(triples), &BuildOptions::default());
        let q = "SELECT * WHERE { <Hub> <p> ?a . ?a <q> ?b . ?b <r> ?c }";
        let engine = store.engine(true);
        let (with_replan, ex) = engine.query_opt(q, &QueryOptions::default()).unwrap();
        let (without, ex_off) = engine
            .query_opt(
                q,
                &QueryOptions {
                    replan_threshold: 0.0,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(with_replan.canonical(), without.canonical());
        assert_eq!(with_replan.len(), 30);
        assert!(ex_off.replans.is_empty());
        assert_eq!(ex.replans.len(), 1, "{:?}", ex.replans);
        let replan = &ex.replans[0];
        assert_eq!(replan.after_step, 0);
        assert_eq!(replan.observed_rows, 30);
        assert!(
            replan.estimated_rows < 30.0 / 4.0,
            "estimate {} should diverge beyond the threshold",
            replan.estimated_rows
        );
        assert_eq!(replan.new_order.len(), 2);
        // The join steps carry the (re-spliced) estimates for --profile.
        assert!(ex.join_steps.iter().all(|j| j.est_out_rows.is_some()));
    }

    /// `StepExplain::est_rows` is resolved from the catalog at execution
    /// time, so a delta applied between two runs of the same query must be
    /// reflected in the second explain (regression guard for the PR 6
    /// incremental-update path).
    #[test]
    fn explain_estimates_follow_deltas() {
        let mut store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let q = "SELECT * WHERE { ?x <follows> ?y }";
        let (_, before) = store
            .engine(false)
            .query_opt(q, &Default::default())
            .unwrap();
        assert_eq!(before.bgp_steps[0].est_rows, 4);
        let inserts: Vec<Triple> = (0..20)
            .map(|i| t(&format!("N{i}"), "follows", &format!("N{}", i + 1)))
            .collect();
        store.insert(&inserts).unwrap();
        let (s, after) = store
            .engine(false)
            .query_opt(q, &Default::default())
            .unwrap();
        assert_eq!(s.len(), 24);
        assert_eq!(after.bgp_steps[0].est_rows, 24);
    }
}
