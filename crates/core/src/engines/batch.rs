//! MapReduce-style batch engine, simulating SHARD and PigSPARQL (§3.2/§7).
//!
//! Queries execute as a left-deep sequence of *jobs*. Every job
//!
//! 1. pays a configurable startup latency (job scheduling / JVM spin-up in
//!    a real Hadoop cluster),
//! 2. re-reads the triples table from disk (MapReduce jobs always rescan
//!    their input),
//! 3. joins the freshly scanned pattern(s) with the intermediate result,
//!    which is itself read from and written back to disk (HDFS
//!    materialization between jobs).
//!
//! [`JobGranularity::PerPattern`] runs one job per triple pattern —
//! SHARD's Clause-Iteration. [`JobGranularity::MultiJoin`] groups patterns
//! that share a join variable into one job — PigSPARQL's multi-join
//! optimization, which the paper credits for PigSPARQL beating SHARD.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rustc_hash::FxHashMap;
use s2rdf_columnar::io::{deserialize_table, serialize_table};
use s2rdf_columnar::ops::natural_join;
use s2rdf_columnar::Table;
use s2rdf_model::{Dictionary, Graph, TermId};
use s2rdf_sparql::{TermPattern, TriplePattern};

use crate::compiler::bgp::order_patterns_by;
use crate::error::CoreError;
use crate::exec::{BgpEvaluator, ExecContext, Explain, QueryOptions, Solutions, StepExplain};
use crate::layout::triples_table::build_triples_table;

use super::{run_query, run_query_result, scan_pattern, QueryResult, SparqlEngine};

/// How triple patterns map to jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobGranularity {
    /// One MapReduce job per triple pattern (SHARD).
    PerPattern,
    /// Patterns sharing a join variable run in one job (PigSPARQL).
    MultiJoin,
}

/// The batch (MapReduce-simulation) engine.
#[derive(Debug)]
pub struct BatchEngine {
    dict: Dictionary,
    work_dir: PathBuf,
    tt_path: PathBuf,
    pred_counts: FxHashMap<TermId, usize>,
    total_triples: usize,
    job_overhead: Duration,
    granularity: JobGranularity,
    tmp_counter: AtomicU64,
}

impl BatchEngine {
    /// Builds the engine, persisting the triples table under `work_dir`.
    ///
    /// `job_overhead` models per-job startup latency; use
    /// `Duration::ZERO` in tests and tens of milliseconds in benchmarks (a
    /// laptop-scaled stand-in for the ~30 s Hadoop job latency that puts
    /// SHARD/PigSPARQL orders of magnitude behind S2RDF).
    pub fn new(
        graph: &Graph,
        work_dir: impl Into<PathBuf>,
        job_overhead: Duration,
        granularity: JobGranularity,
    ) -> Result<BatchEngine, CoreError> {
        let work_dir = work_dir.into();
        std::fs::create_dir_all(&work_dir).map_err(s2rdf_columnar::ColumnarError::from)?;
        let tt = build_triples_table(graph);
        let tt_path = work_dir.join("triples.col");
        std::fs::write(&tt_path, serialize_table(&tt))
            .map_err(s2rdf_columnar::ColumnarError::from)?;
        Ok(BatchEngine {
            dict: graph.dict().clone(),
            work_dir,
            tt_path,
            pred_counts: graph.predicate_counts().into_iter().collect(),
            total_triples: graph.len(),
            job_overhead,
            granularity,
            tmp_counter: AtomicU64::new(0),
        })
    }

    fn estimate(&self, tp: &TriplePattern) -> usize {
        match &tp.p {
            TermPattern::Var(_) => self.total_triples,
            TermPattern::Term(t) => self
                .dict
                .id(t)
                .and_then(|p| self.pred_counts.get(&p).copied())
                .unwrap_or(0),
        }
    }

    fn load_tt(&self) -> Result<Table, CoreError> {
        let data = std::fs::read(&self.tt_path).map_err(s2rdf_columnar::ColumnarError::from)?;
        Ok(deserialize_table(&data)?)
    }

    /// Groups an ordered pattern list into jobs.
    fn jobs<'q>(&self, ordered: &'q [TriplePattern]) -> Vec<Vec<&'q TriplePattern>> {
        match self.granularity {
            JobGranularity::PerPattern => ordered.iter().map(|tp| vec![tp]).collect(),
            JobGranularity::MultiJoin => {
                // Greedy: extend the current job while one variable is
                // common to every pattern in it (an n-ary join on that
                // variable runs as a single MapReduce job).
                let mut jobs: Vec<Vec<&TriplePattern>> = Vec::new();
                let mut current: Vec<&TriplePattern> = Vec::new();
                let mut common: Vec<String> = Vec::new();
                for tp in ordered {
                    let tp_vars: Vec<String> = tp.vars().iter().map(|v| v.to_string()).collect();
                    if current.is_empty() {
                        current.push(tp);
                        common = tp_vars;
                        continue;
                    }
                    let next_common: Vec<String> = common
                        .iter()
                        .filter(|v| tp_vars.contains(v))
                        .cloned()
                        .collect();
                    if next_common.is_empty() {
                        jobs.push(std::mem::take(&mut current));
                        current.push(tp);
                        common = tp_vars;
                    } else {
                        current.push(tp);
                        common = next_common;
                    }
                }
                if !current.is_empty() {
                    jobs.push(current);
                }
                jobs
            }
        }
    }
}

impl BgpEvaluator for BatchEngine {
    fn dict(&self) -> &Dictionary {
        &self.dict
    }

    fn eval_bgp(
        &self,
        bgp: &[TriplePattern],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError> {
        let ordered = if ctx.options.optimize_join_order {
            order_patterns_by(bgp, |tp| self.estimate(tp), ctx.options.dp_max_patterns)
        } else {
            bgp.to_vec()
        };
        let jobs = self.jobs(&ordered);

        let run = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = |i: usize| self.work_dir.join(format!("job-{run}-{i}.col"));

        let mut intermediate_path: Option<PathBuf> = None;
        for (job_idx, job) in jobs.iter().enumerate() {
            ctx.check_deadline()?;
            let job_span = ctx.span_open("job");
            // 1. Job startup latency.
            if !self.job_overhead.is_zero() {
                std::thread::sleep(self.job_overhead);
            }
            // 2. The map phase rescans the input relation from disk.
            let tt = self.load_tt()?;
            // 3. Read the previous intermediate from disk, join everything.
            let mut acc: Option<Table> = match &intermediate_path {
                Some(path) => {
                    let data = std::fs::read(path).map_err(s2rdf_columnar::ColumnarError::from)?;
                    Some(deserialize_table(&data)?)
                }
                None => None,
            };
            for tp in job {
                let started = std::time::Instant::now();
                let scanned = scan_pattern(&tt, &[(0, &tp.s), (1, &tp.p), (2, &tp.o)], &self.dict);
                ctx.explain.bgp_steps.push(StepExplain {
                    table: format!("TT (job {})", job_idx + 1),
                    rows: scanned.num_rows(),
                    sf: 1.0,
                    wall_micros: started.elapsed().as_micros() as u64,
                    rationale: "MapReduce job rescans the full TT from disk".to_string(),
                    est_rows: 0,
                });
                acc = Some(match acc {
                    None => scanned,
                    Some(prev) => {
                        let span = ctx.span_open("join");
                        let joined = natural_join(&prev, &scanned);
                        ctx.span_close(
                            span,
                            format!(
                                "build={} probe={}",
                                prev.num_rows().min(scanned.num_rows()),
                                prev.num_rows().max(scanned.num_rows())
                            ),
                            Some(joined.num_rows()),
                        );
                        ctx.note_join(prev.num_rows(), scanned.num_rows(), joined.num_rows())?;
                        joined
                    }
                });
            }
            // 4. The reduce phase writes its output back to "HDFS".
            let result = acc.expect("jobs are non-empty");
            let out_path = tmp(job_idx);
            std::fs::write(&out_path, serialize_table(&result))
                .map_err(s2rdf_columnar::ColumnarError::from)?;
            ctx.span_close(
                job_span,
                format!(
                    "job {} of {}: {} pattern(s), HDFS round-trip",
                    job_idx + 1,
                    jobs.len(),
                    job.len()
                ),
                Some(result.num_rows()),
            );
            if let Some(prev) = intermediate_path.replace(out_path) {
                let _ = std::fs::remove_file(prev);
            }
        }

        let final_path = intermediate_path.expect("non-empty BGP produced jobs");
        let data = std::fs::read(&final_path).map_err(s2rdf_columnar::ColumnarError::from)?;
        let _ = std::fs::remove_file(&final_path);
        Ok(deserialize_table(&data)?)
    }
}

impl SparqlEngine for BatchEngine {
    fn name(&self) -> String {
        match self.granularity {
            JobGranularity::PerPattern => "Batch/MapReduce (SHARD-sim)".to_string(),
            JobGranularity::MultiJoin => "Batch/MapReduce (PigSPARQL-sim)".to_string(),
        }
    }

    fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError> {
        run_query(self, sparql, options)
    }

    fn query_result_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(QueryResult, Explain), CoreError> {
        run_query_result(self, sparql, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    fn engine(granularity: JobGranularity) -> BatchEngine {
        let dir = std::env::temp_dir().join(format!(
            "s2rdf-batch-{}-{granularity:?}",
            std::process::id()
        ));
        BatchEngine::new(&g1(), dir, Duration::ZERO, granularity).unwrap()
    }

    const Q1: &str = "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y .
                                       ?y <follows> ?z . ?z <likes> ?w }";

    #[test]
    fn shard_sim_answers_q1() {
        let e = engine(JobGranularity::PerPattern);
        let s = e.query(Q1).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "x"), Some(&Term::iri("A")));
    }

    #[test]
    fn pigsparql_sim_matches_shard_sim() {
        let shard = engine(JobGranularity::PerPattern);
        let pig = engine(JobGranularity::MultiJoin);
        assert_eq!(
            shard.query(Q1).unwrap().canonical(),
            pig.query(Q1).unwrap().canonical()
        );
    }

    #[test]
    fn multi_join_uses_fewer_jobs() {
        // A pure star: all patterns share ?x, so MultiJoin runs one job.
        let e = engine(JobGranularity::MultiJoin);
        let star = "SELECT * WHERE { ?x <likes> ?a . ?x <likes> ?b . ?x <follows> ?c }";
        let tps: Vec<TriplePattern> = match s2rdf_sparql::parse_query(star).unwrap().pattern {
            s2rdf_sparql::GraphPattern::Bgp(tps) => tps,
            _ => unreachable!(),
        };
        assert_eq!(e.jobs(&tps).len(), 1);
        let per = engine(JobGranularity::PerPattern);
        assert_eq!(per.jobs(&tps).len(), 3);
    }

    #[test]
    fn overhead_is_paid_per_job() {
        let dir = std::env::temp_dir().join(format!("s2rdf-batch-ovh-{}", std::process::id()));
        let e = BatchEngine::new(
            &g1(),
            dir,
            Duration::from_millis(20),
            JobGranularity::PerPattern,
        )
        .unwrap();
        let start = std::time::Instant::now();
        e.query("SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?w }")
            .unwrap();
        // Two patterns ⇒ two jobs ⇒ ≥ 40 ms.
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn deadline_respected() {
        let e = engine(JobGranularity::PerPattern);
        let opts = QueryOptions {
            deadline: Some(std::time::Instant::now() - Duration::from_millis(1)),
            ..Default::default()
        };
        assert!(matches!(e.query_opt(Q1, &opts), Err(CoreError::Timeout)));
    }
}
