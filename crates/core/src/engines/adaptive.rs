//! H2RDF+-style adaptive engine (paper §3.2 / §7.2).
//!
//! H2RDF+ "maintains aggregated index statistics to estimate triple
//! pattern selectivity … based on these estimations, the system adaptively
//! decides whether queries are executed centralized over a single cluster
//! node or distributed via MapReduce". This simulation composes the
//! centralized six-index engine with the batch (MapReduce) engine and
//! picks per BGP: if every pattern's index-range estimate is below a
//! selectivity budget, run centralized merge-join style; otherwise pay the
//! batch jobs. The paper's observed behaviour follows: selective queries
//! are answered in milliseconds, unselective ones fall off a cliff
//! ("distributed query execution can be orders of magnitude slower than
//! centralized").

use std::path::PathBuf;
use std::time::Duration;

use s2rdf_columnar::Table;
use s2rdf_model::{Dictionary, Graph};
use s2rdf_sparql::TriplePattern;

use crate::error::CoreError;
use crate::exec::{BgpEvaluator, ExecContext, Explain, QueryOptions, Solutions};

use super::batch::{BatchEngine, JobGranularity};
use super::centralized::CentralizedEngine;
use super::{run_query, run_query_result, QueryResult, SparqlEngine};

/// Default per-pattern row budget for centralized execution.
pub const DEFAULT_CENTRAL_BUDGET: usize = 50_000;

/// The adaptive (H2RDF+-simulation) engine.
#[derive(Debug)]
pub struct AdaptiveEngine {
    centralized: CentralizedEngine,
    batch: BatchEngine,
    /// Estimated-rows budget: BGPs whose largest pattern estimate exceeds
    /// this run on the batch path.
    central_budget: usize,
}

impl AdaptiveEngine {
    /// Builds both execution paths. `work_dir` and `job_overhead`
    /// parameterize the batch path like [`BatchEngine::new`].
    pub fn new(
        graph: &Graph,
        work_dir: impl Into<PathBuf>,
        job_overhead: Duration,
        central_budget: usize,
    ) -> Result<AdaptiveEngine, CoreError> {
        Ok(AdaptiveEngine {
            centralized: CentralizedEngine::new(graph),
            batch: BatchEngine::new(graph, work_dir, job_overhead, JobGranularity::MultiJoin)?,
            central_budget,
        })
    }

    /// True if the BGP will run on the centralized path.
    pub fn chooses_centralized(&self, bgp: &[TriplePattern]) -> bool {
        bgp.iter()
            .all(|tp| self.centralized.estimate(tp) <= self.central_budget)
    }
}

impl BgpEvaluator for AdaptiveEngine {
    fn dict(&self) -> &Dictionary {
        self.centralized.dict()
    }

    fn eval_bgp(
        &self,
        bgp: &[TriplePattern],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError> {
        if self.chooses_centralized(bgp) {
            self.centralized.eval_bgp(bgp, ctx)
        } else {
            self.batch.eval_bgp(bgp, ctx)
        }
    }
}

impl SparqlEngine for AdaptiveEngine {
    fn name(&self) -> String {
        "Adaptive (H2RDF+-sim)".to_string()
    }

    fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError> {
        run_query(self, sparql, options)
    }

    fn query_result_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(QueryResult, Explain), CoreError> {
        run_query_result(self, sparql, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, Triple};
    use s2rdf_sparql::GraphPattern;

    fn graph() -> Graph {
        // Many `follows` edges (unselective) and a handful of `likes`.
        let mut triples = Vec::new();
        for i in 0..500 {
            triples.push(Triple::new(
                Term::iri(format!("u{i}")),
                Term::iri("follows"),
                Term::iri(format!("u{}", (i + 1) % 500)),
            ));
        }
        for i in 0..5 {
            triples.push(Triple::new(
                Term::iri(format!("u{i}")),
                Term::iri("likes"),
                Term::iri("thing"),
            ));
        }
        Graph::from_triples(triples)
    }

    fn engine(budget: usize) -> AdaptiveEngine {
        let dir =
            std::env::temp_dir().join(format!("s2rdf-adaptive-{}-{budget}", std::process::id()));
        AdaptiveEngine::new(&graph(), dir, Duration::ZERO, budget).unwrap()
    }

    fn bgp_of(q: &str) -> Vec<TriplePattern> {
        match s2rdf_sparql::parse_query(q).unwrap().pattern {
            GraphPattern::Bgp(tps) => tps,
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn selective_queries_go_centralized() {
        let e = engine(100);
        assert!(e.chooses_centralized(&bgp_of("SELECT * WHERE { ?x <likes> ?y }")));
        assert!(!e.chooses_centralized(&bgp_of("SELECT * WHERE { ?x <follows> ?y }")));
        assert!(!e.chooses_centralized(&bgp_of(
            "SELECT * WHERE { ?x <likes> ?t . ?x <follows> ?y }"
        )));
    }

    #[test]
    fn both_paths_agree() {
        let e = engine(100);
        let q = "SELECT * WHERE { ?x <likes> ?t . ?x <follows> ?y }"; // batch path
        let s = e.query(q).unwrap();
        let central_only = CentralizedEngine::new(&graph());
        assert_eq!(s.canonical(), central_only.query(q).unwrap().canonical());
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn budget_flips_the_decision() {
        let loose = engine(10_000);
        assert!(loose.chooses_centralized(&bgp_of("SELECT * WHERE { ?x <follows> ?y }")));
    }
}
