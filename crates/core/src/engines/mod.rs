//! Query engines: S2RDF itself plus the baseline and competitor-style
//! engines used in the paper's evaluation (§7).
//!
//! | Engine | Stands in for | Mechanism |
//! |---|---|---|
//! | [`s2rdf::S2rdfEngine`] (ExtVP) | S2RDF | statistics-driven ExtVP selection + parallel hash joins |
//! | [`s2rdf::S2rdfEngine`] (VP mode) | S2RDF VP | plain vertical partitioning |
//! | [`triples_table::TriplesTableEngine`] | naive triples-table SQL (§4.1) | full-table scans per pattern |
//! | [`property_table::PropertyTableEngine`] | Sempala | star-shaped groups answered without joins from a property table |
//! | [`batch::BatchEngine`] | SHARD / PigSPARQL | left-deep disk-materialized jobs with per-job startup latency |
//! | [`adaptive::AdaptiveEngine`] | H2RDF+ | statistics-driven choice between centralized and batch execution |
//! | [`centralized::CentralizedEngine`] | Virtuoso / RDF-3X | single-threaded six-permutation sorted indexes, index-nested-loop joins |

pub mod adaptive;
pub mod batch;
pub mod centralized;
pub mod property_table;
pub mod s2rdf;
pub mod triples_table;

use rustc_hash::FxHashSet;
use s2rdf_columnar::{Schema, Table};
use s2rdf_model::{Dictionary, Term, Triple};
use s2rdf_sparql::{GraphPattern, QueryForm, Selection, TermPattern, TriplePattern};

use crate::error::CoreError;
use crate::exec::{eval_query, BgpEvaluator, ExecContext, Explain, QueryOptions, Solutions};

/// The result of a SPARQL query, shaped by its query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// `SELECT`: a solution sequence.
    Solutions(Solutions),
    /// `ASK`: whether the pattern has at least one solution.
    Bool(bool),
    /// `CONSTRUCT`/`DESCRIBE`: a deduplicated set of triples.
    Graph(Vec<Triple>),
}

/// The common engine interface: parse + evaluate a SPARQL query.
pub trait SparqlEngine {
    /// Engine name for reports ("S2RDF ExtVP", "Sempala-sim", …).
    fn name(&self) -> String;

    /// Runs a query with options, returning solutions and the execution
    /// trace. Errors with [`CoreError::Unsupported`] on non-`SELECT` forms;
    /// use [`SparqlEngine::query_result_opt`] for those.
    fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError>;

    /// Runs a query of any form (`SELECT`/`ASK`/`CONSTRUCT`/`DESCRIBE`)
    /// with options, returning the form-shaped result and the trace.
    fn query_result_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(QueryResult, Explain), CoreError>;

    /// Runs a query with default options.
    fn query(&self, sparql: &str) -> Result<Solutions, CoreError> {
        self.query_opt(sparql, &QueryOptions::default())
            .map(|(s, _)| s)
    }

    /// Runs a query of any form with default options.
    fn query_result(&self, sparql: &str) -> Result<QueryResult, CoreError> {
        self.query_result_opt(sparql, &QueryOptions::default())
            .map(|(r, _)| r)
    }
}

/// Shared `SELECT` driver: every engine is a [`BgpEvaluator`]; this parses
/// the query and runs the algebra evaluator on top of it.
pub(crate) fn run_query(
    ev: &dyn BgpEvaluator,
    sparql: &str,
    options: &QueryOptions,
) -> Result<(Solutions, Explain), CoreError> {
    let (result, explain) = run_query_result(ev, sparql, options)?;
    match result {
        QueryResult::Solutions(s) => Ok((s, explain)),
        _ => Err(CoreError::Unsupported(
            "ASK/CONSTRUCT/DESCRIBE queries return no solution sequence; use query_result".into(),
        )),
    }
}

/// Shared driver for every query form.
pub(crate) fn run_query_result(
    ev: &dyn BgpEvaluator,
    sparql: &str,
    options: &QueryOptions,
) -> Result<(QueryResult, Explain), CoreError> {
    let query = s2rdf_sparql::parse_query(sparql)?;
    let pool = s2rdf_columnar::pool::current();
    let before = pool.stats();
    let mut ctx = ExecContext::new(ev.dict(), *options);
    let span = ctx.span_open("query");
    let result = match &query.form {
        QueryForm::Select => QueryResult::Solutions(eval_query(ev, &query, &mut ctx)?),
        QueryForm::Ask => {
            // ASK only needs existence; evaluate the pattern as a SELECT *
            // (modifiers cannot change emptiness except LIMIT 0, which is
            // honored by eval_query's slicing).
            let solutions = eval_query(ev, &as_select_all(&query), &mut ctx)?;
            QueryResult::Bool(!solutions.is_empty())
        }
        QueryForm::Construct(template) => {
            let solutions = eval_query(ev, &as_select_all(&query), &mut ctx)?;
            QueryResult::Graph(instantiate_template(template, &solutions))
        }
        QueryForm::Describe(targets) => {
            let solutions = if targets.iter().any(|t| matches!(t, TermPattern::Var(_))) {
                eval_query(ev, &as_select_all(&query), &mut ctx)?
            } else {
                Solutions {
                    vars: Vec::new(),
                    rows: Vec::new(),
                }
            };
            QueryResult::Graph(describe_terms(ev, targets, &solutions, &mut ctx)?)
        }
    };
    let out_rows = match &result {
        QueryResult::Solutions(s) => s.len(),
        QueryResult::Bool(_) => 1,
        QueryResult::Graph(g) => g.len(),
    };
    ctx.span_close(span, String::new(), Some(out_rows));
    // Attribute the pool's activity delta to this query — every engine's
    // joins and pipelines submit morsels to the same shared pool.
    let after = pool.stats();
    ctx.explain.pool = Some(crate::exec::PoolExplain {
        workers: after.workers,
        tasks: after.tasks.saturating_sub(before.tasks),
        steals: after.steals.saturating_sub(before.steals),
        max_queue_depth: after.max_queue_depth,
        busy_micros: after
            .busy_micros
            .iter()
            .zip(&before.busy_micros)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect(),
    });
    Ok((result, ctx.explain))
}

/// Reshapes an ASK/CONSTRUCT/DESCRIBE query into the `SELECT *` over the
/// same pattern and modifiers, so the shared evaluator produces the binding
/// sequence the form consumes.
fn as_select_all(query: &s2rdf_sparql::Query) -> s2rdf_sparql::Query {
    let mut q = query.clone();
    q.form = QueryForm::Select;
    q.selection = Selection::All;
    q.distinct = false;
    q
}

/// Instantiates a CONSTRUCT template once per solution; triples with an
/// unbound or missing variable are skipped (SPARQL §16.2), duplicates are
/// eliminated.
fn instantiate_template(template: &[TriplePattern], solutions: &Solutions) -> Vec<Triple> {
    let mut triples = Vec::new();
    let mut seen: FxHashSet<Triple> = FxHashSet::default();
    for row in 0..solutions.len() {
        for tp in template {
            let resolve = |p: &TermPattern| -> Option<Term> {
                match p {
                    TermPattern::Term(t) => Some(t.clone()),
                    TermPattern::Var(v) => solutions.binding(row, v).cloned(),
                }
            };
            if let (Some(s), Some(p), Some(o)) = (resolve(&tp.s), resolve(&tp.p), resolve(&tp.o)) {
                let triple = Triple::new(s, p, o);
                if seen.insert(triple.clone()) {
                    triples.push(triple);
                }
            }
        }
    }
    triples
}

/// DESCRIBE: for every target term (IRI targets directly, variable targets
/// via their bindings in the pattern solutions), emit all triples where the
/// term appears as subject or object.
fn describe_terms(
    ev: &dyn BgpEvaluator,
    targets: &[TermPattern],
    solutions: &Solutions,
    ctx: &mut ExecContext<'_>,
) -> Result<Vec<Triple>, CoreError> {
    let mut terms: Vec<Term> = Vec::new();
    let mut seen_terms: FxHashSet<Term> = FxHashSet::default();
    for target in targets {
        match target {
            TermPattern::Term(t) => {
                if seen_terms.insert(t.clone()) {
                    terms.push(t.clone());
                }
            }
            TermPattern::Var(v) => {
                for row in 0..solutions.len() {
                    if let Some(t) = solutions.binding(row, v) {
                        if seen_terms.insert(t.clone()) {
                            terms.push(t.clone());
                        }
                    }
                }
            }
        }
    }
    let mut triples = Vec::new();
    let mut seen: FxHashSet<Triple> = FxHashSet::default();
    for term in terms {
        // Triples with the term as subject, then as object. `#`-prefixed
        // variable names keep these probes out of user-visible schemas.
        for as_subject in [true, false] {
            let (s, o) = if as_subject {
                (
                    TermPattern::Term(term.clone()),
                    TermPattern::Var("#do".to_string()),
                )
            } else {
                (
                    TermPattern::Var("#ds".to_string()),
                    TermPattern::Term(term.clone()),
                )
            };
            let tp = TriplePattern::new(s, TermPattern::Var("#dp".to_string()), o);
            let table = ev.eval_bgp(&[tp], ctx)?;
            let pi = table.schema().index_of("#dp").expect("predicate column");
            let vi = table
                .schema()
                .index_of(if as_subject { "#do" } else { "#ds" })
                .expect("endpoint column");
            for row in 0..table.num_rows() {
                let (Some(p), Some(v)) = (
                    ctx.term_of(table.value(row, pi)),
                    ctx.term_of(table.value(row, vi)),
                ) else {
                    continue;
                };
                let triple = if as_subject {
                    Triple::new(term.clone(), p.clone(), v.clone())
                } else {
                    Triple::new(v.clone(), p.clone(), term.clone())
                };
                if seen.insert(triple.clone()) {
                    triples.push(triple);
                }
            }
        }
    }
    Ok(triples)
}

/// An empty solution table with one column per BGP variable (used when
/// statistics prove emptiness).
pub(crate) fn empty_bgp_table(bgp: &[TriplePattern]) -> Table {
    let vars = GraphPattern::Bgp(bgp.to_vec()).vars();
    Table::empty(Schema::new(vars))
}

/// Evaluates one triple pattern against a physical table.
///
/// `cols` maps physical column indices to the pattern positions they hold
/// (e.g. `[(0, s), (1, o)]` for a VP table, `[(0, s), (1, p), (2, o)]` for
/// the triples table). Implements the paper's Algorithm 2: bound terms
/// become selections, variables become projections-with-rename; a repeated
/// variable adds a column-equality selection.
///
/// Since the morsel-driven executor PR this is a **fused** scan: every
/// selection (all bound constants plus repeated-variable equalities) folds
/// into one bitmap via the vectorized kernels, and only the *projected*
/// columns are gathered, once, at the end — late materialization instead of
/// one intermediate table per `select_eq`. Used by every engine.
pub(crate) fn scan_pattern(
    table: &Table,
    cols: &[(usize, &TermPattern)],
    dict: &Dictionary,
) -> Table {
    use s2rdf_columnar::ops::kernels;
    use s2rdf_columnar::Bitmap;

    // Resolve bound terms to dictionary ids (unknown term → empty scan).
    let mut bounds: Vec<(usize, u32)> = Vec::new();
    for &(col, pat) in cols {
        if let Some(term) = pat.as_term() {
            let Some(id) = dict.id(term) else {
                return Table::empty(scan_schema(cols));
            };
            bounds.push((col, id.0));
        }
    }

    // Variable projections; repeated variables become equality selections.
    let mut proj: Vec<(usize, &str)> = Vec::new();
    let mut eq_pairs: Vec<(usize, usize)> = Vec::new();
    for &(col, pat) in cols {
        if let Some(var) = pat.as_var() {
            match proj.iter().find(|(_, v)| *v == var) {
                Some(&(first_col, _)) => eq_pairs.push((first_col, col)),
                None => proj.push((col, var)),
            }
        }
    }

    // Fold every selection into one filter bitmap over the base table —
    // no intermediate table per predicate.
    let selection: Option<Bitmap> = if bounds.is_empty() && eq_pairs.is_empty() {
        None
    } else {
        let mut bm = match bounds.split_first() {
            Some((&(c, v), rest)) => {
                let mut bm = kernels::eq_const(table.column(c), v);
                for &(c, v) in rest {
                    kernels::and_eq_const(&mut bm, table.column(c), v);
                }
                bm
            }
            None => Bitmap::full(table.num_rows()),
        };
        for &(a, b) in &eq_pairs {
            kernels::and_eq_cols(&mut bm, table.column(a), table.column(b));
        }
        Some(bm)
    };
    let out_rows = selection
        .as_ref()
        .map_or(table.num_rows(), Bitmap::count_ones);

    if proj.is_empty() {
        // Fully bound pattern: solutions bind nothing, but their count
        // matters. Zero-column tables cannot carry a row count, so emit the
        // unit column instead — without ever materializing the selection.
        return Table::from_columns(
            Schema::new([crate::exec::pattern::UNIT_COL]),
            vec![vec![0; out_rows]],
        );
    }
    // Late materialization: gather only the projected columns, once.
    let schema = Schema::new(proj.iter().map(|(_, v)| v.to_string()));
    let cols_out: Vec<Vec<u32>> = proj
        .iter()
        .map(|&(c, _)| match &selection {
            Some(bm) => kernels::gather_column(table.column(c), bm),
            None => table.column(c).to_vec(),
        })
        .collect();
    Table::from_columns(schema, cols_out)
}

/// [`scan_pattern`] over a chunked compressed table, with zone-map pruning:
/// chunks whose min/max range cannot contain a bound constant (or overlap a
/// sideways semi-join filter passed from the other side of an upcoming
/// join) are skipped *before decode*; survivors decode straight into the
/// same 64-row bitmap kernels, preserving late materialization.
///
/// `sideways` names a variable of this pattern plus the filter built from
/// the already-evaluated join side; a variable the pattern doesn't bind is
/// ignored (filter applicability is the caller's heuristic, correctness is
/// local). Returns `None` for non-chunked (legacy v1/v2) bodies, where the
/// caller should fall back to the materialized path.
pub(crate) fn scan_pattern_pruned(
    ct: &s2rdf_columnar::CompressedTable,
    cols: &[(usize, &TermPattern)],
    dict: &Dictionary,
    sideways: Option<(&str, &s2rdf_columnar::SidewaysFilter)>,
) -> Option<Result<Table, CoreError>> {
    if !ct.is_chunked() {
        return None;
    }

    // Resolve bound terms to dictionary ids (unknown term → empty scan).
    let mut bounds: Vec<(usize, u32)> = Vec::new();
    for &(col, pat) in cols {
        if let Some(term) = pat.as_term() {
            let Some(id) = dict.id(term) else {
                return Some(Ok(Table::empty(scan_schema(cols))));
            };
            bounds.push((col, id.0));
        }
    }

    // Variable projections; repeated variables become equality selections.
    let mut proj: Vec<(usize, &str)> = Vec::new();
    let mut eq_pairs: Vec<(usize, usize)> = Vec::new();
    for &(col, pat) in cols {
        if let Some(var) = pat.as_var() {
            match proj.iter().find(|(_, v)| *v == var) {
                Some(&(first_col, _)) => eq_pairs.push((first_col, col)),
                None => proj.push((col, var)),
            }
        }
    }
    let sw =
        sideways.and_then(|(var, f)| proj.iter().find(|&&(_, v)| v == var).map(|&(c, _)| (c, f)));

    let proj_cols: Vec<usize> = proj.iter().map(|&(c, _)| c).collect();
    let (cols_out, out_rows, _stats) =
        match s2rdf_columnar::chunk::scan_chunks(ct, &bounds, &eq_pairs, &proj_cols, sw) {
            Ok(r) => r,
            Err(e) => return Some(Err(e.into())),
        };

    if proj.is_empty() {
        return Some(Ok(Table::from_columns(
            Schema::new([crate::exec::pattern::UNIT_COL]),
            vec![vec![0; out_rows]],
        )));
    }
    let schema = Schema::new(proj.iter().map(|(_, v)| v.to_string()));
    Some(Ok(Table::from_columns(schema, cols_out)))
}

fn scan_schema(cols: &[(usize, &TermPattern)]) -> Schema {
    let mut names: Vec<String> = Vec::new();
    for &(_, pat) in cols {
        if let Some(v) = pat.as_var() {
            if !names.iter().any(|n| n == v) {
                names.push(v.to_string());
            }
        }
    }
    if names.is_empty() {
        names.push(crate::exec::pattern::UNIT_COL.to_string());
    }
    Schema::new(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::Term;

    fn dict_with(terms: &[&str]) -> Dictionary {
        let mut d = Dictionary::new();
        for t in terms {
            d.intern(&Term::iri(*t));
        }
        d
    }

    #[test]
    fn scan_projects_variables() {
        let dict = dict_with(&["a", "b", "c"]);
        let table = Table::from_rows(Schema::new(["s", "o"]), &[[0, 1], [1, 2]]);
        let s_var = TermPattern::Var("x".into());
        let o_var = TermPattern::Var("y".into());
        let out = scan_pattern(&table, &[(0, &s_var), (1, &o_var)], &dict);
        assert_eq!(out.schema().names()[0].as_ref(), "x");
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn scan_selects_bound_terms() {
        let dict = dict_with(&["a", "b", "c"]);
        let table = Table::from_rows(Schema::new(["s", "o"]), &[[0, 1], [1, 2]]);
        let bound = TermPattern::Term(Term::iri("b"));
        let o_var = TermPattern::Var("y".into());
        let out = scan_pattern(&table, &[(0, &bound), (1, &o_var)], &dict);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), 2);
        assert_eq!(out.schema().len(), 1); // bound position not projected
    }

    #[test]
    fn scan_unknown_constant_is_empty() {
        let dict = dict_with(&["a"]);
        let table = Table::from_rows(Schema::new(["s", "o"]), &[[0, 0]]);
        let bound = TermPattern::Term(Term::iri("ghost"));
        let o_var = TermPattern::Var("y".into());
        let out = scan_pattern(&table, &[(0, &bound), (1, &o_var)], &dict);
        assert!(out.is_empty());
        assert!(out.schema().contains("y"));
    }

    #[test]
    fn scan_repeated_variable_enforces_equality() {
        let dict = dict_with(&["a", "b"]);
        let table = Table::from_rows(Schema::new(["s", "o"]), &[[0, 0], [0, 1]]);
        let v = TermPattern::Var("x".into());
        let out = scan_pattern(&table, &[(0, &v), (1, &v)], &dict);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.schema().len(), 1);
        assert_eq!(out.value(0, 0), 0);
    }
}
