//! Sempala-style engine over a property table (paper §4.3 / §3.2).
//!
//! The BGP is decomposed into *triple groups* — maximal sets of patterns
//! sharing a subject — exactly like Sempala: each star group is answered
//! from the property table without joins, and the groups are then joined.
//! Patterns with unbound predicates fall back to the triples table (as in
//! S2RDF itself).

use s2rdf_columnar::exec::natural_join_auto;
use s2rdf_columnar::{Schema, Table};
use s2rdf_model::{Dictionary, Graph, TermId};
use s2rdf_sparql::{TermPattern, TriplePattern};

use crate::error::CoreError;
use crate::exec::{BgpEvaluator, ExecContext, Explain, QueryOptions, Solutions, StepExplain};
use crate::layout::property_table::PropertyTable;
use crate::layout::triples_table::build_triples_table;

use super::{run_query, run_query_result, scan_pattern, QueryResult, SparqlEngine};

/// Property-table (Sempala-style) engine.
#[derive(Debug)]
pub struct PropertyTableEngine {
    dict: Dictionary,
    pt: PropertyTable,
    tt: Table,
}

impl PropertyTableEngine {
    /// Builds the engine from a graph.
    pub fn new(graph: &Graph) -> PropertyTableEngine {
        PropertyTableEngine {
            dict: graph.dict().clone(),
            pt: PropertyTable::build(graph),
            tt: build_triples_table(graph),
        }
    }

    /// The property table (exposed for size reporting in benches).
    pub fn property_table(&self) -> &PropertyTable {
        &self.pt
    }

    /// Evaluates one star group: patterns sharing the same subject
    /// position. Candidate subjects come from the rarest predicate column;
    /// the per-subject cross product of object lists reproduces the formal
    /// property-table rows lazily.
    fn eval_star(
        &self,
        subject: &TermPattern,
        star: &[(TermId, &TermPattern)],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError> {
        let started = std::time::Instant::now();
        // Output schema: subject variable (if any) then object variables in
        // first-occurrence order.
        let mut var_names: Vec<&str> = Vec::new();
        if let Some(v) = subject.as_var() {
            var_names.push(v);
        }
        for (_, obj) in star {
            if let Some(v) = obj.as_var() {
                if !var_names.contains(&v) {
                    var_names.push(v);
                }
            }
        }
        // A fully bound star binds nothing; carry its match count in the
        // unit column (see `exec::pattern::UNIT_COL`).
        let unit_mode = var_names.is_empty();
        if unit_mode {
            var_names.push(crate::exec::pattern::UNIT_COL);
        }
        let schema = Schema::new(var_names.iter().map(|v| v.to_string()));
        let mut out = Table::empty(schema);

        // Candidate subjects.
        let candidates: Vec<u32> = match subject {
            TermPattern::Term(t) => match self.dict.id(t) {
                Some(id) => vec![id.0],
                None => return Ok(out),
            },
            TermPattern::Var(_) => {
                // Rarest column drives the iteration.
                let Some((_, rarest)) = star
                    .iter()
                    .map(|&(p, _)| (self.pt.column_subjects(p), p))
                    .min()
                else {
                    return Ok(out);
                };
                match self.pt.column(rarest) {
                    Some(col) => col.keys().copied().collect(),
                    None => return Ok(out),
                }
            }
        };

        let span = ctx.span_open("star_scan");
        let mut row: Vec<u32> = Vec::with_capacity(out.schema().len());
        for (i, &s) in candidates.iter().enumerate() {
            if i % 4096 == 0 {
                ctx.check_deadline()?;
            }
            row.clear();
            if subject.is_var() {
                row.push(s);
            } else if unit_mode {
                row.push(0);
            }
            self.expand_subject(s, star, subject, &mut row, 0, &mut out);
        }
        let rationale = format!(
            "property table star: {} pattern(s) answered join-free, candidates from rarest column",
            star.len()
        );
        ctx.span_close(span, rationale.clone(), Some(out.num_rows()));
        ctx.explain.bgp_steps.push(StepExplain {
            table: "PropertyTable".to_string(),
            rows: out.num_rows(),
            sf: 1.0,
            wall_micros: started.elapsed().as_micros() as u64,
            rationale,
            est_rows: 0,
        });
        Ok(out)
    }

    /// Depth-first expansion of one subject's object lists (the lazy cross
    /// product), honouring bound objects and repeated variables.
    fn expand_subject(
        &self,
        s: u32,
        star: &[(TermId, &TermPattern)],
        subject: &TermPattern,
        row: &mut Vec<u32>,
        depth: usize,
        out: &mut Table,
    ) {
        if depth == star.len() {
            out.push_row(row);
            return;
        }
        let (p, obj) = &star[depth];
        let objects = self.pt.objects(s, *p);
        match obj {
            TermPattern::Term(t) => {
                // Bound object: pure filter.
                let Some(id) = self.dict.id(t) else { return };
                if objects.contains(&id.0) {
                    self.expand_subject(s, star, subject, row, depth + 1, out);
                }
            }
            TermPattern::Var(v) => {
                // Repeated variable (earlier column or the subject itself)
                // constrains instead of extending.
                let existing = self.var_column_before(v, subject, star, depth);
                match existing {
                    Some(col) => {
                        let required = row[col];
                        if objects.contains(&required) {
                            self.expand_subject(s, star, subject, row, depth + 1, out);
                        }
                    }
                    None => {
                        for &o in objects {
                            row.push(o);
                            self.expand_subject(s, star, subject, row, depth + 1, out);
                            row.pop();
                        }
                    }
                }
            }
        }
    }

    /// If variable `v` is already bound by the subject or an earlier star
    /// column, returns its index in the row being built.
    fn var_column_before(
        &self,
        v: &str,
        subject: &TermPattern,
        star: &[(TermId, &TermPattern)],
        depth: usize,
    ) -> Option<usize> {
        let mut idx = 0;
        if let Some(sv) = subject.as_var() {
            if sv == v {
                return Some(0);
            }
            idx += 1;
        }
        for (_, obj) in &star[..depth] {
            if let Some(ov) = obj.as_var() {
                if ov == v {
                    return Some(idx);
                }
                idx += 1;
            }
        }
        None
    }
}

/// Groups BGP patterns into star groups by subject pattern, preserving
/// first-occurrence order. Patterns with unbound predicates go into
/// `fallback`.
fn star_groups(
    bgp: &[TriplePattern],
) -> (
    Vec<(&TermPattern, Vec<&TriplePattern>)>,
    Vec<&TriplePattern>,
) {
    let mut groups: Vec<(&TermPattern, Vec<&TriplePattern>)> = Vec::new();
    let mut fallback = Vec::new();
    for tp in bgp {
        if tp.p.is_var() {
            fallback.push(tp);
            continue;
        }
        match groups.iter_mut().find(|(s, _)| *s == &tp.s) {
            Some((_, members)) => members.push(tp),
            None => groups.push((&tp.s, vec![tp])),
        }
    }
    (groups, fallback)
}

impl BgpEvaluator for PropertyTableEngine {
    fn dict(&self) -> &Dictionary {
        &self.dict
    }

    fn eval_bgp(
        &self,
        bgp: &[TriplePattern],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError> {
        let (groups, fallback) = star_groups(bgp);

        let mut parts: Vec<Table> = Vec::new();
        for (subject, members) in &groups {
            // Unknown predicate ⇒ empty group ⇒ empty BGP result.
            let mut star: Vec<(TermId, &TermPattern)> = Vec::with_capacity(members.len());
            let mut known = true;
            for tp in members {
                let term =
                    tp.p.as_term()
                        .expect("grouped patterns have bound predicates");
                match self.dict.id(term) {
                    Some(p) => star.push((p, &tp.o)),
                    None => {
                        known = false;
                        break;
                    }
                }
            }
            if !known {
                return Ok(super::empty_bgp_table(bgp));
            }
            parts.push(self.eval_star(subject, &star, ctx)?);
        }
        for tp in fallback {
            parts.push(scan_pattern(
                &self.tt,
                &[(0, &tp.s), (1, &tp.p), (2, &tp.o)],
                &self.dict,
            ));
        }

        // Join groups smallest-first among those sharing a variable with
        // the accumulated result (Sempala joins its triple groups; avoiding
        // cross joins between disconnected groups keeps linear chains from
        // exploding).
        let mut remaining = parts;
        let start = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.num_rows())
            .map(|(i, _)| i)
            .expect("non-empty BGP has at least one group");
        let mut result = remaining.swap_remove(start);
        while !remaining.is_empty() {
            ctx.check_deadline()?;
            let connected = |t: &Table| {
                t.schema()
                    .names()
                    .iter()
                    .any(|c| result.schema().contains(c))
            };
            let next = remaining
                .iter()
                .enumerate()
                .filter(|(_, t)| connected(t))
                .min_by_key(|(_, t)| t.num_rows())
                .map(|(i, _)| i)
                // Forced cross join only when nothing connects.
                .unwrap_or_else(|| {
                    remaining
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| t.num_rows())
                        .map(|(i, _)| i)
                        .unwrap()
                });
            let part = remaining.swap_remove(next);
            let span = ctx.span_open("join");
            let joined = natural_join_auto(&result, &part);
            ctx.span_close(
                span,
                format!(
                    "build={} probe={}",
                    result.num_rows().min(part.num_rows()),
                    result.num_rows().max(part.num_rows())
                ),
                Some(joined.num_rows()),
            );
            ctx.note_join(result.num_rows(), part.num_rows(), joined.num_rows())?;
            result = joined;
        }
        Ok(result)
    }
}

impl SparqlEngine for PropertyTableEngine {
    fn name(&self) -> String {
        "PropertyTable (Sempala-sim)".to_string()
    }

    fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError> {
        run_query(self, sparql, options)
    }

    fn query_result_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(QueryResult, Explain), CoreError> {
        run_query_result(self, sparql, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    #[test]
    fn star_answered_without_joins() {
        let e = PropertyTableEngine::new(&g1());
        // The first star group of the paper's Fig. 7 mapping: ?x likes ?w
        // and ?x follows ?y, no join needed.
        let (s, explain) = e
            .query_opt(
                "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y }",
                &Default::default(),
            )
            .unwrap();
        // A: 2 likes × 1 follows; C: 1 likes × 1 follows.
        assert_eq!(s.len(), 3);
        assert_eq!(explain.naive_join_comparisons, 0);
    }

    #[test]
    fn q1_matches_paper() {
        let e = PropertyTableEngine::new(&g1());
        let s = e
            .query(
                "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y .
                                  ?y <follows> ?z . ?z <likes> ?w }",
            )
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "w"), Some(&Term::iri("I2")));
    }

    #[test]
    fn bound_subject_star() {
        let e = PropertyTableEngine::new(&g1());
        let s = e
            .query("SELECT ?w WHERE { <A> <likes> ?w . <A> <follows> ?y }")
            .unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn repeated_object_variable() {
        let e = PropertyTableEngine::new(&g1());
        // ?x likes ?w twice is the identity; with different predicates the
        // shared variable constrains.
        let s = e
            .query("SELECT * WHERE { ?x <follows> ?w . ?x <likes> ?w }")
            .unwrap();
        assert!(s.is_empty()); // nobody follows what they like in G1
    }

    #[test]
    fn var_predicate_falls_back_to_tt() {
        let e = PropertyTableEngine::new(&g1());
        let s = e.query("SELECT DISTINCT ?p WHERE { ?x ?p ?o }").unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn unknown_predicate_empty() {
        let e = PropertyTableEngine::new(&g1());
        let s = e.query("SELECT * WHERE { ?x <ghost> ?y }").unwrap();
        assert!(s.is_empty());
    }
}
