//! Vertical partitioning: `VP_p(s, o)` for every predicate `p` (paper §4.2).

use rustc_hash::FxHashMap;

use s2rdf_columnar::{Schema, Table};
use s2rdf_model::{Graph, TermId};

use super::{COL_O, COL_S};

/// Builds all VP tables in one pass over the graph.
pub fn build_vp(graph: &Graph) -> FxHashMap<TermId, Table> {
    let mut partitions: FxHashMap<TermId, (Vec<u32>, Vec<u32>)> = FxHashMap::default();
    for t in graph.triples() {
        let (s, o) = partitions.entry(t.p).or_default();
        s.push(t.s.0);
        o.push(t.o.0);
    }
    partitions
        .into_iter()
        .map(|(p, (s, o))| {
            (
                p,
                Table::from_columns(Schema::new([COL_S, COL_O]), vec![s, o]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// The paper's Fig. 5: VP of the running-example graph G1.
    #[test]
    fn vp_of_g1() {
        let g = Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ]);
        let vp = build_vp(&g);
        assert_eq!(vp.len(), 2);
        let follows = g.dict().id(&Term::iri("follows")).unwrap();
        let likes = g.dict().id(&Term::iri("likes")).unwrap();
        assert_eq!(vp[&follows].num_rows(), 4);
        assert_eq!(vp[&likes].num_rows(), 3);
        // Sum of all VP tuples equals |G| (paper §5.3).
        let total: usize = vp.values().map(Table::num_rows).sum();
        assert_eq!(total, g.len());
    }
}
