//! The triples-table layout TT(s, p, o) (paper §4.1).
//!
//! Kept in every store for triple patterns with an unbound predicate, which
//! VP/ExtVP cannot answer (paper §5.2: "S2RDF can answer such queries by
//! accessing the base triples table").

use s2rdf_columnar::{Schema, Table};
use s2rdf_model::Graph;

use super::{COL_O, COL_P, COL_S};

/// Builds the triples table from a graph. One row per triple, columns
/// `s, p, o`.
pub fn build_triples_table(graph: &Graph) -> Table {
    let triples = graph.triples();
    let mut s = Vec::with_capacity(triples.len());
    let mut p = Vec::with_capacity(triples.len());
    let mut o = Vec::with_capacity(triples.len());
    for t in triples {
        s.push(t.s.0);
        p.push(t.p.0);
        o.push(t.o.0);
    }
    Table::from_columns(Schema::new([COL_S, COL_P, COL_O]), vec![s, p, o])
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, Triple};

    #[test]
    fn one_row_per_triple() {
        let g = Graph::from_triples([
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("b"), Term::iri("q"), Term::literal("x")),
        ]);
        let tt = build_triples_table(&g);
        assert_eq!(tt.num_rows(), 2);
        assert_eq!(tt.schema().names().len(), 3);
        let p = g.dict().id(&Term::iri("p")).unwrap();
        assert_eq!(tt.value(0, 1), p.0);
    }
}
