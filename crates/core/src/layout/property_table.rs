//! Property-table layout (paper §4.3), backing the Sempala-style baseline.
//!
//! The formal definition `PT_{p1..pn}[G] = {(s, o1..on) | (s,pi,oi) ∈ G}`
//! duplicates rows for multi-valued predicates — a cross product per
//! subject. Materializing that explodes for WatDiv-like data where
//! subjects carry several multi-valued predicates, so (like Sempala's
//! complex property table with Parquet array columns) this implementation
//! stores each predicate column as per-subject *value lists* and expands
//! the cross product lazily during star evaluation. The logical content is
//! identical to the formal definition; only the physical encoding differs
//! (documented in DESIGN.md).

use rustc_hash::FxHashMap;

use s2rdf_model::{Graph, TermId};

/// One predicate column: subject id → object ids.
pub type PredicateColumn = FxHashMap<u32, Vec<u32>>;

/// The unified property table.
#[derive(Debug, Default)]
pub struct PropertyTable {
    /// predicate → (subject → objects).
    columns: FxHashMap<TermId, PredicateColumn>,
    /// Total stored (subject, object) pairs — equals `|G|`.
    tuples: usize,
}

impl PropertyTable {
    /// Builds the property table from a graph.
    pub fn build(graph: &Graph) -> PropertyTable {
        let mut columns: FxHashMap<TermId, PredicateColumn> = FxHashMap::default();
        for t in graph.triples() {
            columns
                .entry(t.p)
                .or_default()
                .entry(t.s.0)
                .or_default()
                .push(t.o.0);
        }
        PropertyTable {
            columns,
            tuples: graph.len(),
        }
    }

    /// The column for a predicate, if it occurs in the data.
    pub fn column(&self, p: TermId) -> Option<&PredicateColumn> {
        self.columns.get(&p)
    }

    /// Number of subjects having predicate `p` (the column's row count).
    pub fn column_subjects(&self, p: TermId) -> usize {
        self.columns.get(&p).map_or(0, FxHashMap::len)
    }

    /// The objects of `(s, p)`, empty if absent.
    pub fn objects(&self, s: u32, p: TermId) -> &[u32] {
        self.columns
            .get(&p)
            .and_then(|c| c.get(&s))
            .map_or(&[], Vec::as_slice)
    }

    /// Total stored pairs (= `|G|`).
    pub fn tuples(&self) -> usize {
        self.tuples
    }

    /// Number of predicate columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// The paper's Table 1 data: G1 as a property table.
    #[test]
    fn table1_structure() {
        let g = Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ]);
        let pt = PropertyTable::build(&g);
        assert_eq!(pt.num_columns(), 2);
        assert_eq!(pt.tuples(), 7);
        let follows = g.dict().id(&Term::iri("follows")).unwrap();
        let likes = g.dict().id(&Term::iri("likes")).unwrap();
        let a = g.dict().id(&Term::iri("A")).unwrap().0;
        let b = g.dict().id(&Term::iri("B")).unwrap().0;
        // A follows {B}, likes {I1, I2} — the cross product of Table 1's
        // two A-rows is recoverable from the lists.
        assert_eq!(pt.objects(a, follows).len(), 1);
        assert_eq!(pt.objects(a, likes).len(), 2);
        // B follows {C, D}, likes nothing (NULL in Table 1).
        assert_eq!(pt.objects(b, follows).len(), 2);
        assert!(pt.objects(b, likes).is_empty());
        assert_eq!(pt.column_subjects(follows), 3);
    }
}
