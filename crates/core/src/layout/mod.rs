//! Relational layouts for RDF (paper §4 and §5).
//!
//! * [`triples_table`] — the single three-column table TT(s, p, o) (§4.1),
//! * [`vp`] — vertical partitioning: one two-column table per predicate
//!   (§4.2),
//! * [`property_table`] — the star-optimized property table used by the
//!   Sempala-style baseline engine (§4.3),
//! * [`extvp`] — **Extended Vertical Partitioning**, the semi-join
//!   reductions of VP tables over SS/OS/SO correlations (§5).

pub mod extvp;
pub mod property_table;
pub mod triples_table;
pub mod vp;

use s2rdf_model::{Dictionary, TermId};

use crate::catalog::ExtVpKey;

/// Column name of the subject column in VP/ExtVP/TT tables.
pub const COL_S: &str = "s";
/// Column name of the predicate column in the triples table.
pub const COL_P: &str = "p";
/// Column name of the object column in VP/ExtVP/TT tables.
pub const COL_O: &str = "o";

/// Logical store name of the triples table.
pub const TT_NAME: &str = "TT";

/// Logical store name of a VP table, e.g. `VP/<follows>`.
pub fn vp_table_name(dict: &Dictionary, p: TermId) -> String {
    format!("VP/{}", dict.term(p))
}

/// Logical store name of an ExtVP table, e.g.
/// `ExtVP_OS/<follows>|<likes>` (the paper's `ExtVP_OS follows|likes`).
pub fn extvp_table_name(dict: &Dictionary, key: &ExtVpKey) -> String {
    format!(
        "ExtVP_{}/{}|{}",
        key.corr.label(),
        dict.term(TermId(key.p1)),
        dict.term(TermId(key.p2)),
    )
}
