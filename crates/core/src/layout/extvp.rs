//! Extended Vertical Partitioning (paper §5).
//!
//! For every ordered predicate pair `(p1, p2)` and correlation `corr ∈
//! {SS, OS, SO}`, ExtVP materializes the semi-join reduction
//!
//! ```text
//! ExtVP^SS_p1|p2 = VP_p1 ⋉(s=s) VP_p2      (p1 ≠ p2)
//! ExtVP^OS_p1|p2 = VP_p1 ⋉(o=s) VP_p2
//! ExtVP^SO_p1|p2 = VP_p1 ⋉(s=o) VP_p2
//! ```
//!
//! OO correlations are not precomputed by default (paper §5.2:
//! "relatively poor cost-benefit ratio … indeed, it is only a design
//! choice"), but can be opted into via [`ExtVpBuildOptions::include_oo`].
//! Tables equal to their VP table (`SF = 1`) are not stored; empty tables
//! are recorded in the catalog only. An optional selectivity threshold
//! `SF_TH` skips tables with `SF >= SF_TH` (§5.3). Three physical
//! representations are supported ([`ExtVpMode`]): materialized tuple
//! tables (the paper's scheme), per-partition bitmaps over the VP rows
//! (the paper's §8 future work), and lazy on-first-use materialization
//! (the paper's §7 "pay as you go" deployment remark).
//!
//! # Construction strategy
//!
//! Instead of the paper's `O(k²)` pairwise semi-joins (it pre-filters pairs
//! with an existence query, §5.2), this builder computes per-resource
//! *predicate sets* — for each term, the set of predicates it occurs under
//! as a subject and as an object — and then emits every tuple of every
//! non-empty partition in a single pass over the graph, in time
//! proportional to the total output size. With ≤ 128 predicates the sets
//! are `u128` bitmasks; larger vocabularies fall back to sorted id lists.

use rustc_hash::FxHashMap;

use s2rdf_columnar::{Bitmap, Table};
use s2rdf_model::{Graph, TermId};

use crate::catalog::{Catalog, Correlation, ExtVpKey};

/// Per-resource predicate occurrence sets.
enum PredSets {
    /// ≤ 128 predicates: one bit per predicate index.
    Bits { subj: Vec<u128>, obj: Vec<u128> },
    /// Arbitrary predicate counts: sorted, deduplicated index lists.
    Lists {
        subj: Vec<Vec<u32>>,
        obj: Vec<Vec<u32>>,
    },
}

impl PredSets {
    fn build(graph: &Graph, pred_index: &FxHashMap<TermId, u32>, num_terms: usize) -> PredSets {
        if pred_index.len() <= 128 {
            let mut subj = vec![0u128; num_terms];
            let mut obj = vec![0u128; num_terms];
            for t in graph.triples() {
                let bit = 1u128 << pred_index[&t.p];
                subj[t.s.index()] |= bit;
                obj[t.o.index()] |= bit;
            }
            PredSets::Bits { subj, obj }
        } else {
            let mut subj = vec![Vec::new(); num_terms];
            let mut obj = vec![Vec::new(); num_terms];
            for t in graph.triples() {
                let p = pred_index[&t.p];
                subj[t.s.index()].push(p);
                obj[t.o.index()].push(p);
            }
            for v in subj.iter_mut().chain(obj.iter_mut()) {
                v.sort_unstable();
                v.dedup();
            }
            PredSets::Lists { subj, obj }
        }
    }

    /// Calls `f(p2_index)` for every predicate under which `term` occurs in
    /// the given role.
    fn for_each(&self, term: TermId, as_subject: bool, mut f: impl FnMut(u32)) {
        match self {
            PredSets::Bits { subj, obj } => {
                let mut mask = if as_subject {
                    subj[term.index()]
                } else {
                    obj[term.index()]
                };
                while mask != 0 {
                    f(mask.trailing_zeros());
                    mask &= mask - 1;
                }
            }
            PredSets::Lists { subj, obj } => {
                let list = if as_subject {
                    &subj[term.index()]
                } else {
                    &obj[term.index()]
                };
                for &p in list {
                    f(p);
                }
            }
        }
    }
}

/// Physical representation of the materialized ExtVP partitions.
///
/// * `Materialized` — each partition is a two-column table (the paper's
///   scheme),
/// * `BitVector` — each partition is one bit per base-VP row, materialized
///   on access (the paper's §8 future-work "more compact bit vector
///   representation"),
/// * `Lazy` — only statistics are computed up front; partitions are
///   computed by an on-the-fly semi-join on first use and cached (the
///   paper's §7 "pay as you go" remark).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtVpMode {
    /// Tuple tables (default).
    #[default]
    Materialized,
    /// Row bitmaps over the VP tables.
    BitVector,
    /// Statistics now, tables on first use.
    Lazy,
}

impl ExtVpMode {
    /// Stable label used in the persisted catalog.
    pub fn label(self) -> &'static str {
        match self {
            ExtVpMode::Materialized => "rows",
            ExtVpMode::BitVector => "bits",
            ExtVpMode::Lazy => "lazy",
        }
    }

    /// Parses [`ExtVpMode::label`] output (empty = default).
    pub fn from_label(label: &str) -> Option<ExtVpMode> {
        match label {
            "rows" | "" => Some(ExtVpMode::Materialized),
            "bits" => Some(ExtVpMode::BitVector),
            "lazy" => Some(ExtVpMode::Lazy),
            _ => None,
        }
    }
}

/// The built ExtVP payloads, shaped by [`ExtVpMode`].
#[derive(Debug, Default)]
pub enum ExtVpStorage {
    /// Materialized tuple tables, resident in memory (freshly built
    /// stores).
    Rows(FxHashMap<ExtVpKey, std::sync::Arc<Table>>),
    /// Row bitmaps over the VP tables.
    Bits(FxHashMap<ExtVpKey, Bitmap>),
    /// Materialized tuple tables served on demand from the store's
    /// [`s2rdf_columnar::TableStore`] — the representation a
    /// [`crate::store::S2rdfStore::load`]ed store uses so that opening a
    /// database reads the manifest, not every table body (Spark reading
    /// Parquet footers up front but column chunks per query).
    Disk,
    /// Nothing materialized; resolve via semi-joins on demand.
    Lazy,
    /// ExtVP disabled entirely.
    #[default]
    None,
}

/// Build switches for [`build_extvp`].
#[derive(Debug, Clone, Copy)]
pub struct ExtVpBuildOptions {
    /// The SF threshold (paper §5.3).
    pub threshold: f64,
    /// Physical representation.
    pub mode: ExtVpMode,
    /// Also compute OO correlations (paper §5.2's opt-in design choice).
    pub include_oo: bool,
}

/// Builds the full ExtVP schema over a graph.
///
/// Every non-empty partition's tuple count is recorded in `catalog`
/// (including the non-materialized ones); the returned storage contains
/// only the materialized partitions: `0 < SF < min(threshold, 1)` — as
/// tables, bitmaps, or nothing (lazy), per `options.mode`.
///
/// `vp` must be the VP tables of the same graph (they provide the row
/// numbering bitmaps refer to and the payloads tables gather from), and
/// the catalog must already contain the VP sizes.
pub fn build_extvp(
    graph: &Graph,
    vp: &FxHashMap<TermId, std::sync::Arc<Table>>,
    catalog: &mut Catalog,
    options: ExtVpBuildOptions,
) -> ExtVpStorage {
    // Dense predicate indexing for the bitmask sets.
    let preds: Vec<TermId> = graph.predicate_counts().iter().map(|&(p, _)| p).collect();
    let pred_index: FxHashMap<TermId, u32> = preds
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let sets = PredSets::build(graph, &pred_index, graph.dict().len());
    let collect_rows = options.mode != ExtVpMode::Lazy;

    // One pass: route every triple's VP row index into each partition it
    // belongs to. `build_vp` assigns rows in graph order, so a per-
    // predicate counter reproduces the numbering exactly. In lazy mode
    // only counts are kept.
    let mut row_counters: Vec<u32> = vec![0; preds.len()];
    let mut rows: FxHashMap<(Correlation, u32, u32), Vec<u32>> = FxHashMap::default();
    let mut counts: FxHashMap<(Correlation, u32, u32), usize> = FxHashMap::default();
    for t in graph.triples() {
        let p1 = pred_index[&t.p];
        let row = row_counters[p1 as usize];
        row_counters[p1 as usize] += 1;
        let mut add = |corr: Correlation, p2: u32| {
            if collect_rows {
                rows.entry((corr, p1, p2)).or_default().push(row);
            } else {
                *counts.entry((corr, p1, p2)).or_default() += 1;
            }
        };
        // SS: subjects shared with another predicate p2 ≠ p1.
        sets.for_each(t.s, true, |p2| {
            if p2 != p1 {
                add(Correlation::SS, p2);
            }
        });
        // OS: our object occurs as a subject of p2 (p2 = p1 allowed:
        // e.g. ExtVP_OS follows|follows in the paper's Fig. 10).
        sets.for_each(t.o, true, |p2| add(Correlation::OS, p2));
        // SO: our subject occurs as an object of p2.
        sets.for_each(t.s, false, |p2| add(Correlation::SO, p2));
        // OO (opt-in): our object occurs as an object of p2 ≠ p1 (the
        // self-correlation is the identity, like SS).
        if options.include_oo {
            sets.for_each(t.o, false, |p2| {
                if p2 != p1 {
                    add(Correlation::OO, p2);
                }
            });
        }
    }

    catalog.oo_built = options.include_oo;
    catalog.extvp_mode = options.mode.label().to_string();

    // (partition key, tuple count, row indices when collected)
    type Entry = ((Correlation, u32, u32), usize, Option<Vec<u32>>);
    let mut out_rows: FxHashMap<ExtVpKey, std::sync::Arc<Table>> = FxHashMap::default();
    let mut out_bits: FxHashMap<ExtVpKey, Bitmap> = FxHashMap::default();
    let entries: Vec<Entry> = if collect_rows {
        rows.into_iter()
            .map(|(k, idx)| {
                let n = idx.len();
                (k, n, Some(idx))
            })
            .collect()
    } else {
        counts.into_iter().map(|(k, n)| (k, n, None)).collect()
    };
    for ((corr, p1_idx, p2_idx), count, indices) in entries {
        let p1 = preds[p1_idx as usize];
        let p2 = preds[p2_idx as usize];
        let key = ExtVpKey::new(corr, p1, p2);
        let vp_size = catalog.vp_size(p1);
        debug_assert!(vp_size > 0, "VP sizes must be in the catalog before ExtVP");
        let sf = count as f64 / vp_size as f64;
        // Materialize iff the reduction is proper (SF < 1) and selective
        // enough (SF < threshold).
        let materialized = sf < 1.0 && sf < options.threshold;
        catalog.set_extvp(key, count, materialized);
        if !materialized {
            continue;
        }
        match options.mode {
            ExtVpMode::Materialized => {
                let base = &vp[&p1];
                let idx: Vec<usize> = indices
                    .as_ref()
                    .unwrap()
                    .iter()
                    .map(|&i| i as usize)
                    .collect();
                out_rows.insert(key, std::sync::Arc::new(base.gather(&idx)));
            }
            ExtVpMode::BitVector => {
                out_bits.insert(
                    key,
                    Bitmap::from_indices(vp_size, indices.as_ref().unwrap()),
                );
            }
            ExtVpMode::Lazy => {}
        }
    }
    match options.mode {
        ExtVpMode::Materialized => ExtVpStorage::Rows(out_rows),
        ExtVpMode::BitVector => ExtVpStorage::Bits(out_bits),
        ExtVpMode::Lazy => ExtVpStorage::Lazy,
    }
}

/// Computes one ExtVP partition directly by semi-join (used by the lazy
/// mode to materialize a partition on first access).
pub fn compute_partition(
    vp: &FxHashMap<TermId, std::sync::Arc<Table>>,
    key: &ExtVpKey,
) -> Option<Table> {
    compute_partition_with(|p| vp.get(&p).cloned(), key)
}

/// Closure-based variant of [`compute_partition`]: the VP lookup may load
/// a table body on demand (e.g. from a lazily-opened
/// [`s2rdf_columnar::TableStore`]) rather than index an in-memory map.
pub fn compute_partition_with(
    mut vp: impl FnMut(TermId) -> Option<std::sync::Arc<Table>>,
    key: &ExtVpKey,
) -> Option<Table> {
    let vp1 = vp(TermId(key.p1))?;
    let vp2 = vp(TermId(key.p2))?;
    let (lk, rk) = semi_join_columns(key.corr);
    Some(s2rdf_columnar::ops::semi_join_on(&vp1, lk, &vp2, rk))
}

/// Computes the surviving `vp1` row indices of one partition — the form
/// delta maintenance needs, since the same index set feeds both a table
/// `gather` (rows mode) and a bitmap rebuild (bits mode).
pub fn compute_partition_indices(vp1: &Table, vp2: &Table, corr: Correlation) -> Vec<u32> {
    let (lk, rk) = semi_join_columns(corr);
    let probe: rustc_hash::FxHashSet<u32> = vp2.column(rk).iter().copied().collect();
    vp1.column(lk)
        .iter()
        .enumerate()
        .filter_map(|(i, v)| probe.contains(v).then_some(i as u32))
        .collect()
}

/// The `(left, right)` key columns of the semi-join defining a
/// correlation (0 = subject, 1 = object).
pub fn semi_join_columns(corr: Correlation) -> (usize, usize) {
    match corr {
        Correlation::SS => (0, 0),
        Correlation::OS => (1, 0),
        Correlation::SO => (0, 1),
        Correlation::OO => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::vp::build_vp;
    use s2rdf_columnar::exec::row_multiset;
    use s2rdf_columnar::ops::semi_join_on;
    use s2rdf_model::{Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// The paper's running-example graph G1 (Fig. 1).
    fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    fn arc_vp(g: &Graph) -> FxHashMap<TermId, std::sync::Arc<Table>> {
        build_vp(g)
            .into_iter()
            .map(|(p, t)| (p, std::sync::Arc::new(t)))
            .collect()
    }

    fn build_mode(
        g: &Graph,
        threshold: f64,
        mode: ExtVpMode,
        include_oo: bool,
    ) -> (ExtVpStorage, Catalog) {
        let vp = arc_vp(g);
        let mut catalog = Catalog::new(g.len(), threshold, true);
        for (p, table) in &vp {
            catalog.set_vp_size(*p, table.num_rows());
        }
        let storage = build_extvp(
            g,
            &vp,
            &mut catalog,
            ExtVpBuildOptions {
                threshold,
                mode,
                include_oo,
            },
        );
        (storage, catalog)
    }

    fn build(g: &Graph, threshold: f64) -> (FxHashMap<ExtVpKey, std::sync::Arc<Table>>, Catalog) {
        let (storage, catalog) = build_mode(g, threshold, ExtVpMode::Materialized, false);
        match storage {
            ExtVpStorage::Rows(tables) => (tables, catalog),
            other => panic!("expected row storage, got {other:?}"),
        }
    }

    fn id(g: &Graph, term: &str) -> TermId {
        g.dict().id(&Term::iri(term)).unwrap()
    }

    /// The full Fig. 10 check: which partitions of G1 are stored, and with
    /// which contents.
    #[test]
    fn fig10_partitions_of_g1() {
        let g = g1();
        let (tables, catalog) = build(&g, 1.0);
        let follows = id(&g, "follows");
        let likes = id(&g, "likes");
        let names = |t: &Table| row_multiset(t);

        // ExtVP_OS follows|follows = {(A,B),(B,C)}  (objects that follow on).
        let k = ExtVpKey::new(Correlation::OS, follows, follows);
        let a = id(&g, "A").0;
        let b = id(&g, "B").0;
        let c = id(&g, "C").0;
        let d = id(&g, "D").0;
        assert_eq!(names(&tables[&k]), vec![vec![a, b], vec![b, c]]);

        // ExtVP_OS follows|likes = {(B,C)}.
        let k = ExtVpKey::new(Correlation::OS, follows, likes);
        assert_eq!(names(&tables[&k]), vec![vec![b, c]]);

        // ExtVP_SO follows|follows = {(B,C),(B,D),(C,D)}.
        let k = ExtVpKey::new(Correlation::SO, follows, follows);
        assert_eq!(names(&tables[&k]), vec![vec![b, c], vec![b, d], vec![c, d]]);

        // ExtVP_SO follows|likes: empty — not stored, catalog knows SF = 0.
        let k = ExtVpKey::new(Correlation::SO, follows, likes);
        assert!(!tables.contains_key(&k));
        assert_eq!(catalog.extvp_stat(&k).unwrap().sf, 0.0);

        // ExtVP_SS follows|likes = {(A,B),(C,D)}.
        let k = ExtVpKey::new(Correlation::SS, follows, likes);
        assert_eq!(names(&tables[&k]), vec![vec![a, b], vec![c, d]]);

        // ExtVP_OS likes|follows and likes|likes: empty.
        for p2 in [follows, likes] {
            let k = ExtVpKey::new(Correlation::OS, likes, p2);
            assert!(!tables.contains_key(&k));
            assert_eq!(catalog.extvp_stat(&k).unwrap().count, 0);
        }

        // ExtVP_SO likes|follows = {(C,I2)} with SF = 1/3.
        let k = ExtVpKey::new(Correlation::SO, likes, follows);
        let i2 = id(&g, "I2").0;
        assert_eq!(names(&tables[&k]), vec![vec![c, i2]]);
        let stat = catalog.extvp_stat(&k).unwrap();
        assert!((stat.sf - 1.0 / 3.0).abs() < 1e-12);

        // ExtVP_SS likes|follows = VP_likes (SF = 1): red-marked, not stored.
        let k = ExtVpKey::new(Correlation::SS, likes, follows);
        assert!(!tables.contains_key(&k));
        let stat = catalog.extvp_stat(&k).unwrap();
        assert_eq!(stat.sf, 1.0);
        assert!(!stat.materialized);

        // No SS self-partitions and no OO partitions exist at all.
        for (key, _) in catalog.extvp_stats() {
            assert!(!(key.corr == Correlation::SS && key.p1 == key.p2));
        }
    }

    /// Every materialized partition must equal the corresponding semi-join
    /// of the VP tables (the definition in §5.2).
    #[test]
    fn partitions_equal_semi_joins() {
        let g = g1();
        let vp = build_vp(&g);
        let (tables, _) = build(&g, 1.0);
        for (key, table) in &tables {
            let vp1 = &vp[&TermId(key.p1)];
            let vp2 = &vp[&TermId(key.p2)];
            let (lk, rk) = semi_join_columns(key.corr);
            let expected = semi_join_on(vp1, lk, vp2, rk);
            assert_eq!(
                row_multiset(table),
                row_multiset(&expected),
                "partition {key:?} mismatch"
            );
        }
    }

    #[test]
    fn partition_indices_match_semi_join() {
        let g = g1();
        let vp = build_vp(&g);
        let (tables, _) = build(&g, 1.0);
        for (key, table) in &tables {
            let vp1 = &vp[&TermId(key.p1)];
            let vp2 = &vp[&TermId(key.p2)];
            let indices = compute_partition_indices(vp1, vp2, key.corr);
            let idx: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
            assert_eq!(
                row_multiset(&vp1.gather(&idx)),
                row_multiset(table),
                "{key:?}"
            );
        }
    }

    #[test]
    fn threshold_prunes_low_selectivity_tables() {
        let g = g1();
        let (all, catalog_all) = build(&g, 1.0);
        let (some, catalog_th) = build(&g, 0.4);
        assert!(some.len() < all.len());
        for (key, table) in &some {
            let stat = catalog_th.extvp_stat(key).unwrap();
            assert!(stat.sf < 0.4, "{key:?} has SF {}", stat.sf);
            assert_eq!(table.num_rows(), stat.count);
        }
        // Threshold changes materialization only, not the statistics.
        for (key, stat) in catalog_all.extvp_stats() {
            assert_eq!(
                catalog_th.extvp_stat(key).unwrap().count,
                stat.count,
                "{key:?}"
            );
        }
    }

    #[test]
    fn threshold_zero_materializes_nothing() {
        let g = g1();
        let (tables, catalog) = build(&g, 0.0);
        assert!(tables.is_empty());
        // Stats still recorded.
        assert!(catalog.extvp_stats().count() > 0);
    }

    #[test]
    fn disjoint_predicate_domains_produce_no_tables() {
        // Users have u-predicates, products have p-predicates; nothing
        // correlates (the "many ExtVP tables would be empty" case, §5.2).
        let g = Graph::from_triples([
            t("u1", "uname", "n1"),
            t("u2", "uname", "n2"),
            t("x1", "pprice", "v1"),
            t("x2", "pprice", "v2"),
        ]);
        let (tables, _) = build(&g, 1.0);
        assert!(tables.is_empty());
    }

    #[test]
    fn list_fallback_matches_bitmask_result() {
        // Force the >128-predicate path by building a graph with 130
        // predicates hanging off a shared subject and compare a partition
        // against the semi-join definition.
        let mut triples = Vec::new();
        for i in 0..130 {
            triples.push(t("hub", &format!("p{i}"), &format!("o{i}")));
        }
        triples.push(t("o0", "p1", "z"));
        // Second p0 tuple so that ExtVP_OS p0|p1 has SF 0.5 < 1 and is
        // materialized.
        triples.push(t("hub2", "p0", "dangling"));
        let g = Graph::from_triples(triples);
        let vp = build_vp(&g);
        let (tables, _) = build(&g, 1.0);
        for (key, table) in &tables {
            let vp1 = &vp[&TermId(key.p1)];
            let vp2 = &vp[&TermId(key.p2)];
            let (lk, rk) = semi_join_columns(key.corr);
            let expected = semi_join_on(vp1, lk, vp2, rk);
            assert_eq!(row_multiset(table), row_multiset(&expected));
        }
        // OS p0|p1 must contain (hub, o0) since o0 is a subject of p1.
        let p0 = id(&g, "p0");
        let p1 = id(&g, "p1");
        let k = ExtVpKey::new(Correlation::OS, p0, p1);
        assert_eq!(tables[&k].num_rows(), 1);
    }

    #[test]
    fn bitvector_mode_encodes_same_partitions() {
        let g = g1();
        let vp = arc_vp(&g);
        let (tables, catalog_rows) = build(&g, 1.0);
        let (storage, catalog_bits) = build_mode(&g, 1.0, ExtVpMode::BitVector, false);
        let ExtVpStorage::Bits(bits) = storage else {
            panic!("expected bitmaps")
        };
        assert_eq!(bits.len(), tables.len());
        assert_eq!(catalog_bits.extvp_mode, "bits");
        for (key, bitmap) in &bits {
            let base = &vp[&TermId(key.p1)];
            assert_eq!(bitmap.len(), base.num_rows());
            let materialized = bitmap.gather(base);
            assert_eq!(
                row_multiset(&materialized),
                row_multiset(&tables[key]),
                "{key:?}"
            );
            // Statistics identical across representations.
            assert_eq!(
                catalog_bits.extvp_stat(key).unwrap().count,
                catalog_rows.extvp_stat(key).unwrap().count
            );
        }
    }

    #[test]
    fn lazy_mode_keeps_stats_only() {
        let g = g1();
        let (storage, catalog_lazy) = build_mode(&g, 1.0, ExtVpMode::Lazy, false);
        assert!(matches!(storage, ExtVpStorage::Lazy));
        assert_eq!(catalog_lazy.extvp_mode, "lazy");
        let (_, catalog_rows) = build(&g, 1.0);
        // Same statistics as the eager build.
        let lazy_stats: Vec<_> = catalog_lazy.extvp_stats().collect();
        let row_stats: Vec<_> = catalog_rows.extvp_stats().collect();
        assert_eq!(lazy_stats.len(), row_stats.len());
        for ((k1, s1), (k2, s2)) in lazy_stats.iter().zip(&row_stats) {
            assert_eq!(k1, k2);
            assert_eq!(s1.count, s2.count);
            assert_eq!(s1.materialized, s2.materialized);
        }
        // And on-demand computation matches the definition.
        let vp = arc_vp(&g);
        for (key, stat) in catalog_lazy.extvp_stats() {
            let computed = compute_partition(&vp, key).unwrap();
            assert_eq!(computed.num_rows(), stat.count, "{key:?}");
        }
    }

    #[test]
    fn oo_partitions_when_enabled() {
        // Build a graph where two different predicates share objects.
        let g = Graph::from_triples([
            t("a", "likes", "thing"),
            t("b", "wants", "thing"),
            t("c", "wants", "other"),
        ]);
        let (storage, catalog) = build_mode(&g, 1.0, ExtVpMode::Materialized, true);
        assert!(catalog.oo_built);
        let likes = g.dict().id(&Term::iri("likes")).unwrap();
        let wants = g.dict().id(&Term::iri("wants")).unwrap();
        // OO wants|likes = wants-tuples whose object is liked: {(b, thing)},
        // SF = 1/2 → materialized.
        let key = ExtVpKey::new(Correlation::OO, wants, likes);
        let stat = catalog.extvp_stat(&key).unwrap();
        assert_eq!(stat.count, 1);
        assert!(stat.materialized);
        let ExtVpStorage::Rows(tables) = storage else {
            panic!("rows expected")
        };
        let table = &tables[&key];
        let expected = compute_partition(&arc_vp(&g), &key).unwrap();
        assert_eq!(row_multiset(table), row_multiset(&expected));
        // OO likes|wants has SF = 1 (every likes-object is wanted): stats
        // only.
        let rev = ExtVpKey::new(Correlation::OO, likes, wants);
        assert_eq!(catalog.extvp_stat(&rev).unwrap().sf, 1.0);
        assert!(!tables.contains_key(&rev));
        // No OO self-partitions.
        for (key, _) in catalog.extvp_stats() {
            assert!(!(key.corr == Correlation::OO && key.p1 == key.p2));
        }
    }

    #[test]
    fn oo_absent_by_default() {
        let g = g1();
        let (_, catalog) = build(&g, 1.0);
        assert!(!catalog.oo_built);
        assert!(catalog
            .extvp_stats()
            .all(|(key, _)| key.corr != Correlation::OO));
    }
}
