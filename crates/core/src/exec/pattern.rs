//! Pattern- and query-level evaluation above BGPs.

use std::cmp::Ordering;

use s2rdf_columnar::exec::natural_join_auto;
use s2rdf_columnar::{ops, Schema, Table, NULL_ID};
use s2rdf_model::{Term, TermId};
use s2rdf_sparql::{optimizer, Expression, GraphPattern, Query, Value};

use crate::error::CoreError;

use super::{BgpEvaluator, ExecContext, Solutions};

/// Internal column name for solutions that bind no variable (the result of
/// an empty BGP, or of a fully bound triple pattern). The `#` prefix cannot
/// appear in variable names, so it never collides, and such columns are
/// dropped on projection. Joining two unit columns is an identity join (all
/// values are 0).
pub const UNIT_COL: &str = "#unit";

/// The unit table: one row, no variable bindings.
pub fn unit_table() -> Table {
    Table::from_rows(Schema::new([UNIT_COL]), &[[0u32]])
}

/// Evaluates a graph pattern to a solution table (columns = variables).
pub fn eval_pattern(
    ev: &dyn BgpEvaluator,
    pattern: &GraphPattern,
    ctx: &mut ExecContext<'_>,
) -> Result<Table, CoreError> {
    ctx.check_deadline()?;
    match pattern {
        GraphPattern::Bgp(tps) => {
            if tps.is_empty() {
                Ok(unit_table())
            } else {
                ev.eval_bgp(tps, ctx)
            }
        }
        GraphPattern::Filter { expr, inner } => {
            let table = eval_pattern(ev, inner, ctx)?;
            filter_table(&table, expr, ctx)
        }
        GraphPattern::Join(l, r) => {
            let left = eval_pattern(ev, l, ctx)?;
            let right = eval_pattern(ev, r, ctx)?;
            ctx.check_deadline()?;
            // SPARQL compatibility semantics: an unbound shared variable
            // (possible under UNION/OPTIONAL inputs) joins with anything.
            // Hash joins treat NULL_ID as a value, so fall back to the
            // compatibility join when shared columns contain NULLs.
            let shared = left.schema().common_columns(right.schema());
            let has_nulls = |t: &Table| {
                shared.iter().any(|c| {
                    t.column(t.schema().index_of(c).unwrap())
                        .contains(&NULL_ID)
                })
            };
            let out = if !shared.is_empty() && (has_nulls(&left) || has_nulls(&right)) {
                compat_join(&left, &right)
            } else {
                natural_join_auto(&left, &right)
            };
            ctx.note_join(left.num_rows(), right.num_rows(), out.num_rows())?;
            Ok(out)
        }
        GraphPattern::LeftJoin(l, r) => {
            let left = eval_pattern(ev, l, ctx)?;
            let right = eval_pattern(ev, r, ctx)?;
            ctx.check_deadline()?;
            let out = ops::left_outer_join(&left, &right);
            ctx.note_join(left.num_rows(), right.num_rows(), out.num_rows())?;
            Ok(out)
        }
        GraphPattern::Union(l, r) => {
            let left = eval_pattern(ev, l, ctx)?;
            let right = eval_pattern(ev, r, ctx)?;
            Ok(ops::union(&left, &right))
        }
    }
}

/// Join under full SPARQL compatibility semantics (§2.1: two mappings are
/// compatible iff they agree on the variables *bound in both*): a
/// nested-loop join where NULL on either side of a shared column matches
/// anything and the merged value is the bound one. Only used when shared
/// columns actually contain NULLs — after UNION branches with disjoint
/// variables — so inputs are small.
fn compat_join(left: &Table, right: &Table) -> Table {
    let shared = left.schema().common_columns(right.schema());
    let shared_idx: Vec<(usize, usize)> = shared
        .iter()
        .map(|c| {
            (
                left.schema().index_of(c).unwrap(),
                right.schema().index_of(c).unwrap(),
            )
        })
        .collect();
    let mut names: Vec<String> = left.schema().names().iter().map(|c| c.to_string()).collect();
    let right_extra: Vec<usize> = right
        .schema()
        .names()
        .iter()
        .enumerate()
        .filter(|(_, c)| !left.schema().contains(c))
        .map(|(i, c)| {
            names.push(c.to_string());
            i
        })
        .collect();
    let mut out = Table::empty(Schema::new(names));
    for lr in 0..left.num_rows() {
        'rows: for rr in 0..right.num_rows() {
            for &(lc, rc) in &shared_idx {
                let (lv, rv) = (left.value(lr, lc), right.value(rr, rc));
                if lv != NULL_ID && rv != NULL_ID && lv != rv {
                    continue 'rows;
                }
            }
            let mut row: Vec<u32> = (0..left.schema().len())
                .map(|c| {
                    let lv = left.value(lr, c);
                    if lv != NULL_ID {
                        return lv;
                    }
                    // Take the right side's binding for shared columns the
                    // left leaves unbound.
                    match shared_idx.iter().find(|&&(lc, _)| lc == c) {
                        Some(&(_, rc)) => right.value(rr, rc),
                        None => NULL_ID,
                    }
                })
                .collect();
            row.extend(right_extra.iter().map(|&c| right.value(rr, c)));
            out.push_row(&row);
        }
    }
    out
}

/// Applies a FILTER to a solution table. Rows whose condition errors (type
/// error / unbound) are dropped, per SPARQL semantics.
pub fn filter_table(
    table: &Table,
    expr: &Expression,
    ctx: &mut ExecContext<'_>,
) -> Result<Table, CoreError> {
    ctx.check_deadline()?;
    let dict = ctx.dict;
    Ok(ops::filter(table, |t, row| {
        let lookup = |var: &str| -> Option<&Term> {
            let col = t.schema().index_of(var)?;
            let v = t.value(row, col);
            if v == NULL_ID {
                None
            } else {
                dict.get(TermId(v))
            }
        };
        matches!(expr.eval(&lookup).and_then(|v| v.ebv()), Ok(true))
    }))
}

/// Evaluates a full SELECT query: optimize, evaluate the pattern, then
/// apply ORDER BY → projection → DISTINCT → LIMIT/OFFSET and decode.
pub fn eval_query(
    ev: &dyn BgpEvaluator,
    query: &Query,
    ctx: &mut ExecContext<'_>,
) -> Result<Solutions, CoreError> {
    let mut query = query.clone();
    optimizer::optimize(&mut query);

    let mut table = eval_pattern(ev, &query.pattern, ctx)?;

    if query.is_aggregate() {
        // Aggregation path (SPARQL 1.1): group + aggregate on the binding
        // table, then apply the solution modifiers on the decoded rows.
        let mut solutions = super::aggregate::aggregate_table(&table, &query, ctx)?;
        super::aggregate::apply_modifiers(&mut solutions, &query);
        ctx.check_deadline()?;
        return Ok(solutions);
    }

    if !query.order_by.is_empty() {
        table = order_table(&table, &query.order_by, ctx)?;
    }

    let vars = query.projected_vars();
    let mut table = project_to_vars(&table, &vars);

    if query.distinct {
        table = ops::distinct(&table);
    }
    if query.offset.is_some() || query.limit.is_some() {
        table = ops::slice(&table, query.offset.unwrap_or(0), query.limit);
    }

    ctx.check_deadline()?;
    Ok(decode(&table, ctx))
}

/// Projects a solution table to the given variables, adding an all-NULL
/// column for variables the pattern never binds.
fn project_to_vars(table: &Table, vars: &[String]) -> Table {
    let n = table.num_rows();
    if vars.is_empty() {
        // Zero-column tables cannot carry a row count; keep the solution
        // count in a unit column (e.g. `SELECT * { <a> <p> <b> }`).
        return Table::from_columns(Schema::new([UNIT_COL]), vec![vec![0; n]]);
    }
    let cols: Vec<Vec<u32>> = vars
        .iter()
        .map(|v| match table.schema().index_of(v) {
            Some(idx) => table.column(idx).to_vec(),
            None => vec![NULL_ID; n],
        })
        .collect();
    Table::from_columns(Schema::new(vars.iter().cloned()), cols)
}

/// ORDER BY: precomputes per-row sort keys (decoded terms / evaluated
/// expressions) and sorts stably. Unbound/error keys sort first, per
/// SPARQL's ordering of unbound before bound.
fn order_table(
    table: &Table,
    conditions: &[s2rdf_sparql::OrderCondition],
    ctx: &mut ExecContext<'_>,
) -> Result<Table, CoreError> {
    ctx.check_deadline()?;
    let dict = ctx.dict;
    let mut keys: Vec<Vec<Option<Term>>> = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        let lookup = |var: &str| -> Option<&Term> {
            let col = table.schema().index_of(var)?;
            let v = table.value(row, col);
            if v == NULL_ID {
                None
            } else {
                dict.get(TermId(v))
            }
        };
        let row_keys = conditions
            .iter()
            .map(|c| c.expr.eval(&lookup).ok().and_then(value_to_term))
            .collect();
        keys.push(row_keys);
    }
    Ok(ops::sort_by(table, |a, b| {
        for (cond, (ka, kb)) in conditions.iter().zip(keys[a].iter().zip(&keys[b])) {
            let ord = match (ka, kb) {
                (None, None) => Ordering::Equal,
                (None, Some(_)) => Ordering::Less,
                (Some(_), None) => Ordering::Greater,
                (Some(x), Some(y)) => x.value_cmp(y),
            };
            let ord = if cond.descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }))
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Converts an expression [`Value`] to a sortable/aggregatable term.
pub(crate) fn value_to_term(value: Value) -> Option<Term> {
    match value {
        Value::Term(t) => Some(t),
        Value::Bool(b) => Some(Term::literal(if b { "true" } else { "false" })),
        Value::Number(n) => Some(Term::typed_literal(
            format_number(n),
            "http://www.w3.org/2001/XMLSchema#decimal",
        )),
        Value::String(s) => Some(Term::literal(s)),
    }
}

/// Decodes a solution table to terms, skipping internal columns.
fn decode(table: &Table, ctx: &ExecContext<'_>) -> Solutions {
    let mut vars = Vec::new();
    let mut cols = Vec::new();
    for (idx, name) in table.schema().names().iter().enumerate() {
        if name.starts_with('#') {
            continue;
        }
        vars.push(name.to_string());
        cols.push(idx);
    }
    let rows = (0..table.num_rows())
        .map(|row| {
            cols.iter()
                .map(|&c| {
                    let v = table.value(row, c);
                    if v == NULL_ID {
                        None
                    } else {
                        ctx.dict.get(TermId(v)).cloned()
                    }
                })
                .collect()
        })
        .collect();
    Solutions { vars, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::QueryOptions;
    use s2rdf_model::Dictionary;

    /// A trivial evaluator over a fixed solution table, for exercising the
    /// operator plumbing without a store.
    struct Fixed {
        dict: Dictionary,
        table: Table,
    }

    impl BgpEvaluator for Fixed {
        fn dict(&self) -> &Dictionary {
            &self.dict
        }
        fn eval_bgp(
            &self,
            bgp: &[s2rdf_sparql::TriplePattern],
            _ctx: &mut ExecContext<'_>,
        ) -> Result<Table, CoreError> {
            // Expose the fixed rows under the first pattern's variable
            // names, so different BGPs bind different variables (the union
            // test relies on this).
            let vars: Vec<String> = bgp[0].vars().iter().map(|v| v.to_string()).collect();
            assert_eq!(vars.len(), 2, "fixture supports two-variable patterns");
            Ok(self.table.clone().with_schema(Schema::new(vars)))
        }
    }

    fn fixture() -> Fixed {
        let mut dict = Dictionary::new();
        let ids: Vec<u32> = (0..4).map(|i| dict.intern(&Term::integer(i)).0).collect();
        let table = Table::from_rows(
            Schema::new(["x", "y"]),
            &[
                [ids[0], ids[3]],
                [ids[1], ids[2]],
                [ids[2], ids[1]],
            ],
        );
        Fixed { dict, table }
    }

    fn run(q: &str, f: &Fixed) -> Solutions {
        let query = s2rdf_sparql::parse_query(q).unwrap();
        let mut ctx = ExecContext::new(&f.dict, QueryOptions::default());
        eval_query(f, &query, &mut ctx).unwrap()
    }

    #[test]
    fn filter_drops_rows() {
        let f = fixture();
        let s = run("SELECT * WHERE { ?x <p> ?y FILTER(?x < 2) }", &f);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn order_by_numeric() {
        let f = fixture();
        let s = run("SELECT ?x WHERE { ?x <p> ?y } ORDER BY DESC(?y)", &f);
        let xs: Vec<i64> = (0..s.len())
            .map(|i| s.binding(i, "x").unwrap().numeric_value().unwrap() as i64)
            .collect();
        assert_eq!(xs, vec![0, 1, 2]);
    }

    #[test]
    fn limit_offset() {
        let f = fixture();
        let s = run("SELECT ?x WHERE { ?x <p> ?y } ORDER BY ?x LIMIT 1 OFFSET 1", &f);
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "x").unwrap().numeric_value(), Some(1.0));
    }

    #[test]
    fn projection_of_unbound_var() {
        let f = fixture();
        let s = run("SELECT ?x ?nope WHERE { ?x <p> ?y } LIMIT 1", &f);
        assert_eq!(s.vars, vec!["x", "nope"]);
        assert_eq!(s.binding(0, "nope"), None);
    }

    #[test]
    fn distinct_after_projection() {
        let f = fixture();
        // All three rows project onto a single constant after dropping ?x/?y.
        let s = run("SELECT DISTINCT ?z WHERE { ?x <p> ?y }", &f);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_group_yields_unit() {
        let f = fixture();
        let s = run("SELECT ?z WHERE { }", &f);
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "z"), None);
    }

    #[test]
    fn union_join_uses_compatibility_semantics() {
        // { {?x p ?y} UNION {?z p ?w} } joined with ?x p ?y: the right
        // union branch binds neither ?x nor ?y, so its rows are compatible
        // with every row of the second pattern and inherit its bindings.
        let f = fixture(); // table has 3 rows over (x, y)
        let s = run(
            "SELECT ?x ?y ?z WHERE { { ?x <p> ?y } UNION { ?z <p> ?w } ?x <p> ?y }",
            &f,
        );
        // Left branch: 3 rows join with themselves on (x, y) → 3.
        // Right branch: 3 rows (z, w) × 3 rows (x, y), all compatible → 9.
        assert_eq!(s.len(), 12);
        // Every solution has ?x bound (from the mandatory second pattern).
        for i in 0..s.len() {
            assert!(s.binding(i, "x").is_some());
        }
        // And the right-branch rows carry ?z bindings.
        let with_z = (0..s.len()).filter(|&i| s.binding(i, "z").is_some()).count();
        assert_eq!(with_z, 9);
    }

    #[test]
    fn deadline_aborts() {
        let f = fixture();
        let query = s2rdf_sparql::parse_query("SELECT * WHERE { ?x <p> ?y }").unwrap();
        let mut ctx = ExecContext::new(
            &f.dict,
            QueryOptions {
                deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
                ..Default::default()
            },
        );
        match eval_query(&f, &query, &mut ctx) {
            Err(CoreError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
