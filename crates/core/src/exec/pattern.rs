//! Pattern- and query-level evaluation above BGPs.

use std::cmp::Ordering;

use rustc_hash::FxHashMap;
use s2rdf_columnar::exec::{natural_join_adaptive, BuildSide, JoinDecision, JoinStrategy};
use s2rdf_columnar::{ops, Schema, Table, NULL_ID};
use s2rdf_model::{Dictionary, Term};
use s2rdf_sparql::{optimizer, Expression, GraphPattern, Query, Value};

use crate::error::CoreError;

use super::{BgpEvaluator, ExecContext, Solutions};

/// Internal column name for solutions that bind no variable (the result of
/// an empty BGP, or of a fully bound triple pattern). The `#` prefix cannot
/// appear in variable names, so it never collides, and such columns are
/// dropped on projection. Joining two unit columns is an identity join (all
/// values are 0).
pub const UNIT_COL: &str = "#unit";

/// The unit table: one row, no variable bindings.
pub fn unit_table() -> Table {
    Table::from_rows(Schema::new([UNIT_COL]), &[[0u32]])
}

/// Evaluates a graph pattern to a solution table (columns = variables).
pub fn eval_pattern(
    ev: &dyn BgpEvaluator,
    pattern: &GraphPattern,
    ctx: &mut ExecContext<'_>,
) -> Result<Table, CoreError> {
    ctx.check_deadline()?;
    match pattern {
        GraphPattern::Bgp(tps) => {
            if tps.is_empty() {
                Ok(unit_table())
            } else {
                let span = ctx.span_open("bgp");
                let out = ev.eval_bgp(tps, ctx)?;
                ctx.span_close(
                    span,
                    format!("{} triple pattern(s)", tps.len()),
                    Some(out.num_rows()),
                );
                Ok(out)
            }
        }
        GraphPattern::Filter { expr, inner } => {
            let span = ctx.span_open("filter");
            let table = eval_pattern(ev, inner, ctx)?;
            let rows_in = table.num_rows();
            let out = filter_table(&table, expr, ctx)?;
            ctx.span_close(span, format!("in={rows_in}"), Some(out.num_rows()));
            Ok(out)
        }
        GraphPattern::Join(l, r) => {
            let span = ctx.span_open("join");
            let left = eval_pattern(ev, l, ctx)?;
            let right = eval_pattern(ev, r, ctx)?;
            ctx.check_deadline()?;
            // SPARQL compatibility semantics: an unbound shared variable
            // (possible under UNION/OPTIONAL inputs) joins with anything.
            // Hash joins treat NULL_ID as a value, so fall back to the
            // compatibility join when shared columns contain NULLs.
            let compat = needs_compat_join(&left, &right);
            let join_started = std::time::Instant::now();
            let (out, decision) = if compat {
                // The nested-loop compatibility join has no planner choice
                // to make; record it as a serial decision so join_steps
                // stays one-entry-per-join.
                let out = compat_join(&left, &right);
                let decision = JoinDecision {
                    strategy: JoinStrategy::Serial,
                    build_side: BuildSide::Left,
                    partitions: 1,
                    resplits: 0,
                    build_rows: left.num_rows(),
                    probe_rows: right.num_rows(),
                    out_rows: out.num_rows(),
                };
                (out, decision)
            } else {
                natural_join_adaptive(&left, &right, &ctx.options.join)
            };
            ctx.note_join(left.num_rows(), right.num_rows(), out.num_rows())?;
            // Pattern-level joins (between sub-patterns of JOIN/OPTIONAL
            // groups) have no cost-model estimate: the planner works per
            // BGP. Their wall time still feeds cost-model calibration.
            ctx.note_join_decision(
                if compat {
                    "pattern join (compat)"
                } else {
                    "pattern join"
                },
                decision,
                false,
                None,
                join_started.elapsed().as_micros() as u64,
            );
            ctx.span_close(
                span,
                format!(
                    "left={} right={}{} [{}]",
                    left.num_rows(),
                    right.num_rows(),
                    if compat { " compat(NULL-joinable)" } else { "" },
                    decision.summary(),
                ),
                Some(out.num_rows()),
            );
            Ok(out)
        }
        GraphPattern::LeftJoin(l, r) => {
            let span = ctx.span_open("left_join");
            let left = eval_pattern(ev, l, ctx)?;
            let right = eval_pattern(ev, r, ctx)?;
            ctx.check_deadline()?;
            // Same NULL-compatibility guard as Join above: an OPTIONAL
            // whose left input already contains unbound shared variables
            // (OPTIONAL after UNION / nested OPTIONAL) must not hash-join
            // NULL_ID as a literal value.
            let compat = needs_compat_join(&left, &right);
            let out = if compat {
                compat_left_outer_join(&left, &right)
            } else {
                ops::left_outer_join(&left, &right)
            };
            ctx.note_join(left.num_rows(), right.num_rows(), out.num_rows())?;
            ctx.span_close(
                span,
                format!(
                    "left={} right={}{}",
                    left.num_rows(),
                    right.num_rows(),
                    if compat { " compat(NULL-joinable)" } else { "" }
                ),
                Some(out.num_rows()),
            );
            Ok(out)
        }
        GraphPattern::Union(l, r) => {
            let span = ctx.span_open("union");
            let left = eval_pattern(ev, l, ctx)?;
            let right = eval_pattern(ev, r, ctx)?;
            let out = ops::union(&left, &right);
            ctx.span_close(
                span,
                format!("left={} right={}", left.num_rows(), right.num_rows()),
                Some(out.num_rows()),
            );
            Ok(out)
        }
        GraphPattern::Path {
            subject,
            path,
            object,
        } => {
            let span = ctx.span_open("path");
            let out = super::path::eval_path(ev, subject, path, object, ctx)?;
            ctx.span_close(
                span,
                format!("{subject} {path} {object}"),
                Some(out.num_rows()),
            );
            Ok(out)
        }
        GraphPattern::Bind { expr, var, inner } => {
            let span = ctx.span_open("bind");
            let table = eval_pattern(ev, inner, ctx)?;
            if table.schema().contains(var) {
                return Err(CoreError::Unsupported(format!(
                    "BIND would rebind already-bound variable ?{var}"
                )));
            }
            // Evaluate the expression per row; errors bind nothing (SPARQL
            // §10.1). New terms (arithmetic results, derived literals) are
            // interned into the query-local overlay.
            let mut ids: Vec<u32> = Vec::with_capacity(table.num_rows());
            for row in 0..table.num_rows() {
                let term: Option<Term> = {
                    let lookup = |v: &str| -> Option<&Term> {
                        let col = table.schema().index_of(v)?;
                        ctx.term_of(table.value(row, col))
                    };
                    expr.eval(&lookup).ok().and_then(value_to_term)
                };
                ids.push(match &term {
                    Some(t) => ctx.intern_term(t),
                    None => NULL_ID,
                });
            }
            let mut names: Vec<String> = table
                .schema()
                .names()
                .iter()
                .map(|c| c.to_string())
                .collect();
            names.push(var.clone());
            let mut cols: Vec<Vec<u32>> = table.columns().to_vec();
            cols.push(ids);
            let out = Table::from_columns(Schema::new(names), cols);
            ctx.span_close(span, format!("?{var}"), Some(out.num_rows()));
            Ok(out)
        }
        GraphPattern::Values { vars, rows } => {
            if vars.is_empty() {
                return Ok(unit_table());
            }
            let span = ctx.span_open("values");
            let mut cols: Vec<Vec<u32>> = vec![Vec::with_capacity(rows.len()); vars.len()];
            for row in rows {
                for (i, cell) in row.iter().enumerate() {
                    cols[i].push(match cell {
                        Some(t) => ctx.intern_term(t),
                        None => NULL_ID, // UNDEF joins with anything
                    });
                }
            }
            let out = Table::from_columns(Schema::new(vars.iter().cloned()), cols);
            ctx.span_close(span, format!("{} row(s)", rows.len()), Some(out.num_rows()));
            Ok(out)
        }
    }
}

/// True when the pair must use compatibility-join semantics: the inputs
/// share columns and at least one shared column contains [`NULL_ID`]
/// (unbound values), which hash joins would treat as an ordinary value.
fn needs_compat_join(left: &Table, right: &Table) -> bool {
    let shared = left.schema().common_columns(right.schema());
    if shared.is_empty() {
        return false;
    }
    let has_nulls = |t: &Table| {
        shared
            .iter()
            .any(|c| t.column(t.schema().index_of(c).unwrap()).contains(&NULL_ID))
    };
    has_nulls(left) || has_nulls(right)
}

/// Column bookkeeping shared by the compatibility joins: shared-column
/// index pairs, the merged output schema, and the right-only column
/// indices.
struct CompatShape {
    shared_idx: Vec<(usize, usize)>,
    schema: Schema,
    right_extra: Vec<usize>,
}

fn compat_shape(left: &Table, right: &Table) -> CompatShape {
    let shared = left.schema().common_columns(right.schema());
    let shared_idx: Vec<(usize, usize)> = shared
        .iter()
        .map(|c| {
            (
                left.schema().index_of(c).unwrap(),
                right.schema().index_of(c).unwrap(),
            )
        })
        .collect();
    let mut names: Vec<String> = left
        .schema()
        .names()
        .iter()
        .map(|c| c.to_string())
        .collect();
    let right_extra: Vec<usize> = right
        .schema()
        .names()
        .iter()
        .enumerate()
        .filter(|(_, c)| !left.schema().contains(c))
        .map(|(i, c)| {
            names.push(c.to_string());
            i
        })
        .collect();
    CompatShape {
        shared_idx,
        schema: Schema::new(names),
        right_extra,
    }
}

/// SPARQL §2.1 compatibility: mappings agree on the variables *bound in
/// both*; NULL (unbound) on either side of a shared column matches
/// anything.
fn rows_compatible(left: &Table, lr: usize, right: &Table, rr: usize, shape: &CompatShape) -> bool {
    shape.shared_idx.iter().all(|&(lc, rc)| {
        let (lv, rv) = (left.value(lr, lc), right.value(rr, rc));
        lv == NULL_ID || rv == NULL_ID || lv == rv
    })
}

/// Merges a compatible row pair: left bindings win where bound, unbound
/// shared columns take the right side's binding, right-only columns append.
fn push_compat_row(
    out: &mut Table,
    left: &Table,
    lr: usize,
    right: &Table,
    rr: usize,
    shape: &CompatShape,
) {
    let mut row: Vec<u32> = (0..left.schema().len())
        .map(|c| {
            let lv = left.value(lr, c);
            if lv != NULL_ID {
                return lv;
            }
            // Take the right side's binding for shared columns the left
            // leaves unbound.
            match shape.shared_idx.iter().find(|&&(lc, _)| lc == c) {
                Some(&(_, rc)) => right.value(rr, rc),
                None => NULL_ID,
            }
        })
        .collect();
    row.extend(shape.right_extra.iter().map(|&c| right.value(rr, c)));
    out.push_row(&row);
}

/// Join under full SPARQL compatibility semantics (§2.1: two mappings are
/// compatible iff they agree on the variables *bound in both*): a
/// nested-loop join where NULL on either side of a shared column matches
/// anything and the merged value is the bound one. Only used when shared
/// columns actually contain NULLs — after UNION branches with disjoint
/// variables — so inputs are small.
pub fn compat_join(left: &Table, right: &Table) -> Table {
    let shape = compat_shape(left, right);
    let mut out = Table::empty(shape.schema.clone());
    for lr in 0..left.num_rows() {
        for rr in 0..right.num_rows() {
            if rows_compatible(left, lr, right, rr, &shape) {
                push_compat_row(&mut out, left, lr, right, rr, &shape);
            }
        }
    }
    out
}

/// Left outer join under full SPARQL compatibility semantics: like
/// [`compat_join`], but a left row with no compatible right row survives
/// once, with right-only columns padded to [`NULL_ID`].
///
/// This is the OPTIONAL counterpart of the NULL-compatibility fallback:
/// `ops::left_outer_join` hash-joins shared columns and would treat an
/// unbound (`NULL_ID`) shared variable on the left — possible when the
/// OPTIONAL's left input comes from UNION or a nested OPTIONAL — as a
/// literal key, silently dropping or mismatching rows.
pub fn compat_left_outer_join(left: &Table, right: &Table) -> Table {
    let shape = compat_shape(left, right);
    let mut out = Table::empty(shape.schema.clone());
    for lr in 0..left.num_rows() {
        let mut matched = false;
        for rr in 0..right.num_rows() {
            if rows_compatible(left, lr, right, rr, &shape) {
                push_compat_row(&mut out, left, lr, right, rr, &shape);
                matched = true;
            }
        }
        if !matched {
            let mut row: Vec<u32> = (0..left.schema().len())
                .map(|c| left.value(lr, c))
                .collect();
            row.extend(std::iter::repeat_n(NULL_ID, shape.right_extra.len()));
            out.push_row(&row);
        }
    }
    out
}

/// Applies a FILTER to a solution table. Rows whose condition errors (type
/// error / unbound) are dropped, per SPARQL semantics.
///
/// Evaluation is split into morsels on the shared worker pool: expression
/// evaluation is row-independent, so each morsel tests its row range in
/// parallel and the survivors are gathered once at the end.
pub fn filter_table(
    table: &Table,
    expr: &Expression,
    ctx: &mut ExecContext<'_>,
) -> Result<Table, CoreError> {
    ctx.check_deadline()?;
    let dict = ctx.dict;
    let overlay = ctx.overlay();
    let morsel_rows = ctx.options.join.morsel_rows;
    Ok(s2rdf_columnar::pipeline::parallel_filter(
        table,
        |t, row| {
            let lookup = |var: &str| -> Option<&Term> {
                let col = t.schema().index_of(var)?;
                ExecContext::term_at(dict, overlay, t.value(row, col))
            };
            matches!(expr.eval(&lookup).and_then(|v| v.ebv()), Ok(true))
        },
        morsel_rows,
    ))
}

/// Evaluates a full SELECT query: optimize, evaluate the pattern, then
/// apply ORDER BY → projection → DISTINCT → LIMIT/OFFSET and decode.
pub fn eval_query(
    ev: &dyn BgpEvaluator,
    query: &Query,
    ctx: &mut ExecContext<'_>,
) -> Result<Solutions, CoreError> {
    let mut query = query.clone();
    optimizer::optimize(&mut query);

    let mut table = eval_pattern(ev, &query.pattern, ctx)?;

    if query.is_aggregate() {
        // Aggregation path (SPARQL 1.1): group + aggregate on the binding
        // table, then apply the solution modifiers on the decoded rows.
        let mut solutions = super::aggregate::aggregate_table(&table, &query, ctx)?;
        super::aggregate::apply_modifiers(&mut solutions, &query);
        ctx.check_deadline()?;
        return Ok(solutions);
    }

    if !query.order_by.is_empty() {
        table = order_table(&table, &query.order_by, ctx)?;
    }

    let vars = query.projected_vars();
    let mut table = project_to_vars(&table, &vars);

    if query.distinct {
        table = ops::distinct(&table);
    }
    if query.offset.is_some() || query.limit.is_some() {
        table = ops::slice(&table, query.offset.unwrap_or(0), query.limit);
    }

    ctx.check_deadline()?;
    Ok(decode(&table, ctx))
}

/// Projects a solution table to the given variables, adding an all-NULL
/// column for variables the pattern never binds.
fn project_to_vars(table: &Table, vars: &[String]) -> Table {
    let n = table.num_rows();
    if vars.is_empty() {
        // Zero-column tables cannot carry a row count; keep the solution
        // count in a unit column (e.g. `SELECT * { <a> <p> <b> }`).
        return Table::from_columns(Schema::new([UNIT_COL]), vec![vec![0; n]]);
    }
    let cols: Vec<Vec<u32>> = vars
        .iter()
        .map(|v| match table.schema().index_of(v) {
            Some(idx) => table.column(idx).to_vec(),
            None => vec![NULL_ID; n],
        })
        .collect();
    Table::from_columns(Schema::new(vars.iter().cloned()), cols)
}

/// ORDER BY: precomputes per-row sort keys (decoded terms / evaluated
/// expressions) and sorts stably. Unbound/error keys sort first, per
/// SPARQL's ordering of unbound before bound.
fn order_table(
    table: &Table,
    conditions: &[s2rdf_sparql::OrderCondition],
    ctx: &mut ExecContext<'_>,
) -> Result<Table, CoreError> {
    ctx.check_deadline()?;
    let dict = ctx.dict;
    let overlay = ctx.overlay();
    // Fast path: when every condition is a plain variable bound by the
    // pattern (`ORDER BY ?a DESC(?b) …`), each column sorts by a per-id
    // rank, so the O(n·k) composite radix sort replaces the O(n log n)
    // comparison sort. Expression conditions (and variables the pattern
    // never binds, which need the unbound-first rule relative to
    // expression results) fall through to the general path below.
    let var_cols: Option<Vec<(usize, bool)>> = conditions
        .iter()
        .map(|cond| match &cond.expr {
            Expression::Var(v) => table.schema().index_of(v).map(|col| (col, cond.descending)),
            _ => None,
        })
        .collect();
    if let Some(var_cols) = var_cols {
        let keys: Vec<Vec<u32>> = var_cols
            .iter()
            .map(|&(col, descending)| rank_keys(table, col, descending, dict, overlay))
            .collect();
        return Ok(ops::sort_by_keys_radix(table, &keys));
    }
    let mut keys: Vec<Vec<Option<Term>>> = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        let lookup = |var: &str| -> Option<&Term> {
            let col = table.schema().index_of(var)?;
            ExecContext::term_at(dict, overlay, table.value(row, col))
        };
        let row_keys = conditions
            .iter()
            .map(|c| c.expr.eval(&lookup).ok().and_then(value_to_term))
            .collect();
        keys.push(row_keys);
    }
    Ok(ops::sort_by(table, |a, b| {
        for (cond, (ka, kb)) in conditions.iter().zip(keys[a].iter().zip(&keys[b])) {
            let ord = match (ka, kb) {
                (None, None) => Ordering::Equal,
                (None, Some(_)) => Ordering::Less,
                (Some(_), None) => Ordering::Greater,
                (Some(x), Some(y)) => x.value_cmp(y),
            };
            let ord = if cond.descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }))
}

/// Per-row radix key for one ORDER BY variable: the column's distinct ids
/// are ranked by SPARQL value order (unbound first), with value-equal terms
/// collapsed onto one rank so ties keep input order exactly as the stable
/// comparison sort would; DESC negates the ranks, which reverses the total
/// order while preserving stability. One key vector per condition feeds
/// [`ops::sort_by_keys_radix`].
fn rank_keys(
    table: &Table,
    col: usize,
    descending: bool,
    dict: &Dictionary,
    overlay: &[Term],
) -> Vec<u32> {
    let column = table.column(col);
    let mut distinct: Vec<u32> = column.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let term_of = |id: u32| -> Option<&Term> { ExecContext::term_at(dict, overlay, id) };
    let cmp = |a: Option<&Term>, b: Option<&Term>| match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.value_cmp(y),
    };
    distinct.sort_by(|&a, &b| cmp(term_of(a), term_of(b)));
    let mut rank_of: FxHashMap<u32, u32> = FxHashMap::default();
    rank_of.reserve(distinct.len());
    let mut rank = 0u32;
    let mut prev: Option<u32> = None;
    for &id in &distinct {
        if let Some(p) = prev {
            if cmp(term_of(p), term_of(id)) != Ordering::Equal {
                rank += 1;
            }
        }
        rank_of.insert(id, if descending { !rank } else { rank });
        prev = Some(id);
    }
    column.iter().map(|v| rank_of[v]).collect()
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Converts an expression [`Value`] to a sortable/aggregatable term.
pub(crate) fn value_to_term(value: Value) -> Option<Term> {
    match value {
        Value::Term(t) => Some(t),
        Value::Bool(b) => Some(Term::literal(if b { "true" } else { "false" })),
        Value::Number(n) => Some(Term::typed_literal(
            format_number(n),
            "http://www.w3.org/2001/XMLSchema#decimal",
        )),
        Value::String(s) => Some(Term::literal(s)),
    }
}

/// Decodes a solution table to terms, skipping internal columns.
fn decode(table: &Table, ctx: &ExecContext<'_>) -> Solutions {
    let mut vars = Vec::new();
    let mut cols = Vec::new();
    for (idx, name) in table.schema().names().iter().enumerate() {
        if name.starts_with('#') {
            continue;
        }
        vars.push(name.to_string());
        cols.push(idx);
    }
    let rows = (0..table.num_rows())
        .map(|row| {
            cols.iter()
                .map(|&c| ctx.term_of(table.value(row, c)).cloned())
                .collect()
        })
        .collect();
    Solutions { vars, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::QueryOptions;
    use s2rdf_model::Dictionary;

    /// A trivial evaluator over a fixed solution table, for exercising the
    /// operator plumbing without a store.
    struct Fixed {
        dict: Dictionary,
        table: Table,
    }

    impl BgpEvaluator for Fixed {
        fn dict(&self) -> &Dictionary {
            &self.dict
        }
        fn eval_bgp(
            &self,
            bgp: &[s2rdf_sparql::TriplePattern],
            _ctx: &mut ExecContext<'_>,
        ) -> Result<Table, CoreError> {
            // Expose the fixed rows under the first pattern's variable
            // names, so different BGPs bind different variables (the union
            // test relies on this).
            let vars: Vec<String> = bgp[0].vars().iter().map(|v| v.to_string()).collect();
            assert_eq!(vars.len(), 2, "fixture supports two-variable patterns");
            Ok(self.table.clone().with_schema(Schema::new(vars)))
        }
    }

    fn fixture() -> Fixed {
        let mut dict = Dictionary::new();
        let ids: Vec<u32> = (0..4).map(|i| dict.intern(&Term::integer(i)).0).collect();
        let table = Table::from_rows(
            Schema::new(["x", "y"]),
            &[[ids[0], ids[3]], [ids[1], ids[2]], [ids[2], ids[1]]],
        );
        Fixed { dict, table }
    }

    fn run(q: &str, f: &Fixed) -> Solutions {
        let query = s2rdf_sparql::parse_query(q).unwrap();
        let mut ctx = ExecContext::new(&f.dict, QueryOptions::default());
        eval_query(f, &query, &mut ctx).unwrap()
    }

    #[test]
    fn filter_drops_rows() {
        let f = fixture();
        let s = run("SELECT * WHERE { ?x <p> ?y FILTER(?x < 2) }", &f);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn order_by_numeric() {
        let f = fixture();
        let s = run("SELECT ?x WHERE { ?x <p> ?y } ORDER BY DESC(?y)", &f);
        let xs: Vec<i64> = (0..s.len())
            .map(|i| s.binding(i, "x").unwrap().numeric_value().unwrap() as i64)
            .collect();
        assert_eq!(xs, vec![0, 1, 2]);
    }

    #[test]
    fn order_by_multi_key_mixed_directions() {
        // Primary-key ties force the secondary condition to decide, with
        // opposite directions per key (the composite radix fast path).
        let mut dict = Dictionary::new();
        let ids: Vec<u32> = (0..4).map(|i| dict.intern(&Term::integer(i)).0).collect();
        let table = Table::from_rows(
            Schema::new(["x", "y"]),
            &[
                [ids[1], ids[0]],
                [ids[0], ids[1]],
                [ids[1], ids[2]],
                [ids[0], ids[3]],
            ],
        );
        let f = Fixed { dict, table };
        let s = run("SELECT ?x ?y WHERE { ?x <p> ?y } ORDER BY ?x DESC(?y)", &f);
        let pairs: Vec<(i64, i64)> = (0..s.len())
            .map(|i| {
                (
                    s.binding(i, "x").unwrap().numeric_value().unwrap() as i64,
                    s.binding(i, "y").unwrap().numeric_value().unwrap() as i64,
                )
            })
            .collect();
        assert_eq!(pairs, vec![(0, 3), (0, 1), (1, 2), (1, 0)]);
    }

    #[test]
    fn limit_offset() {
        let f = fixture();
        let s = run(
            "SELECT ?x WHERE { ?x <p> ?y } ORDER BY ?x LIMIT 1 OFFSET 1",
            &f,
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "x").unwrap().numeric_value(), Some(1.0));
    }

    #[test]
    fn projection_of_unbound_var() {
        let f = fixture();
        let s = run("SELECT ?x ?nope WHERE { ?x <p> ?y } LIMIT 1", &f);
        assert_eq!(s.vars, vec!["x", "nope"]);
        assert_eq!(s.binding(0, "nope"), None);
    }

    #[test]
    fn distinct_after_projection() {
        let f = fixture();
        // All three rows project onto a single constant after dropping ?x/?y.
        let s = run("SELECT DISTINCT ?z WHERE { ?x <p> ?y }", &f);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_group_yields_unit() {
        let f = fixture();
        let s = run("SELECT ?z WHERE { }", &f);
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "z"), None);
    }

    #[test]
    fn union_join_uses_compatibility_semantics() {
        // { {?x p ?y} UNION {?z p ?w} } joined with ?x p ?y: the right
        // union branch binds neither ?x nor ?y, so its rows are compatible
        // with every row of the second pattern and inherit its bindings.
        let f = fixture(); // table has 3 rows over (x, y)
        let s = run(
            "SELECT ?x ?y ?z WHERE { { ?x <p> ?y } UNION { ?z <p> ?w } ?x <p> ?y }",
            &f,
        );
        // Left branch: 3 rows join with themselves on (x, y) → 3.
        // Right branch: 3 rows (z, w) × 3 rows (x, y), all compatible → 9.
        assert_eq!(s.len(), 12);
        // Every solution has ?x bound (from the mandatory second pattern).
        for i in 0..s.len() {
            assert!(s.binding(i, "x").is_some());
        }
        // And the right-branch rows carry ?z bindings.
        let with_z = (0..s.len())
            .filter(|&i| s.binding(i, "z").is_some())
            .count();
        assert_eq!(with_z, 9);
    }

    #[test]
    fn optional_after_union_uses_compatibility_semantics() {
        // Regression test for the OPTIONAL NULL-join bug: LeftJoin used to
        // call ops::left_outer_join unconditionally, so a left input whose
        // shared variable ?x is unbound (the right UNION branch binds only
        // ?z/?w) hash-joined NULL_ID as a literal key and the unbound rows
        // never inherited the OPTIONAL's bindings. With the pre-fix path
        // this query returns 6 solutions (3 of them padded); the
        // compatibility semantics require 12, all with ?v bound.
        let f = fixture();
        let s = run(
            "SELECT * WHERE { { ?x <p> ?y } UNION { ?z <p> ?w } OPTIONAL { ?x <p> ?v } }",
            &f,
        );
        // Left branch: 3 rows, each ?x matches exactly one (x, v) row → 3.
        // Right branch: 3 rows with ?x unbound, compatible with all 3
        // OPTIONAL rows → 9.
        assert_eq!(s.len(), 12);
        for i in 0..s.len() {
            assert!(
                s.binding(i, "v").is_some(),
                "row {i}: OPTIONAL must bind ?v for every compatible row"
            );
        }
        let with_z = (0..s.len())
            .filter(|&i| s.binding(i, "z").is_some())
            .count();
        assert_eq!(with_z, 9);
    }

    #[test]
    fn compat_left_outer_join_matches_definition_and_differs_from_hash_path() {
        use s2rdf_columnar::exec::row_multiset;
        const N: u32 = NULL_ID;
        let left = Table::from_rows(Schema::new(["x", "y"]), &[[1, 10], [N, 11], [2, 12]]);
        let right = Table::from_rows(Schema::new(["x", "v"]), &[[1, 20], [3, 21]]);
        let out = compat_left_outer_join(&left, &right);
        let expected = vec![
            vec![1, 10, 20], // bound match
            vec![1, 11, 20], // unbound ?x: compatible with both right rows,
            vec![3, 11, 21], //   inheriting the right side's ?x binding
            vec![2, 12, N],  // no compatible right row: padded
        ];
        let mut expected_sorted = expected;
        expected_sorted.sort_unstable();
        assert_eq!(row_multiset(&out), expected_sorted);
        // The plain hash-based left outer join gives a different (wrong)
        // answer on this input — the bug this path guards against.
        let buggy = ops::left_outer_join(&left, &right);
        assert_ne!(row_multiset(&buggy), row_multiset(&out));
        assert_eq!(buggy.num_rows(), 3, "hash path drops the NULL-x matches");
    }

    #[test]
    fn compat_left_outer_equals_hash_left_outer_without_nulls() {
        let left = Table::from_rows(Schema::new(["x", "y"]), &[[1, 10], [2, 12], [9, 13]]);
        let right = Table::from_rows(Schema::new(["x", "v"]), &[[1, 20], [1, 21], [3, 22]]);
        use s2rdf_columnar::exec::row_multiset;
        assert_eq!(
            row_multiset(&compat_left_outer_join(&left, &right)),
            row_multiset(&ops::left_outer_join(&left, &right))
        );
    }

    #[test]
    fn profile_collects_span_tree() {
        let f = fixture();
        let query = s2rdf_sparql::parse_query(
            "SELECT * WHERE { { ?x <p> ?y } UNION { ?z <p> ?w } ?x <p> ?y }",
        )
        .unwrap();
        let mut ctx = ExecContext::new(
            &f.dict,
            QueryOptions {
                profile: true,
                ..Default::default()
            },
        );
        eval_query(&f, &query, &mut ctx).unwrap();
        let trace = ctx.explain.trace.as_ref().expect("profiling enabled");
        let labels: Vec<&str> = trace.nodes().iter().map(|n| n.label.as_str()).collect();
        assert!(labels.contains(&"join"), "{labels:?}");
        assert!(labels.contains(&"union"), "{labels:?}");
        assert!(labels.contains(&"bgp"), "{labels:?}");
        let rendered = trace.render();
        assert!(rendered.contains("µs"), "{rendered}");
        // Without profiling, no trace is collected.
        let mut ctx = ExecContext::new(&f.dict, QueryOptions::default());
        eval_query(&f, &query, &mut ctx).unwrap();
        assert!(ctx.explain.trace.is_none());
    }

    #[test]
    fn deadline_aborts() {
        let f = fixture();
        let query = s2rdf_sparql::parse_query("SELECT * WHERE { ?x <p> ?y }").unwrap();
        let mut ctx = ExecContext::new(
            &f.dict,
            QueryOptions {
                deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
                ..Default::default()
            },
        );
        match eval_query(&f, &query, &mut ctx) {
            Err(CoreError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
