//! Decoded query results.

use std::fmt;

use s2rdf_model::Term;

/// A bag of solution mappings, decoded from dictionary ids to terms.
///
/// `rows[i][j]` is the binding of variable `vars[j]` in solution `i`
/// (`None` = unbound, e.g. under OPTIONAL).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solutions {
    /// Projected variable names.
    pub vars: Vec<String>,
    /// Solution rows.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The binding of `var` in solution `row`.
    pub fn binding(&self, row: usize, var: &str) -> Option<&Term> {
        let col = self.vars.iter().position(|v| v == var)?;
        self.rows.get(row)?.get(col)?.as_ref()
    }

    /// Iterates solutions as `(var, term)` pair lists.
    pub fn iter(&self) -> impl Iterator<Item = Vec<(&str, Option<&Term>)>> {
        self.rows.iter().map(move |row| {
            self.vars
                .iter()
                .zip(row)
                .map(|(v, t)| (v.as_str(), t.as_ref()))
                .collect()
        })
    }

    /// A canonical multiset representation: each row rendered as
    /// `var=term` pairs sorted by variable name, rows sorted. Used to
    /// compare results across engines, where row order is unspecified.
    pub fn canonical(&self) -> Vec<String> {
        let mut var_order: Vec<usize> = (0..self.vars.len()).collect();
        var_order.sort_by(|&a, &b| self.vars[a].cmp(&self.vars[b]));
        let mut out: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                var_order
                    .iter()
                    .map(|&i| match &row[i] {
                        Some(t) => format!("{}={}", self.vars[i], t),
                        None => format!("{}=∅", self.vars[i]),
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        out.sort();
        out
    }
}

impl fmt::Display for Solutions {
    /// Renders a small result table (for examples and debugging).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.vars.join("\t"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|t| t.as_ref().map_or("∅".to_string(), Term::to_string))
                .collect();
            writeln!(f, "{}", cells.join("\t"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Solutions {
        Solutions {
            vars: vec!["x".into(), "y".into()],
            rows: vec![
                vec![Some(Term::iri("a")), Some(Term::iri("b"))],
                vec![Some(Term::iri("c")), None],
            ],
        }
    }

    #[test]
    fn binding_lookup() {
        let s = sample();
        assert_eq!(s.binding(0, "x"), Some(&Term::iri("a")));
        assert_eq!(s.binding(1, "y"), None);
        assert_eq!(s.binding(0, "z"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let a = sample();
        let mut b = sample();
        b.rows.reverse();
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn canonical_is_var_order_insensitive() {
        let a = sample();
        let b = Solutions {
            vars: vec!["y".into(), "x".into()],
            rows: vec![
                vec![None, Some(Term::iri("c"))],
                vec![Some(Term::iri("b")), Some(Term::iri("a"))],
            ],
        };
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn display_renders() {
        let rendered = sample().to_string();
        assert!(rendered.contains("x\ty"));
        assert!(rendered.contains("<a>\t<b>"));
        assert!(rendered.contains('∅'));
    }
}
