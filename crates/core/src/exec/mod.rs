//! Evaluation of the SPARQL algebra over the columnar substrate.
//!
//! A [`BgpEvaluator`] supplies BGP evaluation (each engine implements its
//! own layout-specific strategy); this module supplies everything above
//! BGPs — FILTER, OPTIONAL (left outer join), UNION, DISTINCT, ORDER BY,
//! LIMIT/OFFSET and projection — which the paper maps "more or less
//! directly … to the appropriate counterparts in Spark SQL" (§6.1).

pub mod aggregate;
pub mod path;
pub mod pattern;
pub mod solution;
pub mod trace;

use std::time::Instant;

use rustc_hash::FxHashMap;
use s2rdf_columnar::exec::{JoinConfig, JoinDecision};
use s2rdf_columnar::{Table, NULL_ID};
use s2rdf_model::{Dictionary, Term, TermId};
use s2rdf_sparql::TriplePattern;

use crate::error::CoreError;

pub use pattern::{compat_join, compat_left_outer_join, eval_pattern, eval_query, unit_table};
pub use solution::Solutions;
pub use trace::{SpanId, Trace, TraceNode};

/// Per-query evaluation options shared by all engines.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Hard deadline: long-running engines (centralized, batch) poll it and
    /// abort with [`CoreError::Timeout`] — the paper's "F" entries.
    pub deadline: Option<Instant>,
    /// Join-order optimization (paper Alg. 4 / §6.2). Disabling reproduces
    /// the naive Alg. 3 behaviour for ablations.
    pub optimize_join_order: bool,
    /// Intersect *all* applicable ExtVP reductions for each triple pattern
    /// instead of only the most selective one — the paper's §8 future-work
    /// "unification strategy … able to consider the intersections of all
    /// correlations for a triple pattern". Computed at query time against
    /// the chosen table (the paper proposes precomputing the unification;
    /// the input reduction achieved is the same).
    pub intersect_correlations: bool,
    /// Number of retries after a failed ExtVP partition load before the
    /// engine degrades to the VP table (Spark's `spark.task.maxFailures`
    /// analogue; retries use bounded exponential backoff starting at
    /// [`QueryOptions::retry_backoff_ms`]).
    pub max_retries: u32,
    /// Initial backoff between partition-load retries, in milliseconds
    /// (doubled per attempt). `0` retries immediately.
    pub retry_backoff_ms: u64,
    /// Abort with [`CoreError::ResourceExhausted`] if any intermediate join
    /// result exceeds this many rows — a guard against runaway queries on a
    /// shared store, akin to a cluster manager killing an over-budget job.
    pub max_intermediate_rows: Option<usize>,
    /// Collect a per-operator span tree ([`Trace`]) for this query,
    /// returned in [`Explain::trace`] — the `s2rdf query --profile` path
    /// and the analogue of inspecting a job in Spark's UI.
    pub profile: bool,
    /// Thresholds for the adaptive join planner (broadcast vs partitioned
    /// hash join, partition-count derivation, straggler re-partitioning) —
    /// the analogues of Spark's `autoBroadcastJoinThreshold` and AQE knobs.
    pub join: JoinConfig,
    /// Largest BGP whose join order is chosen by exact left-deep DP
    /// enumeration over the ExtVP-derived cost model
    /// ([`crate::compiler::cost`]); larger BGPs use the greedy Algorithm 4
    /// order. `0` disables the DP planner entirely.
    pub dp_max_patterns: usize,
    /// AQE-style mid-query re-planning trigger: after each join
    /// materializes, if observed/estimated cardinality (either direction)
    /// exceeds this ratio and at least two steps remain, the remaining
    /// join order is re-derived with the accumulator pinned to its
    /// observed size. `0.0` disables re-planning.
    pub replan_threshold: f64,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            deadline: None,
            optimize_join_order: true,
            intersect_correlations: false,
            max_retries: 2,
            retry_backoff_ms: 0,
            max_intermediate_rows: None,
            profile: false,
            join: JoinConfig::default(),
            dp_max_patterns: 10,
            replan_threshold: 4.0,
        }
    }
}

/// Explain record for one BGP join step.
#[derive(Debug, Clone)]
pub struct StepExplain {
    /// Human-readable table name (e.g. `ExtVP_OS/<follows>|<likes>`).
    pub table: String,
    /// Rows read from that table after bound-constant selections.
    pub rows: usize,
    /// Selectivity factor of the chosen table (1.0 for VP/TT).
    pub sf: f64,
    /// Wall time spent scanning (and, for engines that fold the join into
    /// the step, joining) this step, in microseconds.
    pub wall_micros: u64,
    /// Why this table was selected (e.g. "smallest ExtVP among 3
    /// candidates", "VP fallback: no correlated pattern"). Mirrors the
    /// table-selection argument of paper Alg. 2.
    pub rationale: String,
    /// Catalog cardinality estimate for the chosen table before scanning
    /// (the number the adaptive join planner sees); `0` when the engine
    /// has no estimate.
    pub est_rows: usize,
}

impl StepExplain {
    /// Step record with timing/rationale defaults (filled in by engines
    /// that track them; older call sites get zero/empty values).
    pub fn new(table: impl Into<String>, rows: usize, sf: f64) -> StepExplain {
        StepExplain {
            table: table.into(),
            rows,
            sf,
            wall_micros: 0,
            rationale: String::new(),
            est_rows: 0,
        }
    }
}

/// Explain record for one executed join: the adaptive planner's decision
/// (strategy, build side, partition count, re-splits) plus whether a cached
/// hash index was reused for the build side.
#[derive(Debug, Clone)]
pub struct JoinExplain {
    /// Where the join ran (e.g. `bgp step 3` or `pattern join`).
    pub context: String,
    /// The planner's decision record.
    pub decision: JoinDecision,
    /// True when the build-side hash index came from the star-pattern
    /// index cache instead of being rebuilt.
    pub reused_index: bool,
    /// The cost model's estimated output cardinality for this join,
    /// before it ran — compare against `decision.out_rows` (the observed
    /// count) to see how far the statistics were off. `None` when the
    /// engine had no estimate (baseline engines, pattern-level joins).
    pub est_out_rows: Option<u64>,
    /// Measured wall time of the join in microseconds — the per-join
    /// sample the cost model is calibrated against
    /// ([`crate::compiler::cost::CostModel::calibrate`]).
    pub wall_micros: u64,
}

/// Record of one AQE-style mid-query re-plan: a join's observed
/// cardinality diverged from the estimate beyond
/// [`QueryOptions::replan_threshold`], so the remaining steps were
/// re-ordered with the accumulator pinned to its observed size.
#[derive(Debug, Clone)]
pub struct ReplanExplain {
    /// 0-based index of the BGP step whose join triggered the re-plan.
    pub after_step: usize,
    /// What the planner expected the join to produce.
    pub estimated_rows: f64,
    /// What it actually produced.
    pub observed_rows: usize,
    /// True when re-ordering actually changed the remaining sequence
    /// (a triggered re-plan can confirm the current order is still best).
    pub changed: bool,
    /// The remaining steps' new execution order, as pattern text.
    pub new_order: Vec<String>,
}

/// Worker-pool activity attributed to one query: the delta of the shared
/// [`s2rdf_columnar::pool::WorkerPool`] stats between query start and end.
/// Tasks here are morsels/partitions/write chunks submitted by joins and
/// fused pipelines; `steals` shows how much work stealing rebalanced them.
/// Concurrent queries on the same process share the pool, so under
/// contention the delta can include a neighbour's tasks — it is an
/// attribution aid, not an exact ledger.
#[derive(Debug, Clone, Default)]
pub struct PoolExplain {
    /// Pool execution slots (the cached parallelism probe,
    /// `columnar.pool.workers`).
    pub workers: usize,
    /// Pool tasks executed during the query.
    pub tasks: u64,
    /// Tasks taken from another worker's queue.
    pub steals: u64,
    /// High-water queue depth (process lifetime, not per query).
    pub max_queue_depth: u64,
    /// Busy microseconds per worker slot during the query; the last slot
    /// is the submitting (caller-helper) thread.
    pub busy_micros: Vec<u64>,
}

/// Explain record for one evaluated property-path pattern: the fixpoint's
/// shape and its per-iteration delta sizes (the Spark-iterative-job
/// analogue — each entry is one "job" of the semi-join fixpoint).
#[derive(Debug, Clone)]
pub struct PathStepExplain {
    /// The path expression, rendered.
    pub path: String,
    /// How it was evaluated: `"forward-bfs"`/`"backward-bfs"` (one endpoint
    /// bound, bitmap-deduped frontier), `"closure"` (both endpoints open,
    /// delta-set pair iteration), or `"relation"` (no fixpoint needed).
    pub mode: String,
    /// New pairs (or frontier nodes) discovered per fixpoint iteration;
    /// empty for non-closure paths.
    pub iteration_rows: Vec<usize>,
    /// Rows in the path pattern's result table.
    pub total_rows: usize,
}

/// Record of one BGP step that executed in degraded mode: the planned ExtVP
/// partition could not be loaded and the engine fell back to the base VP
/// table. Because every ExtVP partition is a subset of its VP table
/// containing all join-surviving rows, the fallback changes cost, never
/// results — the shared-memory analogue of Spark recomputing a lost
/// partition from lineage.
#[derive(Debug, Clone)]
pub struct DegradedStep {
    /// The table the compiler selected (e.g. `ExtVP_OS/<follows>|<likes>`).
    pub planned: String,
    /// The table actually scanned instead (e.g. `VP/<follows>`).
    pub fallback: String,
    /// Why the planned table was unavailable.
    pub reason: String,
    /// Load attempts made (1 + retries) before degrading.
    pub attempts: u32,
}

/// Execution trace collected alongside a query result.
#[derive(Debug, Clone, Default)]
pub struct Explain {
    /// One entry per executed triple pattern, in join order.
    pub bgp_steps: Vec<StepExplain>,
    /// Σ |left| · |right| over all pairwise joins — the paper's "join
    /// comparisons" metric from Figs. 8 and 12.
    pub naive_join_comparisons: u64,
    /// Cardinality after each join.
    pub intermediate_rows: Vec<usize>,
    /// True if statistics alone proved the result empty (§6.1).
    pub statically_empty: bool,
    /// Steps that fell back from a planned ExtVP partition to its VP table.
    /// Empty on a healthy store.
    pub degraded_steps: Vec<DegradedStep>,
    /// Transient partition-load errors that a retry or fallback absorbed;
    /// the query still produced exact results despite them.
    pub recovered_errors: Vec<String>,
    /// BGP joins that reused a previously built hash index because the
    /// build side was a repeated pure-rename scan of the same stored table
    /// (star patterns sharing a join variable).
    pub index_reuses: usize,
    /// One entry per executed pairwise join, in execution order: the
    /// adaptive planner's strategy, build side, partition count and
    /// re-splits (Spark's broadcast-vs-shuffle choice plus AQE skew
    /// handling, observable per join).
    pub join_steps: Vec<JoinExplain>,
    /// How the BGP join order was chosen: `"dp"` (exact enumeration),
    /// `"greedy"` (Algorithm 4) or `"input"` (ordering disabled / trivial
    /// BGP). Empty when no BGP was compiled.
    pub join_order_method: String,
    /// Mid-query re-plans triggered by observed-vs-estimated cardinality
    /// divergence, in execution order. Empty when re-planning is disabled
    /// or estimates held up.
    pub replans: Vec<ReplanExplain>,
    /// One entry per evaluated property-path pattern, with per-iteration
    /// fixpoint row counts.
    pub path_steps: Vec<PathStepExplain>,
    /// Per-operator span tree, collected when [`QueryOptions::profile`] is
    /// set (otherwise `None`).
    pub trace: Option<Trace>,
    /// Worker-pool activity during this query (always collected — reading
    /// the pool counters is a handful of atomic loads).
    pub pool: Option<PoolExplain>,
}

impl Explain {
    /// True if every step ran on the planned table with no recovered
    /// faults.
    pub fn fully_healthy(&self) -> bool {
        self.degraded_steps.is_empty() && self.recovered_errors.is_empty()
    }
}

/// Shared evaluation state threaded through pattern evaluation.
pub struct ExecContext<'a> {
    /// The dictionary for decoding ids in filters and results.
    pub dict: &'a Dictionary,
    /// Options for this query.
    pub options: QueryOptions,
    /// Trace being collected.
    pub explain: Explain,
    /// Query-local term overlay: terms introduced by the query itself
    /// (VALUES data, BIND results) that are absent from the immutable store
    /// dictionary. Overlay ids start at `dict.len()` so they never collide
    /// with stored ids; [`ExecContext::term_of`] resolves both ranges.
    extra_terms: Vec<Term>,
    extra_ids: FxHashMap<Term, u32>,
}

impl<'a> ExecContext<'a> {
    /// Creates a context. When [`QueryOptions::profile`] is set, the
    /// context carries a [`Trace`] sink that operators append spans to via
    /// [`ExecContext::span_open`]/[`ExecContext::span_close`].
    pub fn new(dict: &'a Dictionary, options: QueryOptions) -> ExecContext<'a> {
        let mut explain = Explain::default();
        if options.profile {
            explain.trace = Some(Trace::new());
        }
        ExecContext {
            dict,
            options,
            explain,
            extra_terms: Vec::new(),
            extra_ids: FxHashMap::default(),
        }
    }

    /// Resolves an id to a term, consulting the store dictionary first and
    /// the query-local overlay above it. `NULL_ID` (unbound) is `None`.
    pub fn term_of(&self, id: u32) -> Option<&Term> {
        if id == NULL_ID {
            return None;
        }
        let base = self.dict.len() as u32;
        if id < base {
            self.dict.get(TermId(id))
        } else {
            self.extra_terms.get((id - base) as usize)
        }
    }

    /// Returns an id for `term`, interning it into the query-local overlay
    /// if the store dictionary does not know it.
    pub fn intern_term(&mut self, term: &Term) -> u32 {
        if let Some(id) = self.dict.id(term) {
            return id.0;
        }
        if let Some(&id) = self.extra_ids.get(term) {
            return id;
        }
        let id = (self.dict.len() + self.extra_terms.len()) as u32;
        self.extra_terms.push(term.clone());
        self.extra_ids.insert(term.clone(), id);
        id
    }

    /// The query-local overlay terms (index 0 is id `dict.len()`), for
    /// decode paths that only hold immutable borrows.
    pub fn overlay(&self) -> &[Term] {
        &self.extra_terms
    }

    /// Resolves an id against split dictionary/overlay borrows — for
    /// closures (parallel filter predicates, sort key extraction) that
    /// cannot capture the whole context.
    pub fn term_at<'b>(dict: &'b Dictionary, overlay: &'b [Term], id: u32) -> Option<&'b Term> {
        if id == NULL_ID {
            return None;
        }
        let base = dict.len() as u32;
        if id < base {
            dict.get(TermId(id))
        } else {
            overlay.get((id - base) as usize)
        }
    }

    /// Opens a trace span (no-op returning [`SpanId::NONE`] when profiling
    /// is off).
    #[inline]
    pub fn span_open(&mut self, label: &str) -> SpanId {
        match &mut self.explain.trace {
            Some(trace) => trace.open(label),
            None => SpanId::NONE,
        }
    }

    /// Closes a trace span with a detail string and output cardinality.
    #[inline]
    pub fn span_close(&mut self, id: SpanId, detail: String, rows_out: Option<usize>) {
        if let Some(trace) = &mut self.explain.trace {
            trace.close(id, detail, rows_out);
        }
    }

    /// Returns `Err(Timeout)` if the deadline has passed.
    pub fn check_deadline(&self) -> Result<(), CoreError> {
        if let Some(deadline) = self.options.deadline {
            if Instant::now() > deadline {
                return Err(CoreError::Timeout);
            }
        }
        Ok(())
    }

    /// Records a pairwise join for the comparison counter and enforces the
    /// intermediate-result budget: returns
    /// [`CoreError::ResourceExhausted`] if `out_rows` exceeds
    /// [`QueryOptions::max_intermediate_rows`].
    pub fn note_join(
        &mut self,
        left_rows: usize,
        right_rows: usize,
        out_rows: usize,
    ) -> Result<(), CoreError> {
        self.explain.naive_join_comparisons += left_rows as u64 * right_rows as u64;
        self.explain.intermediate_rows.push(out_rows);
        if let Some(limit) = self.options.max_intermediate_rows {
            if out_rows > limit {
                return Err(CoreError::ResourceExhausted(format!(
                    "intermediate join result of {out_rows} rows exceeds limit {limit}"
                )));
            }
        }
        Ok(())
    }

    /// Records the adaptive planner's decision for one executed join in
    /// [`Explain::join_steps`], together with the cost model's output
    /// estimate (when one exists) and the measured wall time.
    pub fn note_join_decision(
        &mut self,
        context: impl Into<String>,
        decision: JoinDecision,
        reused_index: bool,
        est_out_rows: Option<u64>,
        wall_micros: u64,
    ) {
        self.explain.join_steps.push(JoinExplain {
            context: context.into(),
            decision,
            reused_index,
            est_out_rows,
            wall_micros,
        });
    }
}

/// Layout-specific BGP evaluation, implemented by each engine.
pub trait BgpEvaluator {
    /// The dictionary encoding this evaluator's data.
    fn dict(&self) -> &Dictionary;

    /// Evaluates a non-empty BGP to a solution table whose columns are the
    /// BGP's variable names.
    fn eval_bgp(
        &self,
        bgp: &[TriplePattern],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError>;
}
