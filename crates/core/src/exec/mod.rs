//! Evaluation of the SPARQL algebra over the columnar substrate.
//!
//! A [`BgpEvaluator`] supplies BGP evaluation (each engine implements its
//! own layout-specific strategy); this module supplies everything above
//! BGPs — FILTER, OPTIONAL (left outer join), UNION, DISTINCT, ORDER BY,
//! LIMIT/OFFSET and projection — which the paper maps "more or less
//! directly … to the appropriate counterparts in Spark SQL" (§6.1).

pub mod aggregate;
pub mod pattern;
pub mod solution;

use std::time::Instant;

use s2rdf_columnar::Table;
use s2rdf_model::Dictionary;
use s2rdf_sparql::TriplePattern;

use crate::error::CoreError;

pub use pattern::{eval_pattern, eval_query, unit_table};
pub use solution::Solutions;

/// Per-query evaluation options shared by all engines.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Hard deadline: long-running engines (centralized, batch) poll it and
    /// abort with [`CoreError::Timeout`] — the paper's "F" entries.
    pub deadline: Option<Instant>,
    /// Join-order optimization (paper Alg. 4 / §6.2). Disabling reproduces
    /// the naive Alg. 3 behaviour for ablations.
    pub optimize_join_order: bool,
    /// Intersect *all* applicable ExtVP reductions for each triple pattern
    /// instead of only the most selective one — the paper's §8 future-work
    /// "unification strategy … able to consider the intersections of all
    /// correlations for a triple pattern". Computed at query time against
    /// the chosen table (the paper proposes precomputing the unification;
    /// the input reduction achieved is the same).
    pub intersect_correlations: bool,
    /// Number of retries after a failed ExtVP partition load before the
    /// engine degrades to the VP table (Spark's `spark.task.maxFailures`
    /// analogue; retries use bounded exponential backoff starting at
    /// [`QueryOptions::retry_backoff_ms`]).
    pub max_retries: u32,
    /// Initial backoff between partition-load retries, in milliseconds
    /// (doubled per attempt). `0` retries immediately.
    pub retry_backoff_ms: u64,
    /// Abort with [`CoreError::ResourceExhausted`] if any intermediate join
    /// result exceeds this many rows — a guard against runaway queries on a
    /// shared store, akin to a cluster manager killing an over-budget job.
    pub max_intermediate_rows: Option<usize>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            deadline: None,
            optimize_join_order: true,
            intersect_correlations: false,
            max_retries: 2,
            retry_backoff_ms: 0,
            max_intermediate_rows: None,
        }
    }
}

/// Explain record for one BGP join step.
#[derive(Debug, Clone)]
pub struct StepExplain {
    /// Human-readable table name (e.g. `ExtVP_OS/<follows>|<likes>`).
    pub table: String,
    /// Rows read from that table after bound-constant selections.
    pub rows: usize,
    /// Selectivity factor of the chosen table (1.0 for VP/TT).
    pub sf: f64,
}

/// Record of one BGP step that executed in degraded mode: the planned ExtVP
/// partition could not be loaded and the engine fell back to the base VP
/// table. Because every ExtVP partition is a subset of its VP table
/// containing all join-surviving rows, the fallback changes cost, never
/// results — the shared-memory analogue of Spark recomputing a lost
/// partition from lineage.
#[derive(Debug, Clone)]
pub struct DegradedStep {
    /// The table the compiler selected (e.g. `ExtVP_OS/<follows>|<likes>`).
    pub planned: String,
    /// The table actually scanned instead (e.g. `VP/<follows>`).
    pub fallback: String,
    /// Why the planned table was unavailable.
    pub reason: String,
    /// Load attempts made (1 + retries) before degrading.
    pub attempts: u32,
}

/// Execution trace collected alongside a query result.
#[derive(Debug, Clone, Default)]
pub struct Explain {
    /// One entry per executed triple pattern, in join order.
    pub bgp_steps: Vec<StepExplain>,
    /// Σ |left| · |right| over all pairwise joins — the paper's "join
    /// comparisons" metric from Figs. 8 and 12.
    pub naive_join_comparisons: u64,
    /// Cardinality after each join.
    pub intermediate_rows: Vec<usize>,
    /// True if statistics alone proved the result empty (§6.1).
    pub statically_empty: bool,
    /// Steps that fell back from a planned ExtVP partition to its VP table.
    /// Empty on a healthy store.
    pub degraded_steps: Vec<DegradedStep>,
    /// Transient partition-load errors that a retry or fallback absorbed;
    /// the query still produced exact results despite them.
    pub recovered_errors: Vec<String>,
}

impl Explain {
    /// True if every step ran on the planned table with no recovered
    /// faults.
    pub fn fully_healthy(&self) -> bool {
        self.degraded_steps.is_empty() && self.recovered_errors.is_empty()
    }
}

/// Shared evaluation state threaded through pattern evaluation.
pub struct ExecContext<'a> {
    /// The dictionary for decoding ids in filters and results.
    pub dict: &'a Dictionary,
    /// Options for this query.
    pub options: QueryOptions,
    /// Trace being collected.
    pub explain: Explain,
}

impl<'a> ExecContext<'a> {
    /// Creates a context.
    pub fn new(dict: &'a Dictionary, options: QueryOptions) -> ExecContext<'a> {
        ExecContext { dict, options, explain: Explain::default() }
    }

    /// Returns `Err(Timeout)` if the deadline has passed.
    pub fn check_deadline(&self) -> Result<(), CoreError> {
        if let Some(deadline) = self.options.deadline {
            if Instant::now() > deadline {
                return Err(CoreError::Timeout);
            }
        }
        Ok(())
    }

    /// Records a pairwise join for the comparison counter and enforces the
    /// intermediate-result budget: returns
    /// [`CoreError::ResourceExhausted`] if `out_rows` exceeds
    /// [`QueryOptions::max_intermediate_rows`].
    pub fn note_join(
        &mut self,
        left_rows: usize,
        right_rows: usize,
        out_rows: usize,
    ) -> Result<(), CoreError> {
        self.explain.naive_join_comparisons += left_rows as u64 * right_rows as u64;
        self.explain.intermediate_rows.push(out_rows);
        if let Some(limit) = self.options.max_intermediate_rows {
            if out_rows > limit {
                return Err(CoreError::ResourceExhausted(format!(
                    "intermediate join result of {out_rows} rows exceeds limit {limit}"
                )));
            }
        }
        Ok(())
    }
}

/// Layout-specific BGP evaluation, implemented by each engine.
pub trait BgpEvaluator {
    /// The dictionary encoding this evaluator's data.
    fn dict(&self) -> &Dictionary;

    /// Evaluates a non-empty BGP to a solution table whose columns are the
    /// BGP's variable names.
    fn eval_bgp(
        &self,
        bgp: &[TriplePattern],
        ctx: &mut ExecContext<'_>,
    ) -> Result<Table, CoreError>;
}
