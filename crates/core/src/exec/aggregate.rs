//! SPARQL 1.1 aggregation (GROUP BY + COUNT/SUM/AVG/MIN/MAX).
//!
//! The paper leaves "the additional features introduced in SPARQL 1.1,
//! e.g. subqueries and aggregations" as future work (§6.1); this module
//! implements the aggregation part. Grouping operates on the dictionary-id
//! binding table produced by pattern evaluation; aggregate values are
//! computed over decoded terms and returned directly as fresh terms (they
//! need not exist in the dictionary), so the output is a decoded
//! [`Solutions`].

use std::cmp::Ordering;

use rustc_hash::{FxHashMap, FxHashSet};

use s2rdf_columnar::{Table, NULL_ID};
use s2rdf_model::Term;
use s2rdf_sparql::{AggFunc, Query, SelectItem, Selection};

use crate::error::CoreError;

use super::{ExecContext, Solutions};

/// Integer datatype used for counts and integral sums.
const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// Decimal datatype used for fractional sums and averages.
const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";

/// Applies grouping + aggregation to a solution table, producing the final
/// decoded solutions (before ORDER BY/DISTINCT/LIMIT, which the caller
/// applies on the decoded form).
pub fn aggregate_table(
    table: &Table,
    query: &Query,
    ctx: &ExecContext<'_>,
) -> Result<Solutions, CoreError> {
    let items: Vec<SelectItem> = match &query.selection {
        Selection::Items(items) => items.clone(),
        // `SELECT ?x WHERE {…} GROUP BY ?x` without aggregates.
        Selection::Vars(vars) => vars.iter().cloned().map(SelectItem::Var).collect(),
        Selection::All => {
            return Err(CoreError::Unsupported(
                "SELECT * cannot be combined with GROUP BY/aggregates".into(),
            ))
        }
    };
    // Plain projected variables must be group keys (SPARQL 1.1 rule).
    for item in &items {
        if let SelectItem::Var(v) = item {
            if !query.group_by.contains(v) {
                return Err(CoreError::Unsupported(format!(
                    "?{v} is projected but not in GROUP BY"
                )));
            }
        }
    }

    // Group row indices by the GROUP BY key (empty key = single group).
    let key_cols: Vec<Option<usize>> = query
        .group_by
        .iter()
        .map(|v| table.schema().index_of(v))
        .collect();
    let mut order: Vec<Vec<u32>> = Vec::new();
    let mut groups: FxHashMap<Vec<u32>, Vec<usize>> = FxHashMap::default();
    for row in 0..table.num_rows() {
        let key: Vec<u32> = key_cols
            .iter()
            .map(|c| c.map_or(NULL_ID, |c| table.value(row, c)))
            .collect();
        match groups.entry(key.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(key);
                e.insert(vec![row]);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(row),
        }
    }
    if query.group_by.is_empty() && order.is_empty() {
        // Aggregates over the empty solution sequence produce one row
        // (e.g. COUNT(*) = 0).
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let decode = |id: u32| -> Option<&Term> { ctx.term_of(id) };

    let vars: Vec<String> = items
        .iter()
        .map(|item| match item {
            SelectItem::Var(v) => v.clone(),
            SelectItem::Aggregate { alias, .. } => alias.clone(),
        })
        .collect();
    let mut rows: Vec<Vec<Option<Term>>> = Vec::with_capacity(order.len());

    for key in &order {
        let members = &groups[key];
        let mut out_row: Vec<Option<Term>> = Vec::with_capacity(items.len());
        for item in &items {
            match item {
                SelectItem::Var(v) => {
                    let pos = query
                        .group_by
                        .iter()
                        .position(|g| g == v)
                        .expect("validated");
                    out_row.push(key.get(pos).and_then(|&id| decode(id)).cloned());
                }
                SelectItem::Aggregate {
                    func,
                    arg,
                    distinct,
                    alias: _,
                } => {
                    // Collect the group's argument values as terms.
                    let mut values: Vec<Term> = Vec::new();
                    for &row in members {
                        match arg {
                            None => values.push(Term::integer(1)), // COUNT(*)
                            Some(expr) => {
                                let lookup = |var: &str| -> Option<&Term> {
                                    let col = table.schema().index_of(var)?;
                                    decode(table.value(row, col))
                                };
                                if let Ok(value) = expr.eval(&lookup) {
                                    if let Some(term) = super::pattern::value_to_term(value) {
                                        values.push(term);
                                    }
                                }
                            }
                        }
                    }
                    if *distinct && arg.is_some() {
                        let mut seen: FxHashSet<Term> = FxHashSet::default();
                        values.retain(|t| seen.insert(t.clone()));
                    }
                    out_row.push(apply(*func, arg.is_none(), members.len(), &values));
                }
            }
        }
        rows.push(out_row);
    }
    Ok(Solutions { vars, rows })
}

/// Computes one aggregate over a group's values.
fn apply(func: AggFunc, count_star: bool, group_size: usize, values: &[Term]) -> Option<Term> {
    match func {
        AggFunc::Count => {
            let n = if count_star { group_size } else { values.len() };
            Some(Term::integer(n as i64))
        }
        AggFunc::Sum | AggFunc::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(Term::numeric_value).collect();
            if nums.len() != values.len() {
                // A non-numeric operand is a SPARQL aggregation error: the
                // alias stays unbound for this group.
                return None;
            }
            let sum: f64 = nums.iter().sum();
            match func {
                AggFunc::Sum => Some(number_term(sum)),
                AggFunc::Avg => {
                    if nums.is_empty() {
                        Some(Term::integer(0)) // Avg({}) = 0 per spec
                    } else {
                        Some(number_term(sum / nums.len() as f64))
                    }
                }
                _ => unreachable!(),
            }
        }
        AggFunc::Min => values.iter().min_by(|a, b| a.value_cmp(b)).cloned(),
        AggFunc::Max => values.iter().max_by(term_max_cmp).cloned(),
    }
}

/// `max_by` keeps the *last* maximal element; compare such that ties keep
/// the first for determinism.
fn term_max_cmp(a: &&Term, b: &&Term) -> Ordering {
    match a.value_cmp(b) {
        Ordering::Equal => Ordering::Greater,
        other => other,
    }
}

fn number_term(n: f64) -> Term {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        Term::typed_literal(format!("{}", n as i64), XSD_INTEGER)
    } else {
        Term::typed_literal(format!("{n}"), XSD_DECIMAL)
    }
}

/// Post-aggregation solution modifiers: ORDER BY (over output columns),
/// DISTINCT, OFFSET/LIMIT — applied to the decoded rows.
pub fn apply_modifiers(solutions: &mut Solutions, query: &Query) {
    if !query.order_by.is_empty() {
        let vars = solutions.vars.clone();
        solutions.rows.sort_by(|a, b| {
            for cond in &query.order_by {
                let lookup_in = |row: &Vec<Option<Term>>, v: &str| -> Option<Term> {
                    let i = vars.iter().position(|x| x == v)?;
                    row.get(i).cloned().flatten()
                };
                let (ka, kb) = match &cond.expr {
                    s2rdf_sparql::Expression::Var(v) => (lookup_in(a, v), lookup_in(b, v)),
                    expr => {
                        let eval = |row: &Vec<Option<Term>>| -> Option<Term> {
                            let lookup = |v: &str| -> Option<&Term> {
                                let i = vars.iter().position(|x| x == v)?;
                                row.get(i)?.as_ref()
                            };
                            expr.eval(&lookup)
                                .ok()
                                .and_then(super::pattern::value_to_term)
                        };
                        (eval(a), eval(b))
                    }
                };
                let ord = match (&ka, &kb) {
                    (None, None) => Ordering::Equal,
                    (None, Some(_)) => Ordering::Less,
                    (Some(_), None) => Ordering::Greater,
                    (Some(x), Some(y)) => x.value_cmp(y),
                };
                let ord = if cond.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    if query.distinct {
        let mut seen: FxHashSet<String> = FxHashSet::default();
        solutions.rows.retain(|row| {
            let key = row
                .iter()
                .map(|t| t.as_ref().map_or("∅".to_string(), Term::to_string))
                .collect::<Vec<_>>()
                .join("\u{1}");
            seen.insert(key)
        });
    }
    let offset = query.offset.unwrap_or(0);
    if offset > 0 {
        solutions.rows.drain(..offset.min(solutions.rows.len()));
    }
    if let Some(limit) = query.limit {
        solutions.rows.truncate(limit);
    }
}

#[cfg(test)]
mod tests {
    use crate::store::{BuildOptions, S2rdfStore};
    use s2rdf_model::{Graph, Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn num(s: &str, p: &str, n: i64) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::integer(n))
    }

    fn store() -> S2rdfStore {
        S2rdfStore::build(
            &Graph::from_triples([
                t("A", "follows", "B"),
                t("B", "follows", "C"),
                t("B", "follows", "D"),
                t("C", "follows", "D"),
                t("A", "likes", "I1"),
                t("A", "likes", "I2"),
                t("C", "likes", "I2"),
                num("A", "age", 30),
                num("B", "age", 20),
                num("C", "age", 40),
            ]),
            &BuildOptions::default(),
        )
    }

    #[test]
    fn count_star_single_group() {
        let s = store()
            .query("SELECT (COUNT(*) AS ?n) WHERE { ?a <follows> ?b }")
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "n"), Some(&Term::integer(4)));
    }

    #[test]
    fn group_by_with_count() {
        let s = store()
            .query(
                "SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a <follows> ?b }
                 GROUP BY ?a ORDER BY DESC(?n) ?a",
            )
            .unwrap();
        assert_eq!(s.len(), 3);
        // B follows two people; A and C one each.
        assert_eq!(s.binding(0, "a"), Some(&Term::iri("B")));
        assert_eq!(s.binding(0, "n"), Some(&Term::integer(2)));
        assert_eq!(s.binding(1, "n"), Some(&Term::integer(1)));
    }

    #[test]
    fn count_distinct() {
        let s = store()
            .query("SELECT (COUNT(DISTINCT ?w) AS ?n) WHERE { ?u <likes> ?w }")
            .unwrap();
        assert_eq!(s.binding(0, "n"), Some(&Term::integer(2))); // I1, I2

        let s = store()
            .query("SELECT (COUNT(?w) AS ?n) WHERE { ?u <likes> ?w }")
            .unwrap();
        assert_eq!(s.binding(0, "n"), Some(&Term::integer(3)));
    }

    #[test]
    fn sum_avg_min_max() {
        let s = store()
            .query(
                "SELECT (SUM(?v) AS ?sum) (AVG(?v) AS ?avg) (MIN(?v) AS ?min) (MAX(?v) AS ?max)
                 WHERE { ?u <age> ?v }",
            )
            .unwrap();
        assert_eq!(s.binding(0, "sum").unwrap().numeric_value(), Some(90.0));
        assert_eq!(s.binding(0, "avg").unwrap().numeric_value(), Some(30.0));
        assert_eq!(s.binding(0, "min"), Some(&Term::integer(20)));
        assert_eq!(s.binding(0, "max"), Some(&Term::integer(40)));
    }

    #[test]
    fn aggregate_over_empty_group() {
        let s = store()
            .query("SELECT (COUNT(*) AS ?n) WHERE { ?a <follows> <Nobody> }")
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "n"), Some(&Term::integer(0)));
    }

    #[test]
    fn sum_of_non_numeric_is_unbound() {
        let s = store()
            .query("SELECT (SUM(?b) AS ?sum) WHERE { ?a <follows> ?b }")
            .unwrap();
        assert_eq!(s.binding(0, "sum"), None);
    }

    #[test]
    fn arithmetic_inside_aggregate() {
        let s = store()
            .query("SELECT (SUM(?v * 2) AS ?sum) WHERE { ?u <age> ?v }")
            .unwrap();
        assert_eq!(s.binding(0, "sum").unwrap().numeric_value(), Some(180.0));
    }

    #[test]
    fn limit_and_offset_after_grouping() {
        let s = store()
            .query(
                "SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a <follows> ?b }
                 GROUP BY ?a ORDER BY ?a LIMIT 1 OFFSET 1",
            )
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "a"), Some(&Term::iri("B")));
    }

    #[test]
    fn projecting_non_key_is_an_error() {
        let err = store()
            .query("SELECT ?b (COUNT(?a) AS ?n) WHERE { ?a <follows> ?b } GROUP BY ?a")
            .unwrap_err();
        assert!(matches!(err, crate::CoreError::Unsupported(_)));
    }

    #[test]
    fn group_by_without_aggregates() {
        let s = store()
            .query("SELECT ?a WHERE { ?a <follows> ?b } GROUP BY ?a ORDER BY ?a")
            .unwrap();
        assert_eq!(s.len(), 3); // one row per group
    }

    #[test]
    fn aggregates_work_on_all_engines() {
        use crate::engines::triples_table::TriplesTableEngine;
        use crate::engines::SparqlEngine;
        let g = Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
        ]);
        let q = "SELECT ?a (COUNT(*) AS ?n) WHERE { ?a <follows> ?b } GROUP BY ?a ORDER BY ?a";
        let store = S2rdfStore::build(&g, &BuildOptions::default());
        let tt = TriplesTableEngine::new(&g);
        assert_eq!(
            store.query(q).unwrap().canonical(),
            tt.query(q).unwrap().canonical()
        );
    }
}
