//! Per-query span tracing: the shared-memory analogue of Spark's UI stage
//! timeline.
//!
//! A [`Trace`] is an arena of spans forming a tree that mirrors the algebra
//! evaluation: the root `query` span contains pattern-operator spans
//! (`join`, `left_join`, `union`, `filter`, …), which contain the engine's
//! per-step `scan`/`join` spans. Each span records wall time, output rows
//! and a free-form detail string (input sizes, table-selection rationale).
//!
//! Tracing is opt-in per query ([`super::QueryOptions::profile`]); when off,
//! [`super::ExecContext::span_open`] returns a sentinel and costs one
//! branch. Unlike the global [`s2rdf_columnar::metrics`] registry, which
//! accumulates across queries, a `Trace` is scoped to a single execution
//! and travels with the query's [`super::Explain`].

use std::fmt::Write as _;
use std::time::Instant;

use s2rdf_columnar::metrics::json_escape;

/// Handle to an open span. [`SpanId::NONE`] is returned when tracing is
/// disabled; closing it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    /// The disabled-tracing sentinel.
    pub const NONE: SpanId = SpanId(usize::MAX);
}

/// One node of the span tree.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// Operator label (`query`, `join`, `scan`, …).
    pub label: String,
    /// Detail set when the span closes: input row counts, chosen table,
    /// selection rationale.
    pub detail: String,
    /// Output cardinality, if the operator produces rows.
    pub rows_out: Option<usize>,
    /// Wall time between open and close.
    pub wall_micros: u64,
    /// Child span indices, in open order.
    pub children: Vec<usize>,
    /// Whether the span was closed (spans abandoned by an error unwind
    /// render as unclosed).
    pub closed: bool,
    started: Instant,
}

/// A tree of timed spans collected during one query execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    nodes: Vec<TraceNode>,
    /// Open-span stack; new spans attach to the innermost open span.
    stack: Vec<usize>,
    /// Indices of root spans (normally exactly one `query` span).
    roots: Vec<usize>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Opens a span under the innermost open span.
    pub fn open(&mut self, label: &str) -> SpanId {
        let id = self.nodes.len();
        self.nodes.push(TraceNode {
            label: label.to_string(),
            detail: String::new(),
            rows_out: None,
            wall_micros: 0,
            children: Vec::new(),
            closed: false,
            started: Instant::now(),
        });
        match self.stack.last() {
            Some(&parent) => self.nodes[parent].children.push(id),
            None => self.roots.push(id),
        }
        self.stack.push(id);
        SpanId(id)
    }

    /// Closes a span, recording its detail and output cardinality. Also
    /// closes (abandons) any spans opened after it that were never closed,
    /// so an error unwind cannot corrupt the stack.
    pub fn close(&mut self, id: SpanId, detail: String, rows_out: Option<usize>) {
        if id == SpanId::NONE {
            return;
        }
        while let Some(top) = self.stack.pop() {
            if top == id.0 {
                break;
            }
            // Abandoned inner span: record its elapsed time as-is.
            self.nodes[top].wall_micros = self.nodes[top].started.elapsed().as_micros() as u64;
        }
        let node = &mut self.nodes[id.0];
        node.wall_micros = node.started.elapsed().as_micros() as u64;
        node.detail = detail;
        node.rows_out = rows_out;
        node.closed = true;
    }

    /// All nodes, in open order (parents before children).
    pub fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    /// Total wall time of the root spans.
    pub fn total_micros(&self) -> u64 {
        self.roots.iter().map(|&r| self.nodes[r].wall_micros).sum()
    }

    /// Renders the span tree as indented ASCII, one span per line:
    ///
    /// ```text
    /// query                          1234 µs → 42 rows
    /// ├─ join                         900 µs → 42 rows  left=10 right=99
    /// │  ├─ scan                       12 µs → 10 rows  ExtVP_SS/…
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &root in &self.roots {
            self.render_node(root, "", true, true, &mut out);
        }
        out
    }

    fn render_node(&self, id: usize, prefix: &str, last: bool, root: bool, out: &mut String) {
        let node = &self.nodes[id];
        let connector = if root {
            String::new()
        } else if last {
            format!("{prefix}└─ ")
        } else {
            format!("{prefix}├─ ")
        };
        let rows = match node.rows_out {
            Some(n) => format!(" → {n} rows"),
            None => String::new(),
        };
        let detail = if node.detail.is_empty() {
            String::new()
        } else {
            format!("  [{}]", node.detail)
        };
        let open = if node.closed { "" } else { "  (unclosed)" };
        let _ = writeln!(
            out,
            "{connector}{:<12} {:>9} µs{rows}{detail}{open}",
            node.label, node.wall_micros
        );
        let child_prefix = if root {
            String::new()
        } else if last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        for (i, &c) in node.children.iter().enumerate() {
            self.render_node(c, &child_prefix, i + 1 == node.children.len(), false, out);
        }
    }

    /// Serializes the span tree as nested JSON (zero-dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, &root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.json_node(root, &mut out);
        }
        out.push(']');
        out
    }

    fn json_node(&self, id: usize, out: &mut String) {
        let node = &self.nodes[id];
        let _ = write!(
            out,
            "{{\"label\": \"{}\", \"wall_micros\": {}, \"detail\": \"{}\"",
            json_escape(&node.label),
            node.wall_micros,
            json_escape(&node.detail)
        );
        if let Some(rows) = node.rows_out {
            let _ = write!(out, ", \"rows_out\": {rows}");
        }
        out.push_str(", \"children\": [");
        for (i, &c) in node.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.json_node(c, out);
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_render() {
        let mut t = Trace::new();
        let q = t.open("query");
        let j = t.open("join");
        let s = t.open("scan");
        t.close(s, "VP/<p>".into(), Some(10));
        t.close(j, "left=10 right=3".into(), Some(5));
        t.close(q, String::new(), Some(5));

        assert_eq!(t.nodes().len(), 3);
        let rendered = t.render();
        assert!(rendered.contains("query"), "{rendered}");
        assert!(rendered.contains("└─ join"), "{rendered}");
        assert!(rendered.contains("scan"), "{rendered}");
        assert!(rendered.contains("→ 5 rows"), "{rendered}");
        assert!(!rendered.contains("unclosed"), "{rendered}");

        let json = t.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"label\": \"join\""));
        assert!(json.contains("\"rows_out\": 10"));
    }

    #[test]
    fn error_unwind_abandons_inner_spans() {
        let mut t = Trace::new();
        let q = t.open("query");
        let _inner = t.open("join"); // never closed: simulated `?` unwind
        t.close(q, String::new(), None);
        assert!(t.render().contains("(unclosed)"));
        // Stack is empty again; a new root span works.
        let r = t.open("query2");
        t.close(r, String::new(), None);
        assert_eq!(t.nodes().len(), 3);
    }

    #[test]
    fn none_span_is_ignored() {
        let mut t = Trace::new();
        t.close(SpanId::NONE, "x".into(), Some(1));
        assert!(t.nodes().is_empty());
        assert_eq!(t.total_micros(), 0);
    }
}
