//! Property-path evaluation as an iterative fixpoint over ExtVP tables.
//!
//! S2RDF's Spark incarnation would evaluate `p+`/`p*` as an iterative
//! sequence of semi-join jobs, each joining the previous iteration's delta
//! against the predicate's VP/ExtVP table and unioning new pairs into the
//! accumulator until no new pair appears. This module is the single-machine
//! analogue: base edges come from the engine's own [`BgpEvaluator`] (so the
//! ExtVP/VP table choice, the triples-table fallback, and the morsel pool
//! are all reused), the per-iteration join runs through
//! [`natural_join_adaptive`] on the worker pool, and dedup is dictionary-id
//! based (a packed-u64 set for pair relations, a [`Bitmap`] over the id
//! space for bound-endpoint BFS). Cycles terminate because the visited set
//! grows monotonically and the id space is finite.
//!
//! Per-iteration delta sizes are recorded in
//! [`PathStepExplain`](super::PathStepExplain) so `--explain` can show the
//! fixpoint converging, mirroring how one would read the stage list of the
//! iterative Spark job.
//!
//! Path results are sets of endpoint pairs (duplicates eliminated), which
//! matches the SPARQL 1.1 arbitrary-length path semantics; fixed-length
//! sub-paths inherit the set semantics, a simplification over the spec's
//! bag semantics for `/` and `|` that keeps the fixpoint monotone.

use rustc_hash::{FxHashMap, FxHashSet};
use s2rdf_columnar::exec::natural_join_adaptive;
use s2rdf_columnar::{Bitmap, Schema, Table};
use s2rdf_model::Term;
use s2rdf_sparql::{PropertyPath, TermPattern, TriplePattern};

use crate::error::CoreError;

use super::pattern::UNIT_COL;
use super::{BgpEvaluator, ExecContext, PathStepExplain};

/// Internal column names for path endpoints. The `#` prefix keeps them out
/// of user-visible projections (decode skips `#` columns).
const SRC: &str = "#path_s";
const MID: &str = "#path_m";
const DST: &str = "#path_o";

fn pack(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

fn dedup_pairs(pairs: &mut Vec<(u32, u32)>) {
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(pairs.len());
    pairs.retain(|&(a, b)| seen.insert(pack(a, b)));
}

/// Path evaluation state: the engine, the execution context, and a lazily
/// computed node domain (all subjects ∪ objects of the graph) used for
/// zero-length path steps.
struct PathEval<'e, 'c, 'a> {
    ev: &'e dyn BgpEvaluator,
    ctx: &'c mut ExecContext<'a>,
    nodes: Option<Vec<u32>>,
    /// Rows produced per fixpoint iteration, across all closure/BFS steps
    /// of this path expression (iteration 0 of a closure is its base-edge
    /// count).
    iterations: Vec<usize>,
}

impl PathEval<'_, '_, '_> {
    /// All node ids of the graph (subjects ∪ objects), computed once from a
    /// `?s ?p ?o` scan via the engine itself. This is the domain of the
    /// zero-length path: `p?`/`p*` relate every graph node to itself.
    fn nodes(&mut self) -> Result<&[u32], CoreError> {
        if self.nodes.is_none() {
            let tp = TriplePattern::new(
                TermPattern::Var(SRC.to_string()),
                TermPattern::Var(MID.to_string()),
                TermPattern::Var(DST.to_string()),
            );
            let table = self.ev.eval_bgp(&[tp], self.ctx)?;
            let si = table.schema().index_of(SRC).expect("subject column");
            let oi = table.schema().index_of(DST).expect("object column");
            let mut set: FxHashSet<u32> = FxHashSet::default();
            set.extend(table.column(si).iter().copied());
            set.extend(table.column(oi).iter().copied());
            let mut nodes: Vec<u32> = set.into_iter().collect();
            nodes.sort_unstable();
            self.nodes = Some(nodes);
        }
        Ok(self.nodes.as_deref().unwrap())
    }

    /// Base edge pairs for one predicate, from the engine's own BGP
    /// evaluator (which picks the VP/ExtVP table or the triples-table
    /// fallback exactly as it would for a plain triple pattern).
    fn base_edges(&mut self, pred: &Term) -> Result<Vec<(u32, u32)>, CoreError> {
        let tp = TriplePattern::new(
            TermPattern::Var(SRC.to_string()),
            TermPattern::Term(pred.clone()),
            TermPattern::Var(DST.to_string()),
        );
        let table = self.ev.eval_bgp(&[tp], self.ctx)?;
        let si = table.schema().index_of(SRC).expect("subject column");
        let oi = table.schema().index_of(DST).expect("object column");
        let mut pairs: Vec<(u32, u32)> = table
            .column(si)
            .iter()
            .zip(table.column(oi))
            .map(|(&a, &b)| (a, b))
            .collect();
        dedup_pairs(&mut pairs);
        Ok(pairs)
    }

    /// The pair relation denoted by `path`, fully materialized and deduped.
    fn rel(&mut self, path: &PropertyPath) -> Result<Vec<(u32, u32)>, CoreError> {
        self.ctx.check_deadline()?;
        match path {
            PropertyPath::Iri(pred) => self.base_edges(pred),
            PropertyPath::Inverse(inner) => {
                let mut pairs = self.rel(inner)?;
                for p in &mut pairs {
                    *p = (p.1, p.0);
                }
                Ok(pairs)
            }
            PropertyPath::Sequence(a, b) => {
                let ra = self.rel(a)?;
                let rb = self.rel(b)?;
                Ok(self.join_pairs(&ra, &rb))
            }
            PropertyPath::Alternative(a, b) => {
                let mut pairs = self.rel(a)?;
                pairs.extend(self.rel(b)?);
                dedup_pairs(&mut pairs);
                Ok(pairs)
            }
            PropertyPath::ZeroOrOne(inner) => {
                let mut pairs = self.rel(inner)?;
                for &n in self.nodes()? {
                    pairs.push((n, n));
                }
                dedup_pairs(&mut pairs);
                Ok(pairs)
            }
            PropertyPath::OneOrMore(inner) => {
                let base = self.rel(inner)?;
                self.closure(&base)
            }
            PropertyPath::ZeroOrMore(inner) => {
                let base = self.rel(inner)?;
                let mut pairs = self.closure(&base)?;
                for &n in self.nodes()? {
                    pairs.push((n, n));
                }
                dedup_pairs(&mut pairs);
                Ok(pairs)
            }
        }
    }

    /// Joins two pair relations on the middle element (`a.1 == b.0`) via
    /// the adaptive pool-backed hash join, deduped.
    fn join_pairs(&mut self, a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let left = pairs_to_table(a, SRC, MID);
        let right = pairs_to_table(b, MID, DST);
        let (joined, _) = natural_join_adaptive(&left, &right, &self.ctx.options.join);
        let si = joined.schema().index_of(SRC).unwrap();
        let oi = joined.schema().index_of(DST).unwrap();
        let mut pairs: Vec<(u32, u32)> = joined
            .column(si)
            .iter()
            .zip(joined.column(oi))
            .map(|(&x, &y)| (x, y))
            .collect();
        dedup_pairs(&mut pairs);
        pairs
    }

    /// Transitive closure of `base` by delta-set iteration: each round
    /// joins the newly discovered pairs against the base edges on the
    /// worker pool, keeps the pairs never seen before (packed-u64 dedup),
    /// and stops when an iteration adds nothing. Terminates on cyclic
    /// graphs because `seen` grows monotonically within a finite id space.
    fn closure(&mut self, base: &[(u32, u32)]) -> Result<Vec<(u32, u32)>, CoreError> {
        let mut seen: FxHashSet<u64> = base.iter().map(|&(a, b)| pack(a, b)).collect();
        let mut result: Vec<(u32, u32)> = base.to_vec();
        let mut delta: Vec<(u32, u32)> = base.to_vec();
        self.iterations.push(delta.len());
        let edges = pairs_to_table(base, MID, DST);
        while !delta.is_empty() {
            self.ctx.check_deadline()?;
            let dt = pairs_to_table(&delta, SRC, MID);
            let (joined, _) = natural_join_adaptive(&dt, &edges, &self.ctx.options.join);
            let si = joined.schema().index_of(SRC).unwrap();
            let oi = joined.schema().index_of(DST).unwrap();
            let mut next: Vec<(u32, u32)> = Vec::new();
            for (&x, &y) in joined.column(si).iter().zip(joined.column(oi)) {
                if seen.insert(pack(x, y)) {
                    next.push((x, y));
                    result.push((x, y));
                }
            }
            if next.is_empty() {
                break;
            }
            self.iterations.push(next.len());
            delta = next;
        }
        Ok(result)
    }

    /// Reachability BFS from a single bound endpoint over the relation of
    /// `inner`, with a [`Bitmap`] over the dictionary-id space as the
    /// visited set. Returns every node reachable via ≥1 application of
    /// `inner`, plus the start itself when `include_zero` (the SPARQL ALP
    /// procedure includes the start node for `*` even when it is absent
    /// from the graph).
    fn bfs(
        &mut self,
        inner: &PropertyPath,
        start: u32,
        include_zero: bool,
    ) -> Result<Vec<u32>, CoreError> {
        let edges = self.rel(inner)?;
        let mut adj: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut max_id = start;
        for &(a, b) in &edges {
            adj.entry(a).or_default().push(b);
            max_id = max_id.max(a).max(b);
        }
        let mut visited = Bitmap::new(max_id as usize + 1);
        let mut frontier = vec![start];
        loop {
            self.ctx.check_deadline()?;
            let mut next = Vec::new();
            for &n in &frontier {
                if let Some(succ) = adj.get(&n) {
                    for &m in succ {
                        if !visited.get(m as usize) {
                            visited.set(m as usize);
                            next.push(m);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            self.iterations.push(next.len());
            frontier = next;
        }
        let mut reached: Vec<u32> = visited.iter_ones().map(|i| i as u32).collect();
        if include_zero && !visited.get(start as usize) {
            reached.push(start);
        }
        Ok(reached)
    }
}

fn pairs_to_table(pairs: &[(u32, u32)], a: &str, b: &str) -> Table {
    let ca: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    let cb: Vec<u32> = pairs.iter().map(|p| p.1).collect();
    Table::from_columns(Schema::new([a, b]), vec![ca, cb])
}

/// Evaluates `subject path object` to a solution table.
///
/// Strategy selection:
/// - a top-level `p*`/`p+` with a bound endpoint runs a **BFS** from that
///   endpoint (`forward-bfs` from the subject, `backward-bfs` from the
///   object over the inverted relation) — the semi-join-reduction analogue:
///   only reachable nodes are ever touched;
/// - a top-level `p*`/`p+` with both endpoints variable materializes the
///   **closure** by delta-set iteration;
/// - everything else materializes the path **relation** compositionally
///   (nested closures still iterate) and filters by the bound endpoints.
pub fn eval_path(
    ev: &dyn BgpEvaluator,
    subject: &TermPattern,
    path: &PropertyPath,
    object: &TermPattern,
    ctx: &mut ExecContext<'_>,
) -> Result<Table, CoreError> {
    let s_id = match subject {
        TermPattern::Term(t) => Some(ctx.intern_term(t)),
        TermPattern::Var(_) => None,
    };
    let o_id = match object {
        TermPattern::Term(t) => Some(ctx.intern_term(t)),
        TermPattern::Var(_) => None,
    };

    let mut pe = PathEval {
        ev,
        ctx,
        nodes: None,
        iterations: Vec::new(),
    };

    let (mode, mut pairs): (&str, Vec<(u32, u32)>) = match (s_id, o_id, path) {
        (Some(s), _, PropertyPath::ZeroOrMore(inner) | PropertyPath::OneOrMore(inner)) => {
            let zero = matches!(path, PropertyPath::ZeroOrMore(_));
            let reached = pe.bfs(inner, s, zero)?;
            ("forward-bfs", reached.into_iter().map(|n| (s, n)).collect())
        }
        (None, Some(o), PropertyPath::ZeroOrMore(inner) | PropertyPath::OneOrMore(inner)) => {
            let zero = matches!(path, PropertyPath::ZeroOrMore(_));
            let inverted = PropertyPath::Inverse(Box::new(inner.as_ref().clone()));
            let reached = pe.bfs(&inverted, o, zero)?;
            (
                "backward-bfs",
                reached.into_iter().map(|n| (n, o)).collect(),
            )
        }
        (None, None, PropertyPath::ZeroOrMore(_) | PropertyPath::OneOrMore(_)) => {
            ("closure", pe.rel(path)?)
        }
        _ => {
            let mut pairs = pe.rel(path)?;
            // A zero-length step must relate a bound endpoint to itself
            // even when that term never appears in the graph (the node
            // domain only covers graph terms).
            if path.allows_zero_length() {
                if let Some(s) = s_id {
                    pairs.push((s, s));
                }
                if let Some(o) = o_id {
                    pairs.push((o, o));
                }
                dedup_pairs(&mut pairs);
            }
            ("relation", pairs)
        }
    };
    let iterations = std::mem::take(&mut pe.iterations);

    if let Some(s) = s_id {
        pairs.retain(|p| p.0 == s);
    }
    if let Some(o) = o_id {
        pairs.retain(|p| p.1 == o);
    }

    let table = match (subject, object) {
        (TermPattern::Var(sv), TermPattern::Var(ov)) if sv == ov => {
            let col: Vec<u32> = pairs.iter().filter(|p| p.0 == p.1).map(|p| p.0).collect();
            Table::from_columns(Schema::new([sv.as_str()]), vec![col])
        }
        (TermPattern::Var(sv), TermPattern::Var(ov)) => {
            let ca: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let cb: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            Table::from_columns(Schema::new([sv.as_str(), ov.as_str()]), vec![ca, cb])
        }
        (TermPattern::Var(sv), TermPattern::Term(_)) => {
            let col: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            Table::from_columns(Schema::new([sv.as_str()]), vec![col])
        }
        (TermPattern::Term(_), TermPattern::Var(ov)) => {
            let col: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            Table::from_columns(Schema::new([ov.as_str()]), vec![col])
        }
        (TermPattern::Term(_), TermPattern::Term(_)) => {
            Table::from_columns(Schema::new([UNIT_COL]), vec![vec![0; pairs.len()]])
        }
    };

    ctx.explain.path_steps.push(PathStepExplain {
        path: path.to_string(),
        mode: mode.to_string(),
        iteration_rows: iterations,
        total_rows: table.num_rows(),
    });
    Ok(table)
}

#[cfg(test)]
mod tests {
    use crate::engines::{QueryResult, SparqlEngine};
    use crate::store::{BuildOptions, S2rdfStore};
    use s2rdf_model::{Graph, Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// A → B → C → A cycle plus a tail D, and a `likes` edge off B.
    fn store() -> S2rdfStore {
        S2rdfStore::build(
            &Graph::from_triples([
                t("A", "follows", "B"),
                t("B", "follows", "C"),
                t("C", "follows", "A"),
                t("C", "follows", "D"),
                t("B", "likes", "I1"),
            ]),
            &BuildOptions::default(),
        )
    }

    #[test]
    fn one_or_more_terminates_on_cycle() {
        let s = store()
            .query("SELECT ?x ?y WHERE { ?x <follows>+ ?y }")
            .unwrap();
        // Closure of the 4 edges: every node of the cycle reaches A, B, C,
        // and D (4 each = 12), D reaches nothing.
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn zero_or_more_from_bound_subject() {
        let s = store()
            .query("SELECT ?y WHERE { <B> <follows>* ?y }")
            .unwrap();
        // B itself (zero length) plus C, A, D.
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn zero_or_more_includes_non_graph_start() {
        // The start term never appears in the graph: `*` still relates it
        // to itself (SPARQL ALP semantics).
        let s = store()
            .query("SELECT ?y WHERE { <Ghost> <follows>* ?y }")
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "y"), Some(&Term::iri("Ghost")));
    }

    #[test]
    fn one_or_more_bound_subject_excludes_start_without_cycle() {
        let s = store()
            .query("SELECT ?y WHERE { <D> <follows>+ ?y }")
            .unwrap();
        assert_eq!(s.len(), 0);
        // But a start on the cycle reaches itself via the cycle.
        let s = store()
            .query("SELECT ?y WHERE { <A> <follows>+ ?y } ORDER BY ?y")
            .unwrap();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn backward_bfs_from_bound_object() {
        let s = store()
            .query("SELECT ?x WHERE { ?x <follows>+ <D> }")
            .unwrap();
        assert_eq!(s.len(), 3); // A, B, C all reach D
    }

    #[test]
    fn sequence_alternative_inverse() {
        let s = store()
            .query("SELECT ?x WHERE { ?x <follows>/<likes> ?y }")
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.binding(0, "x"), Some(&Term::iri("A")));

        let s = store()
            .query("SELECT ?x ?y WHERE { ?x <likes>|^<follows> ?y }")
            .unwrap();
        // likes: (B, I1); inverse follows: 4 edges reversed.
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn zero_or_one_relates_every_node_to_itself() {
        let s = store()
            .query("SELECT ?x ?y WHERE { ?x <likes>? ?y }")
            .unwrap();
        // Identity pairs for the 5 nodes (A, B, C, D, I1) plus the
        // (B, I1) edge.
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn same_variable_both_ends_finds_cycle_members() {
        let s = store()
            .query("SELECT ?x WHERE { ?x <follows>+ ?x }")
            .unwrap();
        assert_eq!(s.len(), 3); // A, B, C are on the cycle; D is not
    }

    #[test]
    fn both_ends_bound() {
        let r = store().query_result("ASK { <A> <follows>+ <D> }").unwrap();
        assert_eq!(r, QueryResult::Bool(true));
        let r = store().query_result("ASK { <D> <follows>+ <A> }").unwrap();
        assert_eq!(r, QueryResult::Bool(false));
    }

    #[test]
    fn explain_records_fixpoint_iterations() {
        let (_, explain) = store()
            .engine(true)
            .query_opt(
                "SELECT ?x ?y WHERE { ?x <follows>+ ?y }",
                &crate::exec::QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(explain.path_steps.len(), 1);
        let step = &explain.path_steps[0];
        assert_eq!(step.mode, "closure");
        assert!(step.iteration_rows.len() >= 2, "{:?}", step.iteration_rows);
        assert_eq!(step.iteration_rows[0], 4); // base edges
        assert_eq!(step.total_rows, 12);
    }

    #[test]
    fn path_joins_with_bgp() {
        let s = store()
            .query("SELECT ?x ?w WHERE { ?x <follows>+ ?y . ?y <likes> ?w }")
            .unwrap();
        // ?y must be B: reachable from A (A→B) and from the cycle members.
        // Predecessors of B via + : A, C, B (cycle) — 3 rows.
        assert_eq!(s.len(), 3);
    }
}
