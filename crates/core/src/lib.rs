//! S2RDF in Rust: ExtVP partitioning and statistics-driven SPARQL execution.
//!
//! This crate implements the contribution of *"S2RDF: RDF Querying with
//! SPARQL on Spark"* (VLDB 2016):
//!
//! * [`layout`] — relational layouts for RDF: the triples table (§4.1),
//!   vertical partitioning (§4.2), property tables (§4.3), and **ExtVP**,
//!   the semi-join-reduced extension of VP that is the paper's core idea
//!   (§5),
//! * [`catalog`] — the selectivity statistics collected at load time and
//!   consulted during compilation (§6.1),
//! * [`compiler`] — table selection (Alg. 1), triple-pattern mapping
//!   (Alg. 2) and BGP compilation with join-order optimization
//!   (Alg. 3/4),
//! * [`exec`] — evaluation of the full SPARQL algebra over the columnar
//!   substrate, producing decoded [`exec::Solutions`],
//! * [`store`] — the persistent S2RDF database (VP + ExtVP + statistics),
//! * [`engines`] — the S2RDF engine plus the baseline/competitor engines
//!   used in the evaluation (triples table, property table / Sempala-style,
//!   MapReduce-style batch, centralized six-index store).
//!
//! # Quick start
//!
//! ```
//! use s2rdf_core::store::{BuildOptions, S2rdfStore};
//! use s2rdf_model::{Graph, Term, Triple};
//!
//! let mut graph = Graph::new();
//! graph.insert(&Triple::new(
//!     Term::iri("alice"), Term::iri("follows"), Term::iri("bob"),
//! ));
//! graph.insert(&Triple::new(
//!     Term::iri("bob"), Term::iri("likes"), Term::iri("rust"),
//! ));
//!
//! let store = S2rdfStore::build(&graph, &BuildOptions::default());
//! let solutions = store
//!     .query("SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?w }")
//!     .unwrap();
//! assert_eq!(solutions.len(), 1);
//! ```

pub mod catalog;
pub mod compiler;
pub mod engines;
pub mod error;
pub mod exec;
pub mod layout;
pub mod store;

pub use catalog::{Catalog, Correlation, ExtVpStat};
pub use engines::QueryResult;
pub use error::CoreError;
pub use exec::{DegradedStep, Explain, PathStepExplain, Solutions};
pub use layout::extvp::ExtVpMode;
pub use store::{BuildOptions, CheckpointReport, DeltaSummary, RepairReport, S2rdfStore};
