//! Selectivity statistics for VP and ExtVP tables (paper §6.1).
//!
//! S2RDF "collects statistics about all tables in ExtVP during the initial
//! creation process, most notably the selectivities (SF values) and actual
//! sizes" and "also stores statistics about empty tables (which do not
//! physically exist) as this empowers the query compiler to know that a
//! query has no results without actually running it".

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use s2rdf_model::TermId;

use crate::error::CoreError;

/// The correlation kinds between triple patterns (paper Fig. 9).
///
/// SS/OS/SO are precomputed by default; OO is the paper's deliberate
/// omission (§5.2: "relatively poor cost-benefit ratio … indeed, it is
/// only a design choice and we could precompute them just as well") and is
/// available behind [`crate::store::BuildOptions::include_oo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Correlation {
    /// subject-subject: `VP_p1 ⋉(s=s) VP_p2`
    SS,
    /// object-subject: `VP_p1 ⋉(o=s) VP_p2`
    OS,
    /// subject-object: `VP_p1 ⋉(s=o) VP_p2`
    SO,
    /// object-object: `VP_p1 ⋉(o=o) VP_p2` (optional).
    OO,
}

impl Correlation {
    /// The correlation kinds precomputed by default (paper §5.2).
    pub const DEFAULT: [Correlation; 3] = [Correlation::SS, Correlation::OS, Correlation::SO];

    /// Short name used in table names and reports.
    pub fn label(self) -> &'static str {
        match self {
            Correlation::SS => "SS",
            Correlation::OS => "OS",
            Correlation::SO => "SO",
            Correlation::OO => "OO",
        }
    }
}

/// Identifies one ExtVP partition: `ExtVP^corr_{p1|p2}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExtVpKey {
    /// Correlation kind.
    pub corr: Correlation,
    /// The reduced predicate (the table is a subset of `VP_p1`).
    pub p1: TermIdRepr,
    /// The reducing predicate.
    pub p2: TermIdRepr,
}

/// Serializable mirror of [`TermId`] (plain u32 for serde friendliness).
pub type TermIdRepr = u32;

impl ExtVpKey {
    /// Creates a key from term ids.
    pub fn new(corr: Correlation, p1: TermId, p2: TermId) -> ExtVpKey {
        ExtVpKey {
            corr,
            p1: p1.0,
            p2: p2.0,
        }
    }
}

/// Statistics for one ExtVP partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtVpStat {
    /// Number of tuples in the reduction.
    pub count: usize,
    /// Selectivity factor `SF = |ExtVP_p1|p2| / |VP_p1|` (paper §5.3).
    pub sf: f64,
    /// True if the table was materialized (i.e. `0 < SF` and `SF` within
    /// the threshold and `SF < 1`).
    pub materialized: bool,
}

/// The statistics catalog built while loading a dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    /// Total number of triples `n = |G|`.
    pub total_triples: usize,
    /// `|VP_p|` for every predicate in the dataset.
    vp_sizes: BTreeMap<TermIdRepr, usize>,
    /// Stats for every ExtVP partition with `count > 0`. Pairs that never
    /// co-occur are *absent*, which (when `extvp_built`) means `SF = 0`.
    /// (Serialized as an entry list: JSON maps need string keys.)
    #[serde(with = "extvp_entries")]
    extvp: BTreeMap<ExtVpKey, ExtVpStat>,
    /// Whether ExtVP statistics were computed at all. A pure-VP store has
    /// `false` here, and table selection must not infer emptiness.
    pub extvp_built: bool,
    /// Whether OO correlations were computed. When false, OO lookups
    /// return no statistic (absence must not read as emptiness).
    #[serde(default)]
    pub oo_built: bool,
    /// The ExtVP storage representation, persisted so a reloaded store
    /// resolves tables the same way: "rows", "bits" or "lazy".
    #[serde(default)]
    pub extvp_mode: String,
    /// The selectivity threshold `SF_TH` the store was built with
    /// (tables with `SF >= SF_TH` are not materialized; `1.0` keeps
    /// everything below SF=1, paper §5.3/7.4).
    pub threshold: f64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new(total_triples: usize, threshold: f64, extvp_built: bool) -> Catalog {
        Catalog {
            total_triples,
            vp_sizes: BTreeMap::new(),
            extvp: BTreeMap::new(),
            extvp_built,
            oo_built: false,
            extvp_mode: String::new(),
            threshold,
        }
    }

    /// Records the size of a VP table. Size 0 removes the entry: a
    /// predicate drained by deletes no longer occurs in the dataset, and
    /// the catalog (like the build path) only records occurring predicates.
    pub fn set_vp_size(&mut self, p: TermId, size: usize) {
        if size == 0 {
            self.vp_sizes.remove(&p.0);
            return;
        }
        self.vp_sizes.insert(p.0, size);
    }

    /// `|VP_p|`, or 0 if the predicate does not occur.
    pub fn vp_size(&self, p: TermId) -> usize {
        self.vp_sizes.get(&p.0).copied().unwrap_or(0)
    }

    /// All predicates with their VP sizes.
    pub fn vp_sizes(&self) -> impl Iterator<Item = (TermId, usize)> + '_ {
        self.vp_sizes.iter().map(|(&p, &n)| (TermId(p), n))
    }

    /// Number of distinct predicates.
    pub fn num_predicates(&self) -> usize {
        self.vp_sizes.len()
    }

    /// Records an ExtVP partition's statistics.
    ///
    /// A zero count *removes* the entry: the catalog's invariant is that
    /// empty reductions are represented by absence (when `extvp_built`),
    /// never stored — delta maintenance can drain a previously non-empty
    /// pair and must not leave a count-0 entry polluting
    /// [`Catalog::extvp_summary`]'s buckets.
    pub fn set_extvp(&mut self, key: ExtVpKey, count: usize, materialized: bool) {
        if count == 0 {
            self.extvp.remove(&key);
            return;
        }
        let vp = self.vp_sizes.get(&key.p1).copied().unwrap_or(0);
        let sf = if vp == 0 {
            0.0
        } else {
            count as f64 / vp as f64
        };
        self.extvp.insert(
            key,
            ExtVpStat {
                count,
                sf,
                materialized,
            },
        );
    }

    /// Looks up an ExtVP partition's statistics.
    ///
    /// When ExtVP was built, an absent entry means the reduction is empty
    /// (`SF = 0`), which is itself a statistic: the compiler can answer the
    /// query without running it (paper §6.1).
    pub fn extvp_stat(&self, key: &ExtVpKey) -> Option<ExtVpStat> {
        if !self.extvp_built {
            return None;
        }
        if key.corr == Correlation::OO && !self.oo_built {
            return None;
        }
        Some(self.extvp.get(key).copied().unwrap_or(ExtVpStat {
            count: 0,
            sf: 0.0,
            materialized: false,
        }))
    }

    /// Iterates all recorded (non-empty) ExtVP stats.
    pub fn extvp_stats(&self) -> impl Iterator<Item = (&ExtVpKey, &ExtVpStat)> {
        self.extvp.iter()
    }

    /// Summary counters used by the paper's Table 2 / Table 6: number of
    /// materialized ExtVP tables, tables with `SF = 1` (not stored), and
    /// total materialized ExtVP tuples.
    pub fn extvp_summary(&self) -> ExtVpSummary {
        let mut summary = ExtVpSummary::default();
        for stat in self.extvp.values() {
            if stat.materialized {
                summary.materialized_tables += 1;
                summary.materialized_tuples += stat.count;
            } else if stat.sf >= 1.0 {
                summary.sf_one_tables += 1;
            } else {
                summary.over_threshold_tables += 1;
                summary.over_threshold_tuples += stat.count;
            }
        }
        summary
    }

    /// Serializes the catalog to a JSON file, atomically (temp file in the
    /// same directory, fsync, rename) — a crash mid-checkpoint must never
    /// leave a half-written catalog behind.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        let json =
            serde_json::to_vec_pretty(self).map_err(|e| CoreError::Catalog(e.to_string()))?;
        let tmp = path.with_extension("json.tmp");
        let write = || -> std::io::Result<()> {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&json)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CoreError::Catalog(e.to_string())
        })
    }

    /// Loads a catalog from a JSON file.
    pub fn load(path: &Path) -> Result<Catalog, CoreError> {
        let data = std::fs::read(path).map_err(|e| CoreError::Catalog(e.to_string()))?;
        serde_json::from_slice(&data).map_err(|e| CoreError::Catalog(e.to_string()))
    }
}

/// Serializes the ExtVP stat map as a list of `(key, stat)` entries.
mod extvp_entries {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<ExtVpKey, ExtVpStat>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&ExtVpKey, &ExtVpStat)> = map.iter().collect();
        serde::Serialize::serialize(&entries, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<ExtVpKey, ExtVpStat>, D::Error> {
        let entries: Vec<(ExtVpKey, ExtVpStat)> = serde::Deserialize::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

/// Aggregate ExtVP accounting (paper Tables 2 & 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtVpSummary {
    /// Materialized tables (`0 < SF <` threshold).
    pub materialized_tables: usize,
    /// Tuples across materialized tables.
    pub materialized_tuples: usize,
    /// Tables that equal their VP table (`SF = 1`, never stored).
    pub sf_one_tables: usize,
    /// Non-empty tables skipped because `SF >=` threshold (but `< 1`).
    pub over_threshold_tables: usize,
    /// Tuples across skipped tables.
    pub over_threshold_tuples: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_computation() {
        let mut c = Catalog::new(100, 1.0, true);
        c.set_vp_size(TermId(1), 40);
        c.set_extvp(
            ExtVpKey::new(Correlation::OS, TermId(1), TermId(2)),
            10,
            true,
        );
        let stat = c
            .extvp_stat(&ExtVpKey::new(Correlation::OS, TermId(1), TermId(2)))
            .unwrap();
        assert_eq!(stat.count, 10);
        assert!((stat.sf - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absent_pair_means_empty_when_built() {
        let mut c = Catalog::new(100, 1.0, true);
        c.set_vp_size(TermId(1), 40);
        let stat = c
            .extvp_stat(&ExtVpKey::new(Correlation::SS, TermId(1), TermId(9)))
            .unwrap();
        assert_eq!(stat.count, 0);
        assert_eq!(stat.sf, 0.0);
        assert!(!stat.materialized);
    }

    #[test]
    fn no_stats_without_extvp() {
        let c = Catalog::new(100, 0.0, false);
        assert!(c
            .extvp_stat(&ExtVpKey::new(Correlation::SS, TermId(1), TermId(2)))
            .is_none());
    }

    #[test]
    fn oo_stats_gated_by_oo_built() {
        let mut c = Catalog::new(100, 1.0, true);
        c.set_vp_size(TermId(1), 10);
        let key = ExtVpKey::new(Correlation::OO, TermId(1), TermId(2));
        // Without oo_built, an absent OO pair is *unknown*, not empty.
        assert!(c.extvp_stat(&key).is_none());
        c.oo_built = true;
        assert_eq!(c.extvp_stat(&key).unwrap().count, 0);
        c.set_extvp(key, 4, true);
        assert_eq!(c.extvp_stat(&key).unwrap().count, 4);
    }

    #[test]
    fn summary_buckets() {
        let mut c = Catalog::new(100, 0.25, true);
        c.set_vp_size(TermId(1), 40);
        c.set_vp_size(TermId(2), 40);
        c.set_extvp(
            ExtVpKey::new(Correlation::SS, TermId(1), TermId(2)),
            5,
            true,
        );
        c.set_extvp(
            ExtVpKey::new(Correlation::OS, TermId(1), TermId(2)),
            40,
            false,
        ); // SF = 1
        c.set_extvp(
            ExtVpKey::new(Correlation::SO, TermId(1), TermId(2)),
            20,
            false,
        ); // over threshold
        let s = c.extvp_summary();
        assert_eq!(s.materialized_tables, 1);
        assert_eq!(s.materialized_tuples, 5);
        assert_eq!(s.sf_one_tables, 1);
        assert_eq!(s.over_threshold_tables, 1);
        assert_eq!(s.over_threshold_tuples, 20);
    }

    #[test]
    fn zero_count_removes_entry() {
        let mut c = Catalog::new(100, 1.0, true);
        c.set_vp_size(TermId(1), 40);
        let key = ExtVpKey::new(Correlation::OS, TermId(1), TermId(2));
        c.set_extvp(key, 10, true);
        assert_eq!(c.extvp_summary().materialized_tables, 1);
        // A delta drains the pair: the entry vanishes instead of lingering
        // as a count-0 row in a summary bucket.
        c.set_extvp(key, 0, false);
        assert_eq!(c.extvp_stats().count(), 0);
        assert_eq!(c.extvp_summary(), ExtVpSummary::default());
        // Absence still reads as SF = 0.
        assert_eq!(c.extvp_stat(&key).unwrap().count, 0);
    }

    #[test]
    fn persistence_roundtrip() {
        let mut c = Catalog::new(7, 0.5, true);
        c.set_vp_size(TermId(3), 4);
        c.set_extvp(
            ExtVpKey::new(Correlation::OS, TermId(3), TermId(3)),
            2,
            true,
        );
        let dir = std::env::temp_dir().join(format!("s2rdf-cat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        c.save(&path).unwrap();
        let back = Catalog::load(&path).unwrap();
        assert_eq!(back.total_triples, 7);
        assert_eq!(back.vp_size(TermId(3)), 4);
        assert_eq!(
            back.extvp_stat(&ExtVpKey::new(Correlation::OS, TermId(3), TermId(3))),
            c.extvp_stat(&ExtVpKey::new(Correlation::OS, TermId(3), TermId(3)))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
