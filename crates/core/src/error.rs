//! Error type for query compilation and execution.

use std::fmt;

use s2rdf_columnar::ColumnarError;
use s2rdf_model::ModelError;
use s2rdf_sparql::ParseError;

/// Errors raised while building stores or answering queries.
#[derive(Debug)]
pub enum CoreError {
    /// SPARQL syntax error.
    Parse(ParseError),
    /// RDF model error (loading data).
    Model(ModelError),
    /// Substrate error (persistence, operators).
    Columnar(ColumnarError),
    /// The query uses a feature outside the supported SPARQL 1.0 subset.
    Unsupported(String),
    /// The query exceeded its deadline (used by the benchmark harness for
    /// engines that cannot finish, mirroring the paper's "F" entries).
    Timeout,
    /// The query exceeded a configured resource bound
    /// ([`crate::exec::QueryOptions::max_intermediate_rows`]) and was
    /// aborted before exhausting memory — the shared-memory analogue of a
    /// Spark job killed by the cluster manager.
    ResourceExhausted(String),
    /// Catalog (statistics) persistence failure.
    Catalog(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(e) => write!(f, "{e}"),
            CoreError::Model(e) => write!(f, "{e}"),
            CoreError::Columnar(e) => write!(f, "{e}"),
            CoreError::Unsupported(m) => write!(f, "unsupported query feature: {m}"),
            CoreError::Timeout => write!(f, "query timed out"),
            CoreError::ResourceExhausted(m) => write!(f, "resource limit exceeded: {m}"),
            CoreError::Catalog(m) => write!(f, "catalog error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<ColumnarError> for CoreError {
    fn from(e: ColumnarError) -> Self {
        CoreError::Columnar(e)
    }
}
