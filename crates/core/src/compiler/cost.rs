//! Cost-based join ordering (ROADMAP item 3).
//!
//! The paper's Algorithm 4 orders joins greedily: most bound values first,
//! ties by smallest selected table. That heuristic looks at each pattern in
//! isolation — it never asks what a *join* will produce. This module adds
//! the missing machinery:
//!
//! * a [`JoinGraph`] whose nodes are the compiled triple-pattern plans and
//!   whose edges carry pairwise join selectivities derived from the same
//!   ExtVP statistics that drive table selection (the SF of the
//!   `ExtVP_p1|p2` reduction *is* the fraction of `VP_p1` that survives a
//!   join with `VP_p2` — paper §5.3),
//! * a [`CostModel`] mapping (build, probe, output) row counts to
//!   microseconds, with constants calibrated against measured per-join
//!   `wall_micros` samples ([`CostModel::calibrate`]),
//! * [`plan_order`]: exact left-deep enumeration (DPsize over subsets) for
//!   small BGPs, falling back to the greedy Algorithm 4 order — with the
//!   cross-join fallback fixed to prefer the smallest table — above the
//!   cutoff, and
//! * [`replan_remaining`]: the AQE-style feedback hook — once a join has
//!   materialized and its observed cardinality diverged from the estimate,
//!   the executor re-runs ordering over the not-yet-joined patterns with
//!   the accumulator pinned to its *observed* size.
//!
//! All tie-breaks are canonical (the caller pre-sorts nodes by bound
//! count, size, then pattern text), so plans are invariant under
//! permutation of the input BGP.

use s2rdf_model::Dictionary;
use s2rdf_sparql::TermPattern;

use crate::catalog::{Catalog, Correlation, ExtVpKey};

use super::{TableSource, TpPlan};

/// Hard ceiling on DP enumeration width: `2^16` subset states. The
/// configured cutoff ([`plan_order`]'s `dp_max`) is clamped to this.
pub const DP_ABSOLUTE_MAX: usize = 16;

/// Estimated selectivity of one bound subject/object constant against its
/// table. The catalog tracks table sizes, not per-value frequencies, so a
/// bound constant's reduction is a fixed heuristic — chosen so that a
/// bound pattern beats an unbound one of the same table size (matching the
/// greedy rule "most bound values first") without letting a bound scan of
/// a huge table beat a tiny unbound one.
pub const BOUND_CONST_SELECTIVITY: f64 = 0.1;

/// Floor for cardinality estimates, so products of selectivities never
/// collapse to zero and ratios stay meaningful.
const EST_FLOOR: f64 = 1e-3;

/// How the final step order was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderMethod {
    /// Input order kept (ordering disabled or trivial BGP).
    #[default]
    Input,
    /// Greedy Algorithm 4 (most-bound-first, smallest-table ties,
    /// connected-first; cross-join fallback by smallest table).
    Greedy,
    /// Exact left-deep dynamic programming over subsets (DPsize).
    Dp,
}

impl OrderMethod {
    /// Short label for explain output.
    pub fn label(self) -> &'static str {
        match self {
            OrderMethod::Input => "input",
            OrderMethod::Greedy => "greedy",
            OrderMethod::Dp => "dp",
        }
    }
}

/// One measured join, used to calibrate the [`CostModel`] constants
/// against reality (the `columnar.*_join.wall_micros` histograms and the
/// per-join [`crate::exec::JoinExplain`] records supply these).
#[derive(Debug, Clone, Copy)]
pub struct JoinSample {
    /// Rows hashed into the build side.
    pub build_rows: usize,
    /// Rows probed.
    pub probe_rows: usize,
    /// Rows produced.
    pub out_rows: usize,
    /// Measured wall time of the join, in microseconds.
    pub wall_micros: u64,
}

/// Linear per-row cost model for one hash join:
/// `cost = build·c_build + probe·c_probe + out·c_out` (microseconds).
///
/// The defaults come from calibrating against the per-join `wall_micros`
/// histograms collected by the metrics layer on the WatDiv SF1 IL workload
/// (see `bench_pr7`, which re-runs the calibration and reports the fitted
/// constants in `BENCH_pr7.json`). Only the *ratios* matter for ordering;
/// the absolute scale matters only when reading reported costs as time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Microseconds per build-side row (hash insert).
    pub build_micros_per_row: f64,
    /// Microseconds per probe-side row (hash lookup).
    pub probe_micros_per_row: f64,
    /// Microseconds per output row (materialization).
    pub out_micros_per_row: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated on WatDiv SF1 (bench_pr7 `cost_model` section):
        // building a hash table costs roughly 2.5× a probe, materializing
        // an output row roughly 1.5× a probe.
        CostModel {
            build_micros_per_row: 0.025,
            probe_micros_per_row: 0.010,
            out_micros_per_row: 0.015,
        }
    }
}

impl CostModel {
    /// Predicted cost of one join, in microseconds.
    pub fn join_cost(&self, build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
        build_rows * self.build_micros_per_row
            + probe_rows * self.probe_micros_per_row
            + out_rows * self.out_micros_per_row
    }

    /// Fits the three per-row constants to measured joins by least squares
    /// (3×3 normal equations). Falls back to scaling the default ratios so
    /// that the *total* predicted time matches the total measured time
    /// whenever the system is degenerate (fewer than three independent
    /// samples, or a fit with non-positive coefficients — physically
    /// meaningless and unusable for ordering).
    pub fn calibrate(samples: &[JoinSample]) -> CostModel {
        let fallback = |samples: &[JoinSample]| -> CostModel {
            let d = CostModel::default();
            let mut predicted = 0.0;
            let mut measured = 0.0;
            for s in samples {
                predicted +=
                    d.join_cost(s.build_rows as f64, s.probe_rows as f64, s.out_rows as f64);
                measured += s.wall_micros as f64;
            }
            if predicted <= 0.0 || measured <= 0.0 {
                return d;
            }
            let k = measured / predicted;
            CostModel {
                build_micros_per_row: d.build_micros_per_row * k,
                probe_micros_per_row: d.probe_micros_per_row * k,
                out_micros_per_row: d.out_micros_per_row * k,
            }
        };
        if samples.len() < 3 {
            return fallback(samples);
        }
        // Normal equations A^T A x = A^T y for A = [build probe out].
        let mut ata = [[0.0f64; 3]; 3];
        let mut aty = [0.0f64; 3];
        for s in samples {
            let row = [s.build_rows as f64, s.probe_rows as f64, s.out_rows as f64];
            for i in 0..3 {
                for j in 0..3 {
                    ata[i][j] += row[i] * row[j];
                }
                aty[i] += row[i] * s.wall_micros as f64;
            }
        }
        let Some(x) = solve3(ata, aty) else {
            return fallback(samples);
        };
        if x.iter().any(|&c| !c.is_finite() || c <= 0.0) {
            return fallback(samples);
        }
        CostModel {
            build_micros_per_row: x[0],
            probe_micros_per_row: x[1],
            out_micros_per_row: x[2],
        }
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Returns `None` when (near-)singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-9 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col];
        for row in (col + 1)..3 {
            let f = a[row][col] / pivot_row[col];
            for (entry, &p) in a[row].iter_mut().zip(pivot_row.iter()).skip(col) {
                *entry -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in (row + 1)..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// One node of the join graph: a triple pattern with its cardinality
/// estimate and the greedy comparator's inputs.
#[derive(Debug, Clone, Default)]
pub struct JoinNode {
    /// Estimated rows the scan produces (selected-table size, discounted
    /// by [`BOUND_CONST_SELECTIVITY`] per bound subject/object constant).
    pub est_rows: f64,
    /// Selected-table cardinality (undiscounted; the greedy tie-break).
    pub size: usize,
    /// Bound positions in the pattern (the greedy primary key).
    pub bound_count: usize,
}

/// Join graph over a BGP's compiled steps: per-node cardinality estimates
/// and pairwise selectivities from ExtVP statistics.
///
/// The selectivity `sel[i][j]` is defined so that the estimated size of
/// `T_i ⋈ T_j` is `est_i · est_j · sel[i][j]`; `NaN` encodes "no shared
/// variable" (a cross product, estimated as `est_i · est_j`). Estimates
/// for larger sets compose by the standard independence model:
/// `card(S) = Π est_i · Π_{(i,j) ⊆ S} sel[i][j]` — order-independent, so
/// the DP can memoize one cardinality per subset.
#[derive(Debug, Clone, Default)]
pub struct JoinGraph {
    /// Nodes, in the caller's (canonical) order.
    pub nodes: Vec<JoinNode>,
    /// Pairwise selectivities; `NaN` = no shared variable.
    sel: Vec<f64>,
    /// Adjacency bitmask per node (bit `j` set iff `i` and `j` share a
    /// variable).
    adj: Vec<u64>,
}

impl JoinGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether nodes `i` and `j` share a variable.
    pub fn connected(&self, i: usize, j: usize) -> bool {
        self.adj[i] & (1u64 << j) != 0
    }

    /// Replaces node `i`'s cardinality estimate with better evidence than
    /// the catalog heuristic — e.g. a zone-map scan estimate summing only
    /// the chunks a bound constant can survive. Selectivity edges are
    /// untouched: they are ratios and compose with any node estimate.
    pub fn set_node_estimate(&mut self, i: usize, est_rows: f64) {
        self.nodes[i].est_rows = est_rows.max(EST_FLOOR);
    }

    /// Whether node `i` shares a variable with any node in `mask`.
    pub fn connected_to_set(&self, i: usize, mask: u64) -> bool {
        self.adj[i] & mask != 0
    }

    /// Estimated cardinality of joining node `r` into a set with
    /// cardinality `card` (the independence model: multiply by `est_r` and
    /// every selectivity edge from `r` into the set).
    pub fn extend_card(&self, card: f64, mask: u64, r: usize) -> f64 {
        let mut out = card * self.nodes[r].est_rows;
        for j in 0..self.len() {
            if j != r && mask & (1u64 << j) != 0 {
                let s = self.sel[r * self.len() + j];
                if !s.is_nan() {
                    out *= s;
                }
            }
        }
        out.max(EST_FLOOR)
    }

    /// Builds the graph from compiled steps. With `stats`, edge
    /// selectivities come from the catalog's ExtVP reduction ratios;
    /// without (the baseline engines have no per-pair statistics), shared
    /// variables get the conservative containment default
    /// `|T_i ⋈ T_j| ≈ max(est_i, est_j)`.
    pub fn build(steps: &[TpPlan], stats: Option<(&Catalog, &Dictionary)>) -> JoinGraph {
        let n = steps.len();
        let mut nodes = Vec::with_capacity(n);
        for step in steps {
            let mut est = step.size as f64;
            for pos in [&step.tp.s, &step.tp.o] {
                if !pos.is_var() {
                    est *= BOUND_CONST_SELECTIVITY;
                }
            }
            nodes.push(JoinNode {
                est_rows: est.max(EST_FLOOR),
                size: step.size,
                bound_count: step.tp.bound_count(),
            });
        }
        let mut sel = vec![f64::NAN; n * n];
        let mut adj = vec![0u64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let shares_var = steps[i]
                    .tp
                    .vars()
                    .iter()
                    .any(|v| steps[j].tp.vars().contains(v));
                if !shares_var {
                    continue;
                }
                adj[i] |= 1u64 << j;
                adj[j] |= 1u64 << i;
                let (ei, ej) = (nodes[i].est_rows, nodes[j].est_rows);
                // Estimated join output: for every position pair that
                // shares a variable, the survivors on each side are
                // `est · SF` of the matching ExtVP reduction (SF = 1 when
                // the chosen table is already that reduction, or when no
                // statistic exists); the pair's output is bounded by the
                // larger surviving side (each surviving row matches at
                // least once), and multiple shared variables keep the
                // tightest bound.
                let mut out = ei.max(ej);
                for (corr_ij, si, sj) in [
                    (Correlation::SS, &steps[i].tp.s, &steps[j].tp.s),
                    (Correlation::SO, &steps[i].tp.s, &steps[j].tp.o),
                    (Correlation::OS, &steps[i].tp.o, &steps[j].tp.s),
                    (Correlation::OO, &steps[i].tp.o, &steps[j].tp.o),
                ] {
                    if !same_var(si, sj) {
                        continue;
                    }
                    let sf_i = pair_sf(&steps[i], &steps[j], corr_ij, stats);
                    let sf_j = pair_sf(&steps[j], &steps[i], corr_ij.transpose(), stats);
                    let pair_out = (ei * sf_i).max(ej * sf_j);
                    out = out.min(pair_out);
                }
                let s = (out.max(EST_FLOOR) / (ei * ej)).min(1.0);
                sel[i * n + j] = s;
                sel[j * n + i] = s;
            }
        }
        JoinGraph { nodes, sel, adj }
    }
}

fn same_var(a: &TermPattern, b: &TermPattern) -> bool {
    match (a.as_var(), b.as_var()) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

impl Correlation {
    /// The same position pair seen from the other pattern (SS↔SS, OO↔OO,
    /// SO↔OS).
    fn transpose(self) -> Correlation {
        match self {
            Correlation::SS => Correlation::SS,
            Correlation::OO => Correlation::OO,
            Correlation::SO => Correlation::OS,
            Correlation::OS => Correlation::SO,
        }
    }
}

/// The fraction of `a`'s rows that survive a semi-join with `b` over the
/// given correlation: the catalog's SF for `ExtVP^corr_{p_a|p_b}`, or 1.0
/// when `a`'s chosen table *is* that reduction (already filtered) or no
/// statistic is available.
fn pair_sf(
    a: &TpPlan,
    b: &TpPlan,
    corr: Correlation,
    stats: Option<(&Catalog, &Dictionary)>,
) -> f64 {
    let Some((catalog, dict)) = stats else {
        return 1.0;
    };
    let (Some(pa), Some(pb)) = (
        a.tp.p.as_term().and_then(|t| dict.id(t)),
        b.tp.p.as_term().and_then(|t| dict.id(t)),
    ) else {
        return 1.0;
    };
    if matches!(corr, Correlation::SS | Correlation::OO) && pa == pb {
        // Self-correlations are the identity (selection.rs skips them too).
        return 1.0;
    }
    let key = ExtVpKey::new(corr, pa, pb);
    if a.source == TableSource::ExtVp(key) {
        // The chosen table is already this exact reduction: every row
        // survives by construction.
        return 1.0;
    }
    match catalog.extvp_stat(&key) {
        Some(stat) => stat.sf.clamp(0.0, 1.0),
        None => 1.0,
    }
}

/// The outcome of ordering: a permutation of the node indices, the
/// estimated accumulator cardinality after each prefix, and which
/// algorithm produced it.
#[derive(Debug, Clone, Default)]
pub struct PlannedOrder {
    /// Node indices in execution order.
    pub order: Vec<usize>,
    /// `prefix_est[k]` = estimated rows after joining `order[0..=k]`
    /// (`prefix_est[0]` is the first scan's estimate).
    pub prefix_est: Vec<f64>,
    /// The algorithm that produced the order.
    pub method: OrderMethod,
}

/// Orders all nodes of the graph. Uses exact left-deep DP when
/// `2 ≤ n ≤ min(dp_max, 16)`, the greedy Algorithm 4 otherwise. Callers
/// must present nodes in canonical order (bound count desc, size asc,
/// pattern text) — both algorithms break exact ties toward lower indices,
/// which makes plans permutation-invariant.
pub fn plan_order(graph: &JoinGraph, cost: &CostModel, dp_max: usize) -> PlannedOrder {
    order_from(graph, cost, dp_max, 0, 1.0)
}

/// Re-orders the nodes *not* in `executed` after the accumulator
/// materialized with `observed_rows` — the AQE feedback path. The
/// already-joined set acts as a virtual relation of known cardinality:
/// connectivity and selectivity edges from remaining nodes into it still
/// apply, only its size is no longer an estimate.
pub fn replan_remaining(
    graph: &JoinGraph,
    executed: &[usize],
    observed_rows: usize,
    cost: &CostModel,
    dp_max: usize,
) -> PlannedOrder {
    let mut mask = 0u64;
    for &i in executed {
        mask |= 1u64 << i;
    }
    order_from(
        graph,
        cost,
        dp_max,
        mask,
        (observed_rows as f64).max(EST_FLOOR),
    )
}

/// Shared entry: orders the nodes outside `start_mask`, with the executed
/// set pinned to cardinality `start_card` (ignored when `start_mask` is
/// empty — ordering then starts from single relations).
fn order_from(
    graph: &JoinGraph,
    cost: &CostModel,
    dp_max: usize,
    start_mask: u64,
    start_card: f64,
) -> PlannedOrder {
    let n = graph.len();
    let free: Vec<usize> = (0..n).filter(|&i| start_mask & (1u64 << i) == 0).collect();
    if free.len() <= 1 {
        let mut prefix_est = Vec::new();
        let mut card = start_card;
        for &i in &free {
            card = if start_mask == 0 {
                graph.nodes[i].est_rows
            } else {
                graph.extend_card(card, start_mask, i)
            };
            prefix_est.push(card);
        }
        return PlannedOrder {
            order: free,
            prefix_est,
            method: OrderMethod::Input,
        };
    }
    if free.len() >= 2 && free.len() <= dp_max.min(DP_ABSOLUTE_MAX) {
        dp_order(graph, cost, start_mask, start_card, &free)
    } else {
        greedy_order(graph, start_mask, start_card, &free)
    }
}

/// Exact left-deep enumeration (DPsize): `best[S]` is the cheapest
/// left-deep join of the set `S`, built by extending `best[S \ {r}]` with
/// every candidate `r`. Cardinalities are per-subset (the independence
/// model is order-free), so each of the `2^m` states is solved once.
/// Cross-join extensions are only admitted when a state has no connected
/// candidate, preserving Algorithm 4's connected-first invariant.
fn dp_order(
    graph: &JoinGraph,
    cost: &CostModel,
    start_mask: u64,
    start_card: f64,
    free: &[usize],
) -> PlannedOrder {
    let m = free.len();
    let states = 1usize << m;
    // Compact bit i ↔ graph node free[i].
    let expand = |bits: usize| -> u64 {
        let mut mask = start_mask;
        for (i, &node) in free.iter().enumerate() {
            if bits & (1 << i) != 0 {
                mask |= 1u64 << node;
            }
        }
        mask
    };
    let mut card = vec![f64::NAN; states];
    let mut best_cost = vec![f64::INFINITY; states];
    let mut best_last = vec![usize::MAX; states];
    card[0] = start_card;
    best_cost[0] = 0.0;
    let rooted = start_mask != 0;
    for bits in 1..states {
        // Subset cardinality: extend from the lowest set bit (any bit
        // gives the same value — the model is order-independent).
        let low = bits.trailing_zeros() as usize;
        let prev_bits = bits & !(1 << low);
        let prev_mask = expand(prev_bits);
        card[bits] = if prev_bits == 0 && !rooted {
            graph.nodes[free[low]].est_rows
        } else {
            graph.extend_card(card[prev_bits], prev_mask, free[low])
        };
        // Transition: which relation joins last? Prefer extensions that
        // connect to the rest of the subset; accept cross joins only when
        // no member connects (a disconnected BGP).
        let candidates: Vec<usize> = (0..m).filter(|&i| bits & (1 << i) != 0).collect();
        let connected: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| {
                let rest = expand(bits & !(1 << i));
                rest != 0 && graph.connected_to_set(free[i], rest)
            })
            .collect();
        let pool = if connected.is_empty() {
            &candidates
        } else {
            &connected
        };
        // Reverse iteration + strict improvement: on exact cost ties the
        // lowest canonical index joins last to be examined and is kept,
        // which biases full ties toward the canonical node order.
        for &i in pool.iter().rev() {
            let prev_bits = bits & !(1 << i);
            if best_cost[prev_bits].is_infinite() {
                continue;
            }
            let prev_card = if prev_bits == 0 && !rooted {
                // First relation: no join yet, only its scan.
                let c = 0.0;
                if c < best_cost[bits] {
                    best_cost[bits] = c;
                    best_last[bits] = i;
                }
                continue;
            } else {
                card[prev_bits]
            };
            let r_est = graph.nodes[free[i]].est_rows;
            let join = cost.join_cost(prev_card.min(r_est), prev_card.max(r_est), card[bits]);
            let total = best_cost[prev_bits] + join;
            if total < best_cost[bits] {
                best_cost[bits] = total;
                best_last[bits] = i;
            }
        }
    }
    // Reconstruct the order by walking `best_last` back from the full set.
    let full = states - 1;
    let mut seq = Vec::with_capacity(m);
    let mut bits = full;
    while bits != 0 {
        let last = best_last[bits];
        debug_assert!(last != usize::MAX, "unreached DP state");
        seq.push(free[last]);
        bits &= !(1 << last);
    }
    seq.reverse();
    // Prefix cardinalities along the chosen order.
    let mut prefix_est = Vec::with_capacity(m);
    let mut bits = 0usize;
    for &node in &seq {
        let i = free.iter().position(|&f| f == node).expect("node in free");
        bits |= 1 << i;
        prefix_est.push(card[bits]);
    }
    PlannedOrder {
        order: seq,
        prefix_est,
        method: OrderMethod::Dp,
    }
}

/// The paper's greedy Algorithm 4 over graph nodes: among candidates
/// connected to the already-chosen set, pick most-bound-first, ties by
/// smallest table, ties by lowest (canonical) index. When *no* candidate
/// connects — a forced cross join — pick the smallest table first instead:
/// the cross product's size is the product of its inputs, so starting a
/// new component anywhere but its smallest table multiplies everything
/// downstream (this is the PR's cross-join ordering fix; bound counts
/// don't bound a cross product's cost).
fn greedy_order(
    graph: &JoinGraph,
    start_mask: u64,
    start_card: f64,
    free: &[usize],
) -> PlannedOrder {
    let mut chosen_mask = start_mask;
    let mut remaining: Vec<usize> = free.to_vec();
    let mut order = Vec::with_capacity(free.len());
    let mut prefix_est = Vec::with_capacity(free.len());
    let mut card = start_card;
    let rooted = start_mask != 0;
    while !remaining.is_empty() {
        let first_pick = chosen_mask == 0;
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| first_pick || graph.connected_to_set(i, chosen_mask))
            .collect();
        let forced_cross = connected.is_empty();
        let pool = if forced_cross { &remaining } else { &connected };
        // First minimum wins: candidates are in canonical order, so exact
        // ties resolve to the canonical earliest — permutation-invariant.
        let mut best = pool[0];
        for &i in &pool[1..] {
            let (cur, cand) = (&graph.nodes[best], &graph.nodes[i]);
            let better = if forced_cross {
                cand.size.cmp(&cur.size).is_lt()
            } else {
                cand.bound_count
                    .cmp(&cur.bound_count) // more bound values first
                    .reverse()
                    .then(cand.size.cmp(&cur.size)) // then smaller tables
                    .is_lt()
            };
            if better {
                best = i;
            }
        }
        card = if order.is_empty() && !rooted {
            graph.nodes[best].est_rows
        } else {
            graph.extend_card(card, chosen_mask, best)
        };
        prefix_est.push(card);
        chosen_mask |= 1u64 << best;
        remaining.retain(|&i| i != best);
        order.push(best);
    }
    PlannedOrder {
        order,
        prefix_est,
        method: OrderMethod::Greedy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_sparql::TriplePattern;

    fn plan(tp: TriplePattern, size: usize) -> TpPlan {
        TpPlan {
            tp,
            source: TableSource::TriplesTable,
            size,
            sf: 1.0,
            extra_reducers: Vec::new(),
        }
    }

    fn v(name: &str) -> TermPattern {
        TermPattern::Var(name.into())
    }

    fn c(name: &str) -> TermPattern {
        TermPattern::Term(s2rdf_model::Term::iri(name))
    }

    #[test]
    fn calibrate_recovers_exact_linear_model() {
        let truth = CostModel {
            build_micros_per_row: 0.04,
            probe_micros_per_row: 0.01,
            out_micros_per_row: 0.02,
        };
        let mut samples = Vec::new();
        for (b, p, o) in [
            (1000usize, 5000usize, 700usize),
            (200, 90000, 12000),
            (40000, 40000, 40000),
            (10, 100, 5),
            (7000, 300, 9000),
        ] {
            samples.push(JoinSample {
                build_rows: b,
                probe_rows: p,
                out_rows: o,
                wall_micros: truth.join_cost(b as f64, p as f64, o as f64).round() as u64,
            });
        }
        let fitted = CostModel::calibrate(&samples);
        assert!((fitted.build_micros_per_row - truth.build_micros_per_row).abs() < 1e-3);
        assert!((fitted.probe_micros_per_row - truth.probe_micros_per_row).abs() < 1e-3);
        assert!((fitted.out_micros_per_row - truth.out_micros_per_row).abs() < 1e-3);
    }

    #[test]
    fn calibrate_degenerate_falls_back_to_scaled_defaults() {
        // All samples identical: singular normal equations.
        let samples = vec![
            JoinSample {
                build_rows: 100,
                probe_rows: 100,
                out_rows: 100,
                wall_micros: 50,
            };
            5
        ];
        let fitted = CostModel::calibrate(&samples);
        let d = CostModel::default();
        // Ratios preserved from the defaults.
        let r = fitted.build_micros_per_row / d.build_micros_per_row;
        assert!(r.is_finite() && r > 0.0);
        assert!(
            (fitted.probe_micros_per_row / d.probe_micros_per_row - r).abs() < 1e-9,
            "ratios must be preserved"
        );
        // Total predicted time matches total measured.
        let total: f64 = (0..5).map(|_| fitted.join_cost(100.0, 100.0, 100.0)).sum();
        assert!((total - 250.0).abs() < 1e-6);
    }

    #[test]
    fn dp_prefers_selective_start_over_bound_heavy_big_table() {
        // Chain a—b—c: a huge bound pattern, then two tiny unbound ones.
        // Greedy starts at the bound pattern (most-bound-first); DP starts
        // at the cheap end because the chain's total cost is lower.
        let steps = vec![
            plan(TriplePattern::new(c("U1"), c("p"), v("x")), 100_000),
            plan(TriplePattern::new(v("x"), c("q"), v("y")), 10),
            plan(TriplePattern::new(v("y"), c("r"), v("z")), 10),
        ];
        let graph = JoinGraph::build(&steps, None);
        let dp = plan_order(&graph, &CostModel::default(), 10);
        assert_eq!(dp.method, OrderMethod::Dp);
        let greedy = greedy_order(&graph, 0, 1.0, &[0, 1, 2]);
        assert_eq!(greedy.order[0], 0, "greedy starts at the bound pattern");
        assert_ne!(dp.order, greedy.order, "DP must diverge from greedy here");
        // DP keeps connectivity: consecutive prefixes always share a var.
        let mut mask = 1u64 << dp.order[0];
        for &i in &dp.order[1..] {
            assert!(graph.connected_to_set(i, mask), "cross join in DP plan");
            mask |= 1u64 << i;
        }
    }

    #[test]
    fn greedy_forced_cross_join_picks_smallest_table() {
        // Two components: {0} (bound, tiny) and {1 huge-bound, 2 tiny}.
        // After exhausting component one, the forced cross join must pick
        // the *smallest* table (node 2), not the most-bound one (node 1).
        let steps = vec![
            plan(TriplePattern::new(c("A"), c("p"), c("B")), 1),
            plan(TriplePattern::new(c("C"), c("q"), v("x")), 1_000_000),
            plan(TriplePattern::new(v("x"), c("r"), v("y")), 5),
        ];
        let graph = JoinGraph::build(&steps, None);
        let out = greedy_order(&graph, 0, 1.0, &[0, 1, 2]);
        assert_eq!(out.order, vec![0, 2, 1]);
    }

    #[test]
    fn replan_orders_remaining_around_observed_cardinality() {
        // Star on ?x: node 0 executed; the replan must order the remaining
        // two and keep them connected to the accumulator.
        let steps = vec![
            plan(TriplePattern::new(v("x"), c("p"), v("a")), 100),
            plan(TriplePattern::new(v("x"), c("q"), v("b")), 2000),
            plan(TriplePattern::new(v("x"), c("r"), v("c")), 50),
        ];
        let graph = JoinGraph::build(&steps, None);
        let out = replan_remaining(&graph, &[0], 3, &CostModel::default(), 10);
        assert_eq!(out.order.len(), 2);
        assert!(out.order.contains(&1) && out.order.contains(&2));
        // The small table joins before the big one against a 3-row
        // accumulator.
        assert_eq!(out.order[0], 2);
        assert_eq!(out.prefix_est.len(), 2);
    }

    #[test]
    fn dp_and_greedy_agree_on_trivial_inputs() {
        let steps = vec![
            plan(TriplePattern::new(v("x"), c("p"), v("y")), 10),
            plan(TriplePattern::new(v("y"), c("q"), v("z")), 20),
        ];
        let graph = JoinGraph::build(&steps, None);
        let dp = plan_order(&graph, &CostModel::default(), 10);
        let greedy = plan_order(&graph, &CostModel::default(), 0);
        assert_eq!(dp.order, greedy.order);
        assert_eq!(greedy.method, OrderMethod::Greedy);
        let single = JoinGraph::build(&steps[..1], None);
        let one = plan_order(&single, &CostModel::default(), 10);
        assert_eq!(one.order, vec![0]);
        assert_eq!(one.method, OrderMethod::Input);
    }
}
