//! Table selection — the paper's Algorithm 1.
//!
//! For a triple pattern `tp_i` within a BGP, the candidates are its VP
//! table plus one ExtVP table per correlation (SS/SO/OS) to every other
//! triple pattern; the candidate with the smallest selectivity factor
//! wins. A candidate with `SF = 0` proves the whole BGP empty.

use s2rdf_model::Dictionary;
use s2rdf_sparql::{TermPattern, TriplePattern};

use crate::catalog::{Catalog, Correlation, ExtVpKey};

use super::TableSource;

/// The outcome of table selection for one pattern.
#[derive(Debug, Clone, Copy)]
pub struct Selected {
    /// Chosen table.
    pub source: TableSource,
    /// Its cardinality.
    pub size: usize,
    /// Its selectivity factor w.r.t. the VP table.
    pub sf: f64,
}

fn same_var(a: &TermPattern, b: &TermPattern) -> bool {
    match (a.as_var(), b.as_var()) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Algorithm 1 (`TableSelection`). `use_extvp` disables the ExtVP
/// candidates (the paper's "S2RDF VP" configuration).
pub fn select_table(
    tp_i: &TriplePattern,
    bgp: &[TriplePattern],
    catalog: &Catalog,
    dict: &Dictionary,
    use_extvp: bool,
) -> Selected {
    select_with_candidates(tp_i, bgp, catalog, dict, use_extvp).0
}

/// Like [`select_table`], additionally returning every *materialized*
/// candidate reduction for the pattern. The extra candidates feed the
/// correlation-intersection optimization (paper §8 future work): all of
/// them are supersets of the rows that can contribute to the BGP, so
/// intersecting them tightens the input beyond the single best table.
pub fn select_with_candidates(
    tp_i: &TriplePattern,
    bgp: &[TriplePattern],
    catalog: &Catalog,
    dict: &Dictionary,
    use_extvp: bool,
) -> (Selected, Vec<ExtVpKey>) {
    // Bound subject/object constants that are not in the dictionary make
    // the pattern unsatisfiable.
    let empty = (
        Selected {
            source: TableSource::Empty,
            size: 0,
            sf: 0.0,
        },
        Vec::new(),
    );
    for pos in [&tp_i.s, &tp_i.o] {
        if let Some(t) = pos.as_term() {
            if dict.id(t).is_none() {
                return empty;
            }
        }
    }
    // Unbound predicate: only the triples table can answer it (§5.2).
    let p_term = match &tp_i.p {
        TermPattern::Var(_) => {
            return (
                Selected {
                    source: TableSource::TriplesTable,
                    size: catalog.total_triples,
                    sf: 1.0,
                },
                Vec::new(),
            )
        }
        TermPattern::Term(t) => t,
    };
    let Some(p1) = dict.id(p_term) else {
        return empty;
    };
    let vp_size = catalog.vp_size(p1);
    if vp_size == 0 {
        return empty;
    }

    let mut best = Selected {
        source: TableSource::Vp(p1),
        size: vp_size,
        sf: 1.0,
    };
    let mut materialized_candidates: Vec<ExtVpKey> = Vec::new();
    if !use_extvp || !catalog.extvp_built {
        return (best, materialized_candidates);
    }

    for tp in bgp {
        if std::ptr::eq(tp, tp_i) || tp == tp_i {
            continue;
        }
        // ExtVP only covers correlations to patterns with a bound predicate.
        let Some(p2_term) = tp.p.as_term() else {
            continue;
        };
        let Some(p2) = dict.id(p2_term) else {
            // The other pattern's predicate does not occur at all: the BGP
            // is empty (that pattern will select Empty itself).
            continue;
        };

        let consider = |corr: Correlation, applies: bool| {
            if !applies {
                return None;
            }
            if matches!(corr, Correlation::SS | Correlation::OO) && p1 == p2 {
                // SS/OO self-correlations are the identity.
                return None;
            }
            let key = ExtVpKey::new(corr, p1, p2);
            // For OO this returns None unless OO tables were built, so
            // absence is never misread as emptiness.
            catalog.extvp_stat(&key).map(|stat| (key, stat))
        };

        let candidates = [
            consider(Correlation::SS, same_var(&tp_i.s, &tp.s)),
            consider(Correlation::SO, same_var(&tp_i.s, &tp.o)),
            consider(Correlation::OS, same_var(&tp_i.o, &tp.s)),
            consider(Correlation::OO, same_var(&tp_i.o, &tp.o)),
        ];
        for (key, stat) in candidates.into_iter().flatten() {
            if stat.count == 0 {
                // SF = 0: the whole BGP is empty, no execution needed.
                return (
                    Selected {
                        source: TableSource::Empty,
                        size: 0,
                        sf: 0.0,
                    },
                    Vec::new(),
                );
            }
            if stat.materialized {
                if !materialized_candidates.contains(&key) {
                    materialized_candidates.push(key);
                }
                // `<=` so that among equal-SF candidates the one from the
                // later correlation wins, matching the paper's Fig. 11
                // choice (ExtVP_OS follows|follows over ExtVP_SS
                // follows|likes).
                if stat.sf <= best.sf {
                    best = Selected {
                        source: TableSource::ExtVp(key),
                        size: stat.count,
                        sf: stat.sf,
                    };
                }
            }
        }
    }
    (best, materialized_candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::{Term, TermId};

    /// Builds dictionary ids for the predicates of the paper's Fig. 11
    /// example and a catalog mirroring its ExtVP statistics.
    fn fig11() -> (Dictionary, Catalog, TermId, TermId) {
        let mut dict = Dictionary::new();
        let follows = dict.intern(&Term::iri("follows"));
        let likes = dict.intern(&Term::iri("likes"));
        let mut cat = Catalog::new(7, 1.0, true);
        cat.set_vp_size(follows, 4);
        cat.set_vp_size(likes, 3);
        // Fig. 11's SF values.
        cat.set_extvp(ExtVpKey::new(Correlation::SS, follows, likes), 2, true); // 0.50
        cat.set_extvp(ExtVpKey::new(Correlation::OS, follows, follows), 2, true); // 0.50
        cat.set_extvp(ExtVpKey::new(Correlation::SO, follows, follows), 3, true); // 0.75
        cat.set_extvp(ExtVpKey::new(Correlation::OS, follows, likes), 1, true); // 0.25
        cat.set_extvp(ExtVpKey::new(Correlation::SO, likes, follows), 1, true); // 0.33
        cat.set_extvp(ExtVpKey::new(Correlation::SS, likes, follows), 3, false); // 1.00
        (dict, cat, follows, likes)
    }

    fn v(name: &str) -> TermPattern {
        TermPattern::Var(name.into())
    }

    fn p(name: &str) -> TermPattern {
        TermPattern::Term(Term::iri(name))
    }

    /// Query Q1's BGP (Fig. 11).
    fn q1() -> Vec<TriplePattern> {
        vec![
            TriplePattern::new(v("x"), p("likes"), v("w")),
            TriplePattern::new(v("x"), p("follows"), v("y")),
            TriplePattern::new(v("y"), p("follows"), v("z")),
            TriplePattern::new(v("z"), p("likes"), v("w")),
        ]
    }

    #[test]
    fn fig11_table_choices() {
        let (dict, cat, follows, likes) = fig11();
        let bgp = q1();

        // TP1 (?x likes ?w): candidates VP_likes (1.0) and SS likes|follows
        // (1.0, not materialized) -> VP_likes.
        let s = select_table(&bgp[0], &bgp, &cat, &dict, true);
        assert_eq!(s.source, TableSource::Vp(likes));
        assert_eq!(s.size, 3);

        // TP2 (?x follows ?y): ExtVP_SS follows|likes and ExtVP_OS
        // follows|follows tie at SF 0.5; the later correlation wins, as in
        // the paper's Fig. 11/12 choice of ExtVP_OS follows|follows.
        let s = select_table(&bgp[1], &bgp, &cat, &dict, true);
        assert_eq!(s.size, 2);
        assert!((s.sf - 0.5).abs() < 1e-12);
        assert_eq!(
            s.source,
            TableSource::ExtVp(ExtVpKey::new(Correlation::OS, follows, follows))
        );

        // TP3 (?y follows ?z): ExtVP_OS follows|likes, SF 0.25 (the paper's
        // highlighted choice among three candidates).
        let s = select_table(&bgp[2], &bgp, &cat, &dict, true);
        assert_eq!(
            s.source,
            TableSource::ExtVp(ExtVpKey::new(Correlation::OS, follows, likes))
        );
        assert_eq!(s.size, 1);

        // TP4 (?z likes ?w): ExtVP_SO likes|follows, SF 0.33.
        let s = select_table(&bgp[3], &bgp, &cat, &dict, true);
        assert_eq!(
            s.source,
            TableSource::ExtVp(ExtVpKey::new(Correlation::SO, likes, follows))
        );
    }

    #[test]
    fn vp_mode_ignores_extvp() {
        let (dict, cat, follows, _) = fig11();
        let bgp = q1();
        let s = select_table(&bgp[2], &bgp, &cat, &dict, false);
        assert_eq!(s.source, TableSource::Vp(follows));
        assert_eq!(s.size, 4);
    }

    #[test]
    fn zero_sf_short_circuits() {
        let (dict, cat, _, _) = fig11();
        // ?a likes ?b . ?b likes ?c — ExtVP_OS likes|likes is absent from
        // the catalog, hence SF = 0 and the BGP is provably empty.
        let bgp = vec![
            TriplePattern::new(v("a"), p("likes"), v("b")),
            TriplePattern::new(v("b"), p("likes"), v("c")),
        ];
        let s = select_table(&bgp[0], &bgp, &cat, &dict, true);
        assert_eq!(s.source, TableSource::Empty);
    }

    #[test]
    fn unknown_predicate_is_empty() {
        let (dict, cat, _, _) = fig11();
        let bgp = vec![TriplePattern::new(v("a"), p("nonexistent"), v("b"))];
        let s = select_table(&bgp[0], &bgp, &cat, &dict, true);
        assert_eq!(s.source, TableSource::Empty);
    }

    #[test]
    fn unknown_constant_is_empty() {
        let (dict, cat, _, _) = fig11();
        let bgp = vec![TriplePattern::new(
            TermPattern::Term(Term::iri("ghost")),
            p("likes"),
            v("b"),
        )];
        let s = select_table(&bgp[0], &bgp, &cat, &dict, true);
        assert_eq!(s.source, TableSource::Empty);
    }

    #[test]
    fn var_predicate_uses_triples_table() {
        let (dict, cat, _, _) = fig11();
        let bgp = vec![TriplePattern::new(v("a"), v("p"), v("b"))];
        let s = select_table(&bgp[0], &bgp, &cat, &dict, true);
        assert_eq!(s.source, TableSource::TriplesTable);
        assert_eq!(s.size, 7);
    }
}
