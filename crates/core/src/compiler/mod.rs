//! SPARQL-to-plan compilation (paper §6).
//!
//! * [`selection`] — Algorithm 1: pick, per triple pattern, the ExtVP table
//!   with the best (smallest) selectivity factor among the pattern's
//!   correlations, falling back to VP or the triples table,
//! * [`bgp`] — Algorithms 3/4: compile a BGP into an ordered join plan,
//!   short-circuiting to the empty result when any selected table has
//!   `SF = 0` and optionally reordering joins by bound-value count and
//!   table cardinality,
//! * [`cost`] — the cost-based join-order planner layered on top of
//!   Algorithm 4: a join graph with ExtVP-derived selectivities, a
//!   calibrated per-row cost model, exact left-deep DP enumeration for
//!   small BGPs and the AQE-style mid-query re-planning hook.

pub mod bgp;
pub mod cost;
pub mod selection;

use s2rdf_sparql::TriplePattern;

use crate::catalog::ExtVpKey;

/// The table a triple pattern reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableSource {
    /// The base triples table (unbound predicate).
    TriplesTable,
    /// A VP table (`VP_p`).
    Vp(s2rdf_model::TermId),
    /// A materialized ExtVP partition.
    ExtVp(ExtVpKey),
    /// Statically empty: the predicate does not occur, a bound term is not
    /// in the dictionary, or a correlation has `SF = 0`.
    Empty,
}

/// The compiled access path for one triple pattern.
#[derive(Debug, Clone)]
pub struct TpPlan {
    /// The source pattern.
    pub tp: TriplePattern,
    /// Chosen table.
    pub source: TableSource,
    /// Cardinality of the chosen table (for join ordering and explain).
    pub size: usize,
    /// Selectivity factor of the chosen table relative to VP (1.0 for VP
    /// and the triples table).
    pub sf: f64,
    /// All other materialized reductions applicable to this pattern. When
    /// [`crate::exec::QueryOptions::intersect_correlations`] is on, the
    /// executor intersects the chosen table with these (paper §8 future
    /// work).
    pub extra_reducers: Vec<ExtVpKey>,
}

/// A compiled BGP: an ordered sequence of triple-pattern plans to be
/// joined left-to-right, plus the planner state the executor needs to
/// compare estimated against observed cardinalities and re-plan mid-query.
#[derive(Debug, Clone, Default)]
pub struct BgpPlan {
    /// Join steps in execution order.
    pub steps: Vec<TpPlan>,
    /// True if statistics prove the result is empty (paper §6.1: "a
    /// SPARQL query which contains a correlation between two predicates
    /// that does not exist in the dataset can be answered by using the
    /// statistics only").
    pub statically_empty: bool,
    /// Estimated accumulator cardinality after each step prefix
    /// (`prefix_est[0]` is the first scan's estimate). Empty when the BGP
    /// exceeds the planner's 64-pattern join-graph limit.
    pub prefix_est: Vec<f64>,
    /// Which ordering algorithm produced `steps`.
    pub order_method: cost::OrderMethod,
    /// The join graph over `steps` (same indices), used by the executor's
    /// AQE feedback loop to re-order the remaining steps when observed
    /// cardinalities diverge from `prefix_est`.
    pub graph: cost::JoinGraph,
}
