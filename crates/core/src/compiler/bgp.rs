//! BGP compilation — the paper's Algorithms 3 and 4.

use rustc_hash::FxHashSet;

use s2rdf_model::Dictionary;
use s2rdf_sparql::TriplePattern;

use crate::catalog::Catalog;

use super::selection::select_with_candidates;
use super::{BgpPlan, TableSource, TpPlan};

/// Compilation switches.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Use ExtVP candidates in table selection (off = the paper's "S2RDF
    /// VP" configuration).
    pub use_extvp: bool,
    /// Apply join-order optimization (Alg. 4). Off reproduces the naive
    /// Alg. 3 ordering for the Fig. 12 ablation.
    pub optimize_join_order: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            use_extvp: true,
            optimize_join_order: true,
        }
    }
}

/// Compiles a BGP into an ordered join plan.
pub fn compile_bgp(
    bgp: &[TriplePattern],
    catalog: &Catalog,
    dict: &Dictionary,
    options: CompileOptions,
) -> BgpPlan {
    let mut steps: Vec<TpPlan> = Vec::with_capacity(bgp.len());
    for tp in bgp {
        let (sel, candidates) = select_with_candidates(tp, bgp, catalog, dict, options.use_extvp);
        if sel.source == TableSource::Empty {
            return BgpPlan {
                steps: Vec::new(),
                statically_empty: true,
            };
        }
        // Everything except the chosen table is an extra reducer.
        let extra_reducers = candidates
            .into_iter()
            .filter(|key| sel.source != TableSource::ExtVp(*key))
            .collect();
        steps.push(TpPlan {
            tp: tp.clone(),
            source: sel.source,
            size: sel.size,
            sf: sel.sf,
            extra_reducers,
        });
    }
    if options.optimize_join_order {
        steps = order_steps(steps);
    }
    BgpPlan {
        steps,
        statically_empty: false,
    }
}

/// Join-order optimization (Alg. 4): repeatedly pick, among the remaining
/// patterns that share a variable with the patterns chosen so far (to avoid
/// cross joins), the one with the most bound positions, breaking ties by
/// smallest selected-table cardinality. The first pick considers all
/// patterns; a cross join is only accepted when no connected pattern
/// remains.
fn order_steps(mut remaining: Vec<TpPlan>) -> Vec<TpPlan> {
    let mut ordered = Vec::with_capacity(remaining.len());
    let mut bound_vars: FxHashSet<String> = FxHashSet::default();
    while !remaining.is_empty() {
        let connected = |p: &TpPlan| {
            bound_vars.is_empty() || p.tp.vars().iter().any(|v| bound_vars.contains(*v))
        };
        let candidate_set: Vec<usize> = {
            let conn: Vec<usize> = (0..remaining.len())
                .filter(|&i| connected(&remaining[i]))
                .collect();
            if conn.is_empty() {
                (0..remaining.len()).collect() // forced cross join
            } else {
                conn
            }
        };
        // First minimum wins (manual loop: `Iterator::min_by` keeps the
        // *last* of equal elements, which would make plans depend on input
        // permutation).
        let mut best = candidate_set[0];
        for &i in &candidate_set[1..] {
            let (cur, cand) = (&remaining[best], &remaining[i]);
            let better = cand
                .tp
                .bound_count()
                .cmp(&cur.tp.bound_count()) // more bound values first
                .reverse()
                .then(cand.size.cmp(&cur.size)) // then smaller tables first
                .is_lt();
            if better {
                best = i;
            }
        }
        let step = remaining.remove(best);
        for v in step.tp.vars() {
            bound_vars.insert(v.to_string());
        }
        ordered.push(step);
    }
    ordered
}

/// Orders raw triple patterns for engines without per-pattern table
/// statistics (triples-table, centralized, batch baselines): same greedy
/// strategy with a caller-provided size estimate.
pub fn order_patterns_by<F: Fn(&TriplePattern) -> usize>(
    bgp: &[TriplePattern],
    estimate: F,
) -> Vec<TriplePattern> {
    let steps: Vec<TpPlan> = bgp
        .iter()
        .map(|tp| TpPlan {
            tp: tp.clone(),
            source: TableSource::TriplesTable,
            size: estimate(tp),
            sf: 1.0,
            extra_reducers: Vec::new(),
        })
        .collect();
    order_steps(steps).into_iter().map(|s| s.tp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Correlation, ExtVpKey};
    use s2rdf_model::Term;
    use s2rdf_sparql::TermPattern;

    fn v(name: &str) -> TermPattern {
        TermPattern::Var(name.into())
    }

    fn p(name: &str) -> TermPattern {
        TermPattern::Term(Term::iri(name))
    }

    fn fig11() -> (Dictionary, Catalog) {
        let mut dict = Dictionary::new();
        let follows = dict.intern(&Term::iri("follows"));
        let likes = dict.intern(&Term::iri("likes"));
        let mut cat = Catalog::new(7, 1.0, true);
        cat.set_vp_size(follows, 4);
        cat.set_vp_size(likes, 3);
        cat.set_extvp(ExtVpKey::new(Correlation::SS, follows, likes), 2, true);
        cat.set_extvp(ExtVpKey::new(Correlation::OS, follows, follows), 2, true);
        cat.set_extvp(ExtVpKey::new(Correlation::SO, follows, follows), 3, true);
        cat.set_extvp(ExtVpKey::new(Correlation::OS, follows, likes), 1, true);
        cat.set_extvp(ExtVpKey::new(Correlation::SO, likes, follows), 1, true);
        cat.set_extvp(ExtVpKey::new(Correlation::SS, likes, follows), 3, false);
        (dict, cat)
    }

    fn q1() -> Vec<TriplePattern> {
        vec![
            TriplePattern::new(v("x"), p("likes"), v("w")),
            TriplePattern::new(v("x"), p("follows"), v("y")),
            TriplePattern::new(v("y"), p("follows"), v("z")),
            TriplePattern::new(v("z"), p("likes"), v("w")),
        ]
    }

    #[test]
    fn unoptimized_keeps_query_order() {
        let (dict, cat) = fig11();
        let plan = compile_bgp(
            &q1(),
            &cat,
            &dict,
            CompileOptions {
                use_extvp: true,
                optimize_join_order: false,
            },
        );
        let order: Vec<&TriplePattern> = plan.steps.iter().map(|s| &s.tp).collect();
        assert_eq!(order, q1().iter().collect::<Vec<_>>());
    }

    /// The paper's Fig. 12: join-order optimization starts with the two
    /// smallest tables (TP3 with SF 0.25, then TP4 with SF 0.33).
    #[test]
    fn fig12_join_order() {
        let (dict, cat) = fig11();
        let bgp = q1();
        let plan = compile_bgp(&bgp, &cat, &dict, CompileOptions::default());
        assert!(!plan.statically_empty);
        assert_eq!(plan.steps.len(), 4);
        // First step: TP3 (size 1).
        assert_eq!(plan.steps[0].tp, bgp[2]);
        assert_eq!(plan.steps[0].size, 1);
        // Second: TP4 (size 1, connected via ?z).
        assert_eq!(plan.steps[1].tp, bgp[3]);
        // Third: TP2 (size 2, connected via ?y).
        assert_eq!(plan.steps[2].tp, bgp[1]);
        // Last: TP1 (size 3).
        assert_eq!(plan.steps[3].tp, bgp[0]);
    }

    #[test]
    fn bound_values_take_priority() {
        let (dict, cat) = fig11();
        // A pattern with a bound subject runs first even though its table
        // is larger.
        let bgp = vec![
            TriplePattern::new(v("a"), p("likes"), v("b")),
            TriplePattern::new(TermPattern::Term(Term::iri("likes")), p("follows"), v("a")),
        ];
        let plan = compile_bgp(&bgp, &cat, &dict, CompileOptions::default());
        assert_eq!(plan.steps[0].tp.bound_count(), 2);
    }

    #[test]
    fn cross_join_avoided() {
        let (dict, cat) = fig11();
        // Disconnected in the middle: ?a…?b then ?x…?y then ?b…?x bridges.
        let bgp = vec![
            TriplePattern::new(v("a"), p("follows"), v("b")),
            TriplePattern::new(v("x"), p("likes"), v("y")),
            TriplePattern::new(v("b"), p("follows"), v("x")),
        ];
        let plan = compile_bgp(&bgp, &cat, &dict, CompileOptions::default());
        // Whatever starts, each later step must share a variable with the
        // accumulated set.
        let mut seen: Vec<String> = plan.steps[0]
            .tp
            .vars()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for step in &plan.steps[1..] {
            assert!(
                step.tp.vars().iter().any(|v| seen.contains(&v.to_string())),
                "cross join in plan"
            );
            seen.extend(step.tp.vars().iter().map(|s| s.to_string()));
        }
    }

    #[test]
    fn empty_plan_from_statistics() {
        let (dict, cat) = fig11();
        let bgp = vec![
            TriplePattern::new(v("a"), p("likes"), v("b")),
            TriplePattern::new(v("b"), p("likes"), v("c")),
        ];
        let plan = compile_bgp(&bgp, &cat, &dict, CompileOptions::default());
        assert!(plan.statically_empty);
    }

    #[test]
    fn order_patterns_by_estimate() {
        let bgp = vec![
            TriplePattern::new(v("a"), p("big"), v("b")),
            TriplePattern::new(v("b"), p("small"), v("c")),
        ];
        let ordered = order_patterns_by(&bgp, |tp| if tp.p == p("big") { 1000 } else { 1 });
        assert_eq!(ordered[0].p, p("small"));
    }
}
