//! BGP compilation — the paper's Algorithms 3 and 4, with cost-based join
//! ordering layered on top (see [`super::cost`]).

use rustc_hash::FxHashSet;

use s2rdf_model::Dictionary;
use s2rdf_sparql::TriplePattern;

use crate::catalog::Catalog;

use super::cost::{self, CostModel, JoinGraph, OrderMethod};
use super::selection::select_with_candidates;
use super::{BgpPlan, TableSource, TpPlan};

/// Compilation switches.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Use ExtVP candidates in table selection (off = the paper's "S2RDF
    /// VP" configuration).
    pub use_extvp: bool,
    /// Apply join-order optimization (Alg. 4 / cost-based DP). Off
    /// reproduces the naive Alg. 3 ordering for the Fig. 12 ablation.
    pub optimize_join_order: bool,
    /// Largest BGP ordered by exact left-deep DP enumeration; larger BGPs
    /// fall back to the greedy Algorithm 4 order. `0` disables DP
    /// entirely (greedy-only, the pre-cost-model behaviour).
    pub dp_max_patterns: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            use_extvp: true,
            optimize_join_order: true,
            dp_max_patterns: 10,
        }
    }
}

/// Compiles a BGP into an ordered join plan.
pub fn compile_bgp(
    bgp: &[TriplePattern],
    catalog: &Catalog,
    dict: &Dictionary,
    options: CompileOptions,
) -> BgpPlan {
    let mut steps: Vec<TpPlan> = Vec::with_capacity(bgp.len());
    for tp in bgp {
        let (sel, candidates) = select_with_candidates(tp, bgp, catalog, dict, options.use_extvp);
        if sel.source == TableSource::Empty {
            return BgpPlan {
                statically_empty: true,
                ..BgpPlan::default()
            };
        }
        // Everything except the chosen table is an extra reducer.
        let extra_reducers = candidates
            .into_iter()
            .filter(|key| sel.source != TableSource::ExtVp(*key))
            .collect();
        steps.push(TpPlan {
            tp: tp.clone(),
            source: sel.source,
            size: sel.size,
            sf: sel.sf,
            extra_reducers,
        });
    }
    let stats = Some((catalog, dict));
    if options.optimize_join_order {
        let ordered =
            order_steps_cost_based(steps, stats, &CostModel::default(), options.dp_max_patterns);
        BgpPlan {
            steps: ordered.steps,
            statically_empty: false,
            prefix_est: ordered.prefix_est,
            order_method: ordered.method,
            graph: ordered.graph,
        }
    } else {
        // Keep the written order, but still build the join graph and its
        // prefix estimates: the executor's estimated-vs-observed explain
        // (and the AQE replan hook) work for the ablation configuration
        // too.
        let (graph, prefix_est) = graph_for_order(&steps, stats);
        BgpPlan {
            steps,
            statically_empty: false,
            prefix_est,
            order_method: OrderMethod::Input,
            graph,
        }
    }
}

/// An ordered step sequence plus the planner state the executor needs for
/// estimated-vs-observed feedback.
#[derive(Debug, Clone, Default)]
pub struct OrderedSteps {
    /// Steps in execution order.
    pub steps: Vec<TpPlan>,
    /// Estimated accumulator cardinality after each prefix (aligned with
    /// `steps`; empty when the BGP exceeds the planner's 64-pattern graph
    /// limit).
    pub prefix_est: Vec<f64>,
    /// Which algorithm produced the order.
    pub method: OrderMethod,
    /// The join graph over `steps` (same indices), for mid-query
    /// re-planning. Empty past the 64-pattern limit.
    pub graph: JoinGraph,
}

/// The single ordering core behind every engine (tentpole of the
/// cost-based-planning PR): canonicalize the input order, build the join
/// graph, then let [`cost::plan_order`] choose DP or greedy.
///
/// Canonicalization sorts by the greedy criteria (bound count desc, table
/// size asc) and finally by the pattern's text — so exact ties no longer
/// depend on the order the query author wrote the patterns in, making
/// compiled plans permutation-invariant.
pub fn order_steps_cost_based(
    mut steps: Vec<TpPlan>,
    stats: Option<(&Catalog, &Dictionary)>,
    cost_model: &CostModel,
    dp_max: usize,
) -> OrderedSteps {
    steps.sort_by(|a, b| {
        b.tp.bound_count()
            .cmp(&a.tp.bound_count())
            .then(a.size.cmp(&b.size))
            .then_with(|| a.tp.to_string().cmp(&b.tp.to_string()))
    });
    if steps.len() > 64 {
        // Beyond the graph's u64 adjacency masks: greedy over var sets,
        // no selectivity model (and hence no replan estimates).
        return OrderedSteps {
            steps: order_steps_large(steps),
            prefix_est: Vec::new(),
            method: OrderMethod::Greedy,
            graph: JoinGraph::default(),
        };
    }
    let graph = JoinGraph::build(&steps, stats);
    let planned = cost::plan_order(&graph, cost_model, dp_max);
    let steps: Vec<TpPlan> = planned.order.iter().map(|&i| steps[i].clone()).collect();
    // Rebuild the graph over the final order so the executor's node
    // indices line up with step positions.
    let graph = JoinGraph::build(&steps, stats);
    OrderedSteps {
        steps,
        prefix_est: planned.prefix_est,
        method: planned.method,
        graph,
    }
}

/// Builds the join graph over an externally fixed order and evaluates the
/// prefix cardinality estimates along it.
fn graph_for_order(
    steps: &[TpPlan],
    stats: Option<(&Catalog, &Dictionary)>,
) -> (JoinGraph, Vec<f64>) {
    if steps.len() > 64 {
        return (JoinGraph::default(), Vec::new());
    }
    let graph = JoinGraph::build(steps, stats);
    let mut prefix_est = Vec::with_capacity(steps.len());
    let mut card = 0.0;
    let mut mask = 0u64;
    for i in 0..steps.len() {
        card = if i == 0 {
            graph.nodes[0].est_rows
        } else {
            graph.extend_card(card, mask, i)
        };
        mask |= 1u64 << i;
        prefix_est.push(card);
    }
    (graph, prefix_est)
}

/// Greedy ordering for BGPs too large for the join graph (> 64 patterns):
/// the paper's Algorithm 4 over variable sets, including this PR's
/// cross-join fix (a forced cross join picks the smallest table, not the
/// most-bound pattern — bound counts say nothing about a cross product's
/// size).
fn order_steps_large(mut remaining: Vec<TpPlan>) -> Vec<TpPlan> {
    let mut ordered = Vec::with_capacity(remaining.len());
    let mut bound_vars: FxHashSet<String> = FxHashSet::default();
    while !remaining.is_empty() {
        let connected = |p: &TpPlan| p.tp.vars().iter().any(|v| bound_vars.contains(*v));
        let (candidate_set, forced_cross): (Vec<usize>, bool) = {
            let conn: Vec<usize> = (0..remaining.len())
                .filter(|&i| bound_vars.is_empty() || connected(&remaining[i]))
                .collect();
            if conn.is_empty() {
                ((0..remaining.len()).collect(), true)
            } else {
                (conn, false)
            }
        };
        // First minimum wins (manual loop: `Iterator::min_by` keeps the
        // *last* of equal elements; with the canonical pre-sort in
        // `order_steps_cost_based`, first-wins means canonical-wins).
        let mut best = candidate_set[0];
        for &i in &candidate_set[1..] {
            let (cur, cand) = (&remaining[best], &remaining[i]);
            let better = if forced_cross {
                cand.size.cmp(&cur.size).is_lt()
            } else {
                cand.tp
                    .bound_count()
                    .cmp(&cur.tp.bound_count()) // more bound values first
                    .reverse()
                    .then(cand.size.cmp(&cur.size)) // then smaller tables first
                    .is_lt()
            };
            if better {
                best = i;
            }
        }
        let step = remaining.remove(best);
        for v in step.tp.vars() {
            bound_vars.insert(v.to_string());
        }
        ordered.push(step);
    }
    ordered
}

/// Orders raw triple patterns for engines without per-pattern table
/// statistics (triples-table, centralized, batch baselines): the same
/// ordering core as the S2RDF engine — cost-based DP up to `dp_max`
/// patterns, greedy beyond — with a caller-provided size estimate and the
/// containment default in place of ExtVP selectivities.
pub fn order_patterns_by<F: Fn(&TriplePattern) -> usize>(
    bgp: &[TriplePattern],
    estimate: F,
    dp_max: usize,
) -> Vec<TriplePattern> {
    let steps: Vec<TpPlan> = bgp
        .iter()
        .map(|tp| TpPlan {
            tp: tp.clone(),
            source: TableSource::TriplesTable,
            size: estimate(tp),
            sf: 1.0,
            extra_reducers: Vec::new(),
        })
        .collect();
    order_steps_cost_based(steps, None, &CostModel::default(), dp_max)
        .steps
        .into_iter()
        .map(|s| s.tp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Correlation, ExtVpKey};
    use s2rdf_model::Term;
    use s2rdf_sparql::TermPattern;

    fn v(name: &str) -> TermPattern {
        TermPattern::Var(name.into())
    }

    fn p(name: &str) -> TermPattern {
        TermPattern::Term(Term::iri(name))
    }

    fn fig11() -> (Dictionary, Catalog) {
        let mut dict = Dictionary::new();
        let follows = dict.intern(&Term::iri("follows"));
        let likes = dict.intern(&Term::iri("likes"));
        let mut cat = Catalog::new(7, 1.0, true);
        cat.set_vp_size(follows, 4);
        cat.set_vp_size(likes, 3);
        cat.set_extvp(ExtVpKey::new(Correlation::SS, follows, likes), 2, true);
        cat.set_extvp(ExtVpKey::new(Correlation::OS, follows, follows), 2, true);
        cat.set_extvp(ExtVpKey::new(Correlation::SO, follows, follows), 3, true);
        cat.set_extvp(ExtVpKey::new(Correlation::OS, follows, likes), 1, true);
        cat.set_extvp(ExtVpKey::new(Correlation::SO, likes, follows), 1, true);
        cat.set_extvp(ExtVpKey::new(Correlation::SS, likes, follows), 3, false);
        (dict, cat)
    }

    fn q1() -> Vec<TriplePattern> {
        vec![
            TriplePattern::new(v("x"), p("likes"), v("w")),
            TriplePattern::new(v("x"), p("follows"), v("y")),
            TriplePattern::new(v("y"), p("follows"), v("z")),
            TriplePattern::new(v("z"), p("likes"), v("w")),
        ]
    }

    #[test]
    fn unoptimized_keeps_query_order() {
        let (dict, cat) = fig11();
        let plan = compile_bgp(
            &q1(),
            &cat,
            &dict,
            CompileOptions {
                optimize_join_order: false,
                ..Default::default()
            },
        );
        let order: Vec<&TriplePattern> = plan.steps.iter().map(|s| &s.tp).collect();
        assert_eq!(order, q1().iter().collect::<Vec<_>>());
        assert_eq!(plan.order_method, OrderMethod::Input);
        // Prefix estimates are still computed for the ablation plan.
        assert_eq!(plan.prefix_est.len(), 4);
    }

    /// The paper's Fig. 12: join-order optimization starts with the two
    /// smallest tables (TP3 with SF 0.25, then TP4 with SF 0.33). The DP
    /// planner agrees with the paper's greedy choice on this query.
    #[test]
    fn fig12_join_order() {
        let (dict, cat) = fig11();
        let bgp = q1();
        let plan = compile_bgp(&bgp, &cat, &dict, CompileOptions::default());
        assert!(!plan.statically_empty);
        assert_eq!(plan.steps.len(), 4);
        assert_eq!(plan.order_method, OrderMethod::Dp);
        // First step: TP3 (size 1).
        assert_eq!(plan.steps[0].tp, bgp[2]);
        assert_eq!(plan.steps[0].size, 1);
        // Second: TP4 (size 1, connected via ?z).
        assert_eq!(plan.steps[1].tp, bgp[3]);
        // Third: TP2 (size 2, connected via ?y).
        assert_eq!(plan.steps[2].tp, bgp[1]);
        // Last: TP1 (size 3).
        assert_eq!(plan.steps[3].tp, bgp[0]);
        // Every prefix carries a cardinality estimate for the executor's
        // observed-vs-estimated feedback.
        assert_eq!(plan.prefix_est.len(), 4);
        assert!(plan.prefix_est.iter().all(|&e| e > 0.0));
    }

    /// Greedy (dp_max = 0) reproduces the paper's Algorithm 4 order.
    #[test]
    fn fig12_join_order_greedy() {
        let (dict, cat) = fig11();
        let bgp = q1();
        let plan = compile_bgp(
            &bgp,
            &cat,
            &dict,
            CompileOptions {
                dp_max_patterns: 0,
                ..Default::default()
            },
        );
        assert_eq!(plan.order_method, OrderMethod::Greedy);
        let order: Vec<&TriplePattern> = plan.steps.iter().map(|s| &s.tp).collect();
        assert_eq!(order, vec![&bgp[2], &bgp[3], &bgp[1], &bgp[0]]);
    }

    #[test]
    fn bound_values_take_priority() {
        let (dict, cat) = fig11();
        // A pattern with a bound subject runs first even though its table
        // is larger.
        let bgp = vec![
            TriplePattern::new(v("a"), p("likes"), v("b")),
            TriplePattern::new(TermPattern::Term(Term::iri("likes")), p("follows"), v("a")),
        ];
        let plan = compile_bgp(&bgp, &cat, &dict, CompileOptions::default());
        assert_eq!(plan.steps[0].tp.bound_count(), 2);
    }

    #[test]
    fn cross_join_avoided() {
        let (dict, cat) = fig11();
        // Disconnected in the middle: ?a…?b then ?x…?y then ?b…?x bridges.
        let bgp = vec![
            TriplePattern::new(v("a"), p("follows"), v("b")),
            TriplePattern::new(v("x"), p("likes"), v("y")),
            TriplePattern::new(v("b"), p("follows"), v("x")),
        ];
        for dp_max in [0, 10] {
            let plan = compile_bgp(
                &bgp,
                &cat,
                &dict,
                CompileOptions {
                    dp_max_patterns: dp_max,
                    ..Default::default()
                },
            );
            // Whatever starts, each later step must share a variable with
            // the accumulated set.
            let mut seen: Vec<String> = plan.steps[0]
                .tp
                .vars()
                .iter()
                .map(|s| s.to_string())
                .collect();
            for step in &plan.steps[1..] {
                assert!(
                    step.tp.vars().iter().any(|v| seen.contains(&v.to_string())),
                    "cross join in plan (dp_max {dp_max})"
                );
                seen.extend(step.tp.vars().iter().map(|s| s.to_string()));
            }
        }
    }

    /// Regression test for the forced-cross-join comparator: with a
    /// two-component BGP, once the first component is exhausted the
    /// planner must bridge with the *smallest* table of the next
    /// component, not the most-bound pattern. The old comparator picked
    /// the bound huge table and cross-joined it against the accumulator.
    #[test]
    fn forced_cross_join_prefers_smallest_table() {
        // Component one: a single fully bound pattern (chosen first).
        // Component two: a huge table with 2 bound positions vs a tiny one
        // with 1.
        let bgp = vec![
            TriplePattern::new(p("A"), p("isa"), p("B")),
            TriplePattern::new(p("C"), p("big"), v("x")),
            TriplePattern::new(v("x"), p("small"), v("y")),
        ];
        let est = |tp: &TriplePattern| {
            if tp.p == p("big") {
                1_000_000
            } else if tp.p == p("small") {
                5
            } else {
                1
            }
        };
        // Greedy path (dp_max 0): the fix under test.
        let ordered = order_patterns_by(&bgp, est, 0);
        assert_eq!(ordered[0], bgp[0]);
        assert_eq!(
            ordered[1], bgp[2],
            "forced cross join must bridge with the smallest table"
        );
        assert_eq!(ordered[2], bgp[1]);
        // DP path agrees: the cross product with 5 rows is cheaper than
        // one with a million.
        let dp = order_patterns_by(&bgp, est, 10);
        assert_eq!(dp, ordered);
    }

    #[test]
    fn empty_plan_from_statistics() {
        let (dict, cat) = fig11();
        let bgp = vec![
            TriplePattern::new(v("a"), p("likes"), v("b")),
            TriplePattern::new(v("b"), p("likes"), v("c")),
        ];
        let plan = compile_bgp(&bgp, &cat, &dict, CompileOptions::default());
        assert!(plan.statically_empty);
    }

    #[test]
    fn order_patterns_by_estimate() {
        let bgp = vec![
            TriplePattern::new(v("a"), p("big"), v("b")),
            TriplePattern::new(v("b"), p("small"), v("c")),
        ];
        for dp_max in [0, 10] {
            let ordered =
                order_patterns_by(&bgp, |tp| if tp.p == p("big") { 1000 } else { 1 }, dp_max);
            assert_eq!(ordered[0].p, p("small"));
        }
    }

    /// Compiled plans are permutation-invariant: shuffling the BGP's
    /// written order never changes the chosen join order, even for
    /// patterns that tie on every greedy criterion (the canonical
    /// pattern-text tie-break).
    #[test]
    fn plans_are_permutation_invariant() {
        let (dict, cat) = fig11();
        let bgp = q1();
        let reference = compile_bgp(&bgp, &cat, &dict, CompileOptions::default());
        let ref_order: Vec<&TriplePattern> = reference.steps.iter().map(|s| &s.tp).collect();
        // All 24 permutations of Q1.
        let perms = permutations(&[0, 1, 2, 3]);
        for perm in perms {
            let shuffled: Vec<TriplePattern> = perm.iter().map(|&i| bgp[i].clone()).collect();
            for dp_max in [0, 10] {
                let plan = compile_bgp(
                    &shuffled,
                    &cat,
                    &dict,
                    CompileOptions {
                        dp_max_patterns: dp_max,
                        ..Default::default()
                    },
                );
                let order: Vec<&TriplePattern> = plan.steps.iter().map(|s| &s.tp).collect();
                assert_eq!(order, ref_order, "perm {perm:?} dp_max {dp_max}");
            }
        }
    }

    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut tail in permutations(&rest) {
                tail.insert(0, x);
                out.push(tail);
            }
        }
        out
    }
}
