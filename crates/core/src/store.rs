//! The persistent S2RDF database: VP + ExtVP tables, the triples table,
//! the dictionary, and the statistics catalog.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use rustc_hash::{FxHashMap, FxHashSet};

use s2rdf_columnar::{Bitmap, ColumnarError, FaultInjector, Table, TableStore};
use s2rdf_model::{Dictionary, Graph, Term, TermId};

use crate::catalog::{Catalog, Correlation, ExtVpKey};
use crate::engines::s2rdf::S2rdfEngine;
use crate::engines::SparqlEngine;
use crate::error::CoreError;
use crate::exec::{Explain, QueryOptions, Solutions};
use crate::layout::extvp::{
    build_extvp, compute_partition, compute_partition_with, ExtVpBuildOptions, ExtVpMode,
    ExtVpStorage,
};
use crate::layout::{
    extvp_table_name, triples_table::build_triples_table, vp::build_vp, vp_table_name, TT_NAME,
};

/// Options controlling store construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Selectivity-factor threshold `SF_TH` (paper §5.3): only ExtVP tables
    /// with `SF < threshold` are materialized. `1.0` (the default) stores
    /// every proper reduction; `0.0` yields a plain VP store with ExtVP
    /// statistics.
    pub threshold: f64,
    /// Whether to compute ExtVP at all. `false` builds the paper's
    /// "S2RDF VP" baseline configuration.
    pub build_extvp: bool,
    /// Physical representation of the ExtVP partitions (tables, bitmaps,
    /// or lazy on-demand materialization).
    pub mode: ExtVpMode,
    /// Also precompute OO correlations (the paper's §5.2 opt-in design
    /// choice).
    pub include_oo: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threshold: 1.0,
            build_extvp: true,
            mode: ExtVpMode::Materialized,
            include_oo: false,
        }
    }
}

/// An S2RDF store over one RDF dataset.
///
/// Freshly [`build`](S2rdfStore::build)-t stores hold every table in
/// memory. [`load`](S2rdfStore::load)-ed stores are *demand-driven*: only
/// the manifest, catalog and dictionary are read eagerly (plus a raw CRC
/// sweep over the ground-truth triples/VP files); table bodies stay on
/// disk behind `disk` and are decoded — and checksum-verified — on first
/// access, the shared-memory analogue of Spark reading Parquet column
/// chunks per query rather than at session start.
#[derive(Debug)]
pub struct S2rdfStore {
    dict: Dictionary,
    tt: Arc<Table>,
    /// In-memory VP tables (built stores). Empty for loaded stores, which
    /// serve VP bodies on demand from `disk`.
    vp: FxHashMap<TermId, Arc<Table>>,
    extvp: ExtVpStorage,
    /// Backing table store of a loaded database: serves VP and ExtVP
    /// bodies lazily, with an internal `Arc<Table>` cache.
    disk: Option<TableStore>,
    /// Cache for lazily computed partitions (the "pay as you go" mode).
    lazy_cache: RwLock<FxHashMap<ExtVpKey, Arc<Table>>>,
    catalog: Catalog,
    /// ExtVP partitions whose persisted form failed verification (checksum
    /// mismatch, corrupt file). Discovered on first touch under lazy
    /// loading (or by the sweep in [`S2rdfStore::quarantined`]); queries
    /// transparently fall back to the VP tables for these and
    /// [`S2rdfStore::verify_and_repair`] rebuilds them.
    quarantine: RwLock<FxHashSet<ExtVpKey>>,
    /// One-shot flag for the corruption sweep behind
    /// [`S2rdfStore::quarantined`].
    swept: AtomicBool,
    /// Optional deterministic fault injection on the partition access path
    /// (see [`s2rdf_columnar::fault`]).
    faults: Option<Arc<FaultInjector>>,
}

impl S2rdfStore {
    /// Builds a store from a graph (the paper's data load phase, Table 2).
    pub fn build(graph: &Graph, options: &BuildOptions) -> S2rdfStore {
        let tt = build_triples_table(graph);
        let vp: FxHashMap<TermId, Arc<Table>> = build_vp(graph)
            .into_iter()
            .map(|(p, t)| (p, Arc::new(t)))
            .collect();
        let mut catalog = Catalog::new(graph.len(), options.threshold, options.build_extvp);
        for (&p, table) in &vp {
            catalog.set_vp_size(p, table.num_rows());
        }
        let extvp = if options.build_extvp {
            build_extvp(
                graph,
                &vp,
                &mut catalog,
                ExtVpBuildOptions {
                    threshold: options.threshold,
                    mode: options.mode,
                    include_oo: options.include_oo,
                },
            )
        } else {
            ExtVpStorage::None
        };
        S2rdfStore {
            dict: graph.dict().clone(),
            tt: Arc::new(tt),
            vp,
            extvp,
            disk: None,
            lazy_cache: RwLock::new(FxHashMap::default()),
            catalog,
            quarantine: RwLock::new(FxHashSet::default()),
            swept: AtomicBool::new(true), // nothing on disk to sweep
            faults: None,
        }
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The statistics catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Catalog cardinality estimate for a compiled table source, before
    /// any scan: exactly the number the adaptive join planner would see.
    /// Costs one catalog lookup — no table is touched.
    pub fn estimated_rows(&self, source: &crate::compiler::TableSource) -> usize {
        use crate::compiler::TableSource;
        match source {
            TableSource::TriplesTable => self.catalog.total_triples,
            TableSource::Vp(p) => self.catalog.vp_size(*p),
            TableSource::ExtVp(key) => self.catalog.extvp_stat(key).map(|s| s.count).unwrap_or(0),
            TableSource::Empty => 0,
        }
    }

    /// The ExtVP storage mode of this store.
    pub fn mode(&self) -> ExtVpMode {
        match &self.extvp {
            ExtVpStorage::Rows(_) | ExtVpStorage::Disk | ExtVpStorage::None => {
                ExtVpMode::Materialized
            }
            ExtVpStorage::Bits(_) => ExtVpMode::BitVector,
            ExtVpStorage::Lazy => ExtVpMode::Lazy,
        }
    }

    /// The base triples table.
    pub fn triples_table(&self) -> &Table {
        &self.tt
    }

    /// A VP table by predicate id. Infallible convenience over
    /// [`S2rdfStore::try_vp_table`]: transient read errors surface as
    /// `None` (callers that must distinguish use the fallible variant).
    pub fn vp_table(&self, p: TermId) -> Option<Arc<Table>> {
        self.try_vp_table(p).ok().flatten()
    }

    /// A VP table by predicate id, loading the body from disk on first
    /// access for [`S2rdfStore::load`]-ed stores. `Ok(None)` means the
    /// predicate has no VP table; `Err` is a read failure worth
    /// surfacing/retrying.
    pub fn try_vp_table(&self, p: TermId) -> Result<Option<Arc<Table>>, CoreError> {
        if let Some(table) = self.vp.get(&p) {
            return Ok(Some(table.clone()));
        }
        let Some(disk) = &self.disk else {
            return Ok(None);
        };
        let name = vp_table_name(&self.dict, p);
        if !disk.contains(&name) {
            return Ok(None);
        }
        Ok(Some(disk.load(&name)?))
    }

    /// Attaches (or detaches) a deterministic fault injector on the ExtVP
    /// partition access path, for resilience testing.
    pub fn set_fault_injector(&mut self, faults: Option<Arc<FaultInjector>>) {
        self.faults = faults;
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// ExtVP partitions quarantined because their persisted form was
    /// corrupt, sorted for stable output.
    ///
    /// Under demand-driven loading corruption is normally discovered on
    /// first touch; this accessor additionally runs a one-time raw CRC
    /// sweep over the on-disk ExtVP files (no decode, no caching) so that
    /// administrative callers see the full damage set without having to
    /// query every partition first.
    pub fn quarantined(&self) -> Vec<ExtVpKey> {
        self.ensure_quarantine_sweep();
        let mut keys: Vec<ExtVpKey> = self.quarantine.read().iter().copied().collect();
        keys.sort();
        keys
    }

    /// One-shot raw-CRC sweep of on-disk ExtVP bodies feeding the
    /// quarantine set (see [`S2rdfStore::quarantined`]).
    fn ensure_quarantine_sweep(&self) {
        if self.swept.swap(true, Ordering::SeqCst) {
            return;
        }
        let Some(disk) = &self.disk else { return };
        if !matches!(self.extvp, ExtVpStorage::Disk) {
            return;
        }
        let mut quarantine = self.quarantine.write();
        for name in disk.names() {
            if name.starts_with("ExtVP_") && disk.verify_checksum(&name).is_err() {
                if let Ok(key) = parse_extvp_name(&name, &self.dict) {
                    quarantine.insert(key);
                }
            }
        }
    }

    /// Resolves an ExtVP partition to a queryable table, whatever the
    /// storage mode: materialized tables are shared, bitmaps are gathered
    /// on access, and lazy partitions are computed by semi-join on first
    /// use and cached (paper §7's "pay as you go" deployment).
    ///
    /// Returns `None` for quarantined partitions (corrupt at load time);
    /// callers fall back to the VP table, which is always a superset.
    pub fn extvp_table(&self, key: &ExtVpKey) -> Option<Arc<Table>> {
        if self.quarantine.read().contains(key) {
            return None;
        }
        match &self.extvp {
            ExtVpStorage::None => None,
            ExtVpStorage::Rows(tables) => tables.get(key).cloned(),
            ExtVpStorage::Disk => self.disk_extvp(key).ok().flatten(),
            ExtVpStorage::Bits(bits) => {
                let bitmap = bits.get(key)?;
                let base = self.vp_table(TermId(key.p1))?;
                Some(Arc::new(bitmap.gather(&base)))
            }
            ExtVpStorage::Lazy => {
                let eligible = self.catalog.extvp_stat(key)?.materialized;
                if !eligible {
                    return None;
                }
                if let Some(hit) = self.lazy_cache.read().get(key) {
                    return Some(hit.clone());
                }
                let computed = Arc::new(compute_partition_with(|p| self.vp_table(p), key)?);
                self.lazy_cache
                    .write()
                    .entry(*key)
                    .or_insert_with(|| computed.clone());
                Some(computed)
            }
        }
    }

    /// Demand-loads an on-disk ExtVP body. `Ok(None)` when the partition
    /// was never materialized *or* its body is corrupt (the partition is
    /// quarantined as a side effect — non-retryable, the engine degrades
    /// to VP); `Err` for transient I/O failures worth retrying.
    fn disk_extvp(&self, key: &ExtVpKey) -> Result<Option<Arc<Table>>, CoreError> {
        let Some(disk) = &self.disk else {
            return Ok(None);
        };
        let name = extvp_table_name(&self.dict, key);
        if !disk.contains(&name) {
            return Ok(None);
        }
        match disk.load(&name) {
            Ok(table) => Ok(Some(table)),
            Err(ColumnarError::ChecksumMismatch { .. } | ColumnarError::CorruptFile(_)) => {
                // Derived data failed verification on first touch: a
                // permanent fault. Quarantine so the planner's fallback is
                // stable, never an error the engine keeps retrying.
                self.quarantine.write().insert(*key);
                Ok(None)
            }
            Err(e) => Err(CoreError::Columnar(e)),
        }
    }

    /// Fallible variant of [`S2rdfStore::extvp_table`] exercised by the
    /// query engine: an attached fault injector can fail the access
    /// (modelling a lost partition read), which the engine retries with
    /// backoff before degrading to the VP table.
    ///
    /// `Ok(None)` is *non-retryable* (the partition is not materialized or
    /// is quarantined); `Err` is a transient access failure worth retrying.
    pub fn try_extvp_table(&self, key: &ExtVpKey) -> Result<Option<Arc<Table>>, CoreError> {
        if let Some(faults) = &self.faults {
            faults
                .before_read(&extvp_table_name(&self.dict, key))
                .map_err(|e| CoreError::Columnar(e.into()))?;
        }
        if matches!(self.extvp, ExtVpStorage::Disk) && !self.quarantine.read().contains(key) {
            // Preserve the transient/permanent distinction of demand
            // loading: I/O errors are retryable `Err`s, corruption
            // quarantines and returns `Ok(None)`.
            return self.disk_extvp(key);
        }
        Ok(self.extvp_table(key))
    }

    /// Number of materialized (or materializable, for lazy stores) ExtVP
    /// partitions.
    pub fn num_extvp_tables(&self) -> usize {
        match &self.extvp {
            ExtVpStorage::None => 0,
            ExtVpStorage::Rows(tables) => tables.len(),
            ExtVpStorage::Bits(bits) => bits.len(),
            // Counted from the manifest — no body is decoded for this.
            ExtVpStorage::Disk => self
                .disk
                .as_ref()
                .map(|d| d.names().iter().filter(|n| n.starts_with("ExtVP_")).count())
                .unwrap_or(0),
            ExtVpStorage::Lazy => self
                .catalog
                .extvp_stats()
                .filter(|(_, s)| s.materialized)
                .count(),
        }
    }

    /// Total tuples across VP tables (= |G|). Answered from the catalog so
    /// that demand-driven stores need not load any VP body for statistics.
    pub fn vp_tuples(&self) -> usize {
        self.catalog.vp_sizes().map(|(_, n)| n).sum()
    }

    /// Total (logical) tuples across materialized ExtVP partitions.
    /// Statistics-only: answered from catalog/bitmap metadata, never by
    /// decoding table bodies.
    pub fn extvp_tuples(&self) -> usize {
        match &self.extvp {
            ExtVpStorage::None => 0,
            ExtVpStorage::Rows(tables) => tables.values().map(|t| t.num_rows()).sum(),
            ExtVpStorage::Bits(bits) => bits.values().map(Bitmap::count_ones).sum(),
            ExtVpStorage::Disk | ExtVpStorage::Lazy => self
                .catalog
                .extvp_stats()
                .filter(|(_, s)| s.materialized)
                .map(|(_, s)| s.count)
                .sum(),
        }
    }

    /// In-memory bytes the ExtVP representation occupies (8 B/tuple for
    /// tables, one bit per VP row for bitmaps, cache contents for lazy and
    /// disk-backed stores) — the quantity the paper's §8 bit-vector idea
    /// targets.
    pub fn extvp_payload_bytes(&self) -> usize {
        match &self.extvp {
            ExtVpStorage::None => 0,
            ExtVpStorage::Rows(tables) => tables.values().map(|t| t.byte_size()).sum(),
            ExtVpStorage::Bits(bits) => bits.values().map(Bitmap::byte_size).sum(),
            // Approximation: the bodies resident in the demand-load cache
            // (includes TT/VP bodies cached by the same store).
            ExtVpStorage::Disk => self
                .disk
                .as_ref()
                .map(|d| d.cached_bytes() as usize)
                .unwrap_or(0),
            ExtVpStorage::Lazy => self.lazy_cache.read().values().map(|t| t.byte_size()).sum(),
        }
    }

    /// An engine over this store. `use_extvp = false` forces the VP-only
    /// execution path (the paper's "S2RDF VP" rows).
    pub fn engine(&self, use_extvp: bool) -> S2rdfEngine<'_> {
        S2rdfEngine::new(self, use_extvp && self.catalog.extvp_built)
    }

    /// Convenience: parse and run a query with default options on the best
    /// available layout.
    pub fn query(&self, sparql: &str) -> Result<Solutions, CoreError> {
        self.engine(true).query(sparql)
    }

    /// Convenience: run with options, returning the execution trace too.
    pub fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError> {
        self.engine(true).query_opt(sparql, options)
    }

    /// Persists the store into a directory (tables, bitmaps, dictionary,
    /// catalog).
    pub fn save(&self, dir: &Path) -> Result<(), CoreError> {
        std::fs::create_dir_all(dir).map_err(|e| CoreError::Catalog(e.to_string()))?;
        let mut tables = TableStore::open(dir.join("tables"))?;
        tables.save(TT_NAME, &self.tt)?;
        // Catalog-driven so demand-driven stores (empty in-memory VP map)
        // round-trip too: each body is pulled — possibly from disk — and
        // re-persisted.
        let preds: Vec<TermId> = self.catalog.vp_sizes().map(|(p, _)| p).collect();
        for p in preds {
            debug_assert!(
                self.dict.term(p).is_iri(),
                "predicates must be IRIs for name round-tripping"
            );
            let table = self.try_vp_table(p)?.ok_or_else(|| {
                CoreError::Catalog(format!("VP table for predicate {} missing", p.0))
            })?;
            tables.save(&vp_table_name(&self.dict, p), &table)?;
        }
        match &self.extvp {
            ExtVpStorage::Rows(rows) => {
                for (key, table) in rows {
                    tables.save(&extvp_table_name(&self.dict, key), table)?;
                }
            }
            ExtVpStorage::Disk => {
                if let Some(disk) = &self.disk {
                    for name in disk.names() {
                        if name.starts_with("ExtVP_") {
                            let table = disk.load(&name)?;
                            tables.save(&name, &table)?;
                        }
                    }
                }
            }
            ExtVpStorage::Bits(bits) => {
                let bm_dir = dir.join("bitmaps");
                std::fs::create_dir_all(&bm_dir).map_err(|e| CoreError::Catalog(e.to_string()))?;
                let mut manifest = BufWriter::new(
                    std::fs::File::create(bm_dir.join("manifest.tsv"))
                        .map_err(|e| CoreError::Catalog(e.to_string()))?,
                );
                for (i, (key, bitmap)) in bits.iter().enumerate() {
                    let file = format!("b{i:06}.bits");
                    std::fs::write(bm_dir.join(&file), bitmap.to_bytes())
                        .map_err(|e| CoreError::Catalog(e.to_string()))?;
                    writeln!(manifest, "{}\t{}", extvp_table_name(&self.dict, key), file)
                        .map_err(|e| CoreError::Catalog(e.to_string()))?;
                }
                manifest
                    .flush()
                    .map_err(|e| CoreError::Catalog(e.to_string()))?;
            }
            ExtVpStorage::Lazy | ExtVpStorage::None => {}
        }
        self.catalog.save(&dir.join("catalog.json"))?;
        // Dictionary: one term per line in N-Triples syntax, id = line no.
        let file = std::fs::File::create(dir.join("dictionary.nt"))
            .map_err(|e| CoreError::Catalog(e.to_string()))?;
        let mut out = BufWriter::new(file);
        for (_, term) in self.dict.iter() {
            writeln!(out, "{term}").map_err(|e| CoreError::Catalog(e.to_string()))?;
        }
        out.flush().map_err(|e| CoreError::Catalog(e.to_string()))?;
        Ok(())
    }

    /// Loads a store previously written by [`S2rdfStore::save`].
    ///
    /// Corruption of the triples table or a VP table is fatal (they are the
    /// ground truth), but a corrupt ExtVP partition — a derived semi-join
    /// reduction — is *quarantined* instead: the store loads, queries over
    /// the damaged partition transparently degrade to the VP table with
    /// identical results, and [`S2rdfStore::verify_and_repair`] can rebuild
    /// the partition from its definition. This mirrors Spark recomputing a
    /// lost RDD partition from lineage rather than failing the job.
    pub fn load(dir: &Path) -> Result<S2rdfStore, CoreError> {
        let catalog = Catalog::load(&dir.join("catalog.json"))?;
        let mode = ExtVpMode::from_label(&catalog.extvp_mode)
            .ok_or_else(|| CoreError::Catalog(format!("bad mode {}", catalog.extvp_mode)))?;
        let dict = load_dictionary(dir)?;
        let tables = TableStore::open(dir.join("tables"))?;
        // The ground truth (triples table + VP tables) must be intact for
        // the store to be usable at all, so sweep its raw CRCs up front —
        // a footer check per file, no body is decoded or cached. Derived
        // ExtVP partitions are *not* swept here: they are verified on
        // first touch and quarantined then (demand-driven loading).
        tables.verify_checksum(TT_NAME)?;
        for name in tables.names() {
            if name.starts_with("VP/") {
                tables.verify_checksum(&name)?;
            }
        }
        let tt = tables.load(TT_NAME)?;
        let mut quarantine = FxHashSet::default();
        let extvp = if !catalog.extvp_built {
            ExtVpStorage::None
        } else {
            match mode {
                ExtVpMode::Materialized => ExtVpStorage::Disk,
                ExtVpMode::Lazy => ExtVpStorage::Lazy,
                ExtVpMode::BitVector => {
                    let bm_dir = dir.join("bitmaps");
                    let manifest = std::fs::read_to_string(bm_dir.join("manifest.tsv"))
                        .map_err(|e| CoreError::Catalog(e.to_string()))?;
                    let mut bits = FxHashMap::default();
                    for line in manifest.lines() {
                        let (name, file) = line
                            .split_once('\t')
                            .ok_or_else(|| CoreError::Catalog("bad bitmap manifest".to_string()))?;
                        let key = parse_extvp_name(name, &dict)?;
                        match std::fs::read(bm_dir.join(file))
                            .map_err(|e| CoreError::Catalog(e.to_string()))
                            .and_then(|data| Bitmap::from_bytes(&data).map_err(CoreError::from))
                        {
                            Ok(bitmap) => {
                                bits.insert(key, bitmap);
                            }
                            Err(_) => {
                                quarantine.insert(key);
                            }
                        }
                    }
                    ExtVpStorage::Bits(bits)
                }
            }
        };
        Ok(S2rdfStore {
            dict,
            tt,
            vp: FxHashMap::default(),
            extvp,
            disk: Some(tables),
            lazy_cache: RwLock::new(FxHashMap::default()),
            catalog,
            quarantine: RwLock::new(quarantine),
            swept: AtomicBool::new(false),
            faults: None,
        })
    }

    /// On-disk byte sizes by table family, for Tables 2 and 6. Returns
    /// `(tt, vp, extvp)` bytes from a saved store directory (bitmap files
    /// count toward the ExtVP family).
    pub fn disk_sizes(dir: &Path) -> Result<(u64, u64, u64), CoreError> {
        let tables = TableStore::open(dir.join("tables"))?;
        let (mut tt, mut vp, mut extvp) = (0, 0, 0);
        for name in tables.names() {
            let size = tables.file_size(&name)?;
            if name == TT_NAME {
                tt += size;
            } else if name.starts_with("VP/") {
                vp += size;
            } else if name.starts_with("ExtVP_") {
                extvp += size;
            }
        }
        let bm_dir = dir.join("bitmaps");
        if bm_dir.is_dir() {
            for entry in
                std::fs::read_dir(&bm_dir).map_err(|e| CoreError::Catalog(e.to_string()))?
            {
                let entry = entry.map_err(|e| CoreError::Catalog(e.to_string()))?;
                extvp += entry
                    .metadata()
                    .map_err(|e| CoreError::Catalog(e.to_string()))?
                    .len();
            }
        }
        Ok((tt, vp, extvp))
    }

    /// Scans a saved store for corrupt, missing or orphaned table files and
    /// repairs what is derivable: ExtVP partitions are semi-join reductions
    /// of the VP tables (paper §5.2), so a damaged partition is rebuilt
    /// from its definition and atomically rewritten — the offline analogue
    /// of Spark's lineage recovery. Orphaned files from interrupted saves
    /// are deleted. Damage to the triples table or a VP table (the ground
    /// truth) is reported as unrecoverable.
    pub fn verify_and_repair(dir: &Path) -> Result<RepairReport, CoreError> {
        let dict = load_dictionary(dir)?;
        let mut tables = TableStore::open(dir.join("tables"))?;
        let scan = tables.verify_all();
        let mut report = RepairReport {
            scanned: scan.ok.len() + scan.corrupt.len() + scan.missing.len(),
            ..RepairReport::default()
        };

        // Base VP tables, for rebuilding reductions. Corrupt VP tables are
        // themselves in the damage list and unrecoverable.
        let mut vp: FxHashMap<TermId, Arc<Table>> = FxHashMap::default();
        for name in &scan.ok {
            if let Some(term_text) = name.strip_prefix("VP/") {
                let term = Term::parse_ntriples(term_text)?;
                let p = dict
                    .id(&term)
                    .ok_or_else(|| CoreError::Catalog(format!("unknown predicate {term}")))?;
                vp.insert(p, tables.load(name)?);
            }
        }

        let damaged = scan.corrupt.iter().cloned().chain(
            scan.missing
                .iter()
                .map(|n| (n.clone(), "file missing".to_string())),
        );
        for (name, why) in damaged {
            if !name.starts_with("ExtVP_") {
                report.unrecoverable.push((name, why));
                continue;
            }
            let rebuilt = parse_extvp_name(&name, &dict)
                .ok()
                .and_then(|key| compute_partition(&vp, &key));
            match rebuilt {
                Some(table) => {
                    tables.save(&name, &table)?;
                    report.repaired.push(name);
                }
                None => report.unrecoverable.push((
                    name,
                    format!("{why}; base VP tables unavailable for rebuild"),
                )),
            }
        }

        for orphan in &scan.orphans {
            std::fs::remove_file(tables.root().join(orphan))
                .map_err(|e| CoreError::Catalog(e.to_string()))?;
            report.removed_orphans.push(orphan.clone());
        }

        // Re-open (clears the orphan list) and re-verify to confirm.
        let tables = TableStore::open(dir.join("tables"))?;
        report.clean_after = tables.verify_all().is_clean() && report.unrecoverable.is_empty();
        Ok(report)
    }
}

/// Outcome of [`S2rdfStore::verify_and_repair`].
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Manifest entries examined.
    pub scanned: usize,
    /// ExtVP partitions rebuilt from their VP base tables.
    pub repaired: Vec<String>,
    /// Damaged tables that could not be rebuilt (triples table, VP tables,
    /// or reductions whose base tables are themselves damaged), with the
    /// reason.
    pub unrecoverable: Vec<(String, String)>,
    /// Orphaned table files deleted.
    pub removed_orphans: Vec<String>,
    /// True if a final verification pass found the store fully clean.
    pub clean_after: bool,
}

/// Reads the dictionary file of a saved store (one N-Triples term per line,
/// id = line number).
fn load_dictionary(dir: &Path) -> Result<Dictionary, CoreError> {
    let file = std::fs::File::open(dir.join("dictionary.nt"))
        .map_err(|e| CoreError::Catalog(e.to_string()))?;
    let mut dict = Dictionary::new();
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| CoreError::Catalog(e.to_string()))?;
        dict.intern(&Term::parse_ntriples(&line)?);
    }
    Ok(dict)
}

/// Parses `ExtVP_<corr>/<p1>|<p2>` names back into keys. Predicates are
/// IRIs rendered as `<...>`, so the separator is the `|` between `>` and
/// `<`.
fn parse_extvp_name(name: &str, dict: &Dictionary) -> Result<ExtVpKey, CoreError> {
    let rest = name
        .strip_prefix("ExtVP_")
        .ok_or_else(|| CoreError::Catalog(format!("bad table name {name}")))?;
    let (corr_label, pair) = rest
        .split_once('/')
        .ok_or_else(|| CoreError::Catalog(format!("bad table name {name}")))?;
    let corr = match corr_label {
        "SS" => Correlation::SS,
        "OS" => Correlation::OS,
        "SO" => Correlation::SO,
        "OO" => Correlation::OO,
        other => return Err(CoreError::Catalog(format!("bad correlation {other}"))),
    };
    let sep = pair
        .find(">|<")
        .ok_or_else(|| CoreError::Catalog(format!("bad table name {name}")))?;
    let p1 = Term::parse_ntriples(&pair[..sep + 1])?;
    let p2 = Term::parse_ntriples(&pair[sep + 2..])?;
    let p1 = dict
        .id(&p1)
        .ok_or_else(|| CoreError::Catalog(format!("unknown predicate {p1}")))?;
    let p2 = dict
        .id(&p2)
        .ok_or_else(|| CoreError::Catalog(format!("unknown predicate {p2}")))?;
    Ok(ExtVpKey::new(corr, p1, p2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::Triple;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    const Q_CHAIN: &str = "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?w }";

    #[test]
    fn build_counts() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        assert_eq!(store.vp_tuples(), 7);
        assert_eq!(store.catalog().num_predicates(), 2);
        // Fig. 10: 5 green ExtVP tables for G1.
        assert_eq!(store.num_extvp_tables(), 5);
    }

    #[test]
    fn vp_only_build() {
        let store = S2rdfStore::build(
            &g1(),
            &BuildOptions {
                build_extvp: false,
                ..Default::default()
            },
        );
        assert_eq!(store.num_extvp_tables(), 0);
        assert!(!store.catalog().extvp_built);
        // Queries still work through VP.
        let s = store.query(Q_CHAIN).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn all_modes_answer_identically() {
        let reference = S2rdfStore::build(&g1(), &BuildOptions::default());
        let expected = reference.query(Q_CHAIN).unwrap().canonical();
        for mode in [ExtVpMode::BitVector, ExtVpMode::Lazy] {
            let store = S2rdfStore::build(
                &g1(),
                &BuildOptions {
                    mode,
                    ..Default::default()
                },
            );
            assert_eq!(store.num_extvp_tables(), reference.num_extvp_tables());
            assert_eq!(store.extvp_tuples(), reference.extvp_tuples());
            assert_eq!(
                store.query(Q_CHAIN).unwrap().canonical(),
                expected,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn bitvector_payload_is_smaller() {
        // With large VP tables the bitmap payload undercuts 8 B/tuple — on
        // tiny G1 the advantage is absent, so synthesize a wider graph.
        let mut triples = Vec::new();
        for i in 0..2000 {
            triples.push(t(
                &format!("u{i}"),
                "follows",
                &format!("u{}", (i + 1) % 2000),
            ));
        }
        for i in 0..500 {
            triples.push(t(&format!("u{i}"), "likes", &format!("m{}", i % 50)));
        }
        let g = Graph::from_triples(triples);
        let rows = S2rdfStore::build(&g, &BuildOptions::default());
        let bits = S2rdfStore::build(
            &g,
            &BuildOptions {
                mode: ExtVpMode::BitVector,
                ..Default::default()
            },
        );
        assert_eq!(rows.extvp_tuples(), bits.extvp_tuples());
        assert!(
            bits.extvp_payload_bytes() * 4 < rows.extvp_payload_bytes(),
            "bitmaps {}B vs tables {}B",
            bits.extvp_payload_bytes(),
            rows.extvp_payload_bytes()
        );
    }

    #[test]
    fn lazy_cache_fills_on_use() {
        let store = S2rdfStore::build(
            &g1(),
            &BuildOptions {
                mode: ExtVpMode::Lazy,
                ..Default::default()
            },
        );
        assert_eq!(store.extvp_payload_bytes(), 0); // nothing materialized yet
        let s = store.query(Q_CHAIN).unwrap();
        assert_eq!(s.len(), 1);
        assert!(store.extvp_payload_bytes() > 0); // warm cache
                                                  // Second run hits the cache and still agrees.
        assert_eq!(store.query(Q_CHAIN).unwrap().len(), 1);
    }

    #[test]
    fn oo_correlation_improves_oo_queries() {
        let store_oo = S2rdfStore::build(
            &g1(),
            &BuildOptions {
                include_oo: true,
                ..Default::default()
            },
        );
        let store_plain = S2rdfStore::build(&g1(), &BuildOptions::default());
        // ?a follows ?w . ?c likes ?w — an OO correlation.
        let q = "SELECT * WHERE { ?a <follows> ?w . ?c <likes> ?w }";
        let a = store_oo.query(q).unwrap();
        let b = store_plain.query(q).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        // With OO built, the follows-side scan reads the OO reduction
        // (follows tuples whose object is liked: only (B,D)? — objects of
        // likes are I1/I2, no follows object is liked, so SF = 0 and the
        // query is answered from statistics).
        let (_, explain) = store_oo
            .engine(true)
            .query_opt(q, &Default::default())
            .unwrap();
        assert!(explain.statically_empty);
        assert!(a.is_empty());
        // Without OO the plain store must execute the join.
        let (_, plain_explain) = store_plain
            .engine(true)
            .query_opt(q, &Default::default())
            .unwrap();
        assert!(!plain_explain.statically_empty);
    }

    #[test]
    fn save_load_roundtrip_all_modes() {
        for (idx, options) in [
            BuildOptions::default(),
            BuildOptions {
                mode: ExtVpMode::BitVector,
                ..Default::default()
            },
            BuildOptions {
                mode: ExtVpMode::Lazy,
                ..Default::default()
            },
            BuildOptions {
                include_oo: true,
                ..Default::default()
            },
        ]
        .iter()
        .enumerate()
        {
            let dir =
                std::env::temp_dir().join(format!("s2rdf-store-{}-{idx}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let store = S2rdfStore::build(&g1(), options);
            store.save(&dir).unwrap();
            let loaded = S2rdfStore::load(&dir).unwrap();
            assert_eq!(loaded.mode(), store.mode(), "mode {idx}");
            assert_eq!(loaded.vp_tuples(), store.vp_tuples());
            assert_eq!(loaded.extvp_tuples(), store.extvp_tuples());
            assert_eq!(loaded.num_extvp_tables(), store.num_extvp_tables());
            assert_eq!(loaded.catalog().oo_built, store.catalog().oo_built);
            assert_eq!(
                loaded.query(Q_CHAIN).unwrap().canonical(),
                store.query(Q_CHAIN).unwrap().canonical()
            );
            let (tt, vp, _) = S2rdfStore::disk_sizes(&dir).unwrap();
            assert!(tt > 0 && vp > 0);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
