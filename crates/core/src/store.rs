//! The persistent S2RDF database: VP + ExtVP tables, the triples table,
//! the dictionary, and the statistics catalog.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use rustc_hash::{FxHashMap, FxHashSet};

use s2rdf_columnar::{
    metric_counter, Bitmap, ColumnarError, CompressedTable, FaultInjector, Schema, Table,
    TableStore, Wal, WalStatus,
};
use s2rdf_model::{DeltaBatch, DeltaRecord, Dictionary, Graph, Term, TermId, Triple};

use crate::catalog::{Catalog, Correlation, ExtVpKey};
use crate::engines::s2rdf::S2rdfEngine;
use crate::engines::SparqlEngine;
use crate::error::CoreError;
use crate::exec::{Explain, QueryOptions, Solutions};
use crate::layout::extvp::{
    build_extvp, compute_partition, compute_partition_indices, compute_partition_with,
    ExtVpBuildOptions, ExtVpMode, ExtVpStorage,
};
use crate::layout::{
    extvp_table_name, triples_table::build_triples_table, vp::build_vp, vp_table_name, COL_O,
    COL_P, COL_S, TT_NAME,
};

/// Options controlling store construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Selectivity-factor threshold `SF_TH` (paper §5.3): only ExtVP tables
    /// with `SF < threshold` are materialized. `1.0` (the default) stores
    /// every proper reduction; `0.0` yields a plain VP store with ExtVP
    /// statistics.
    pub threshold: f64,
    /// Whether to compute ExtVP at all. `false` builds the paper's
    /// "S2RDF VP" baseline configuration.
    pub build_extvp: bool,
    /// Physical representation of the ExtVP partitions (tables, bitmaps,
    /// or lazy on-demand materialization).
    pub mode: ExtVpMode,
    /// Also precompute OO correlations (the paper's §5.2 opt-in design
    /// choice).
    pub include_oo: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threshold: 1.0,
            build_extvp: true,
            mode: ExtVpMode::Materialized,
            include_oo: false,
        }
    }
}

/// An S2RDF store over one RDF dataset.
///
/// Freshly [`build`](S2rdfStore::build)-t stores hold every table in
/// memory. [`load`](S2rdfStore::load)-ed stores are *demand-driven*: only
/// the manifest, catalog and dictionary are read eagerly (plus a raw CRC
/// sweep over the ground-truth triples/VP files); table bodies stay on
/// disk behind `disk` and are decoded — and checksum-verified — on first
/// access, the shared-memory analogue of Spark reading Parquet column
/// chunks per query rather than at session start.
#[derive(Debug)]
pub struct S2rdfStore {
    dict: Dictionary,
    tt: Arc<Table>,
    /// In-memory VP tables (built stores). Empty for loaded stores, which
    /// serve VP bodies on demand from `disk`.
    vp: FxHashMap<TermId, Arc<Table>>,
    extvp: ExtVpStorage,
    /// Backing table store of a loaded database: serves VP and ExtVP
    /// bodies lazily, with an internal `Arc<Table>` cache.
    disk: Option<TableStore>,
    /// Cache for lazily computed partitions (the "pay as you go" mode).
    lazy_cache: RwLock<FxHashMap<ExtVpKey, Arc<Table>>>,
    catalog: Catalog,
    /// ExtVP partitions whose persisted form failed verification (checksum
    /// mismatch, corrupt file). Discovered on first touch under lazy
    /// loading (or by the sweep in [`S2rdfStore::quarantined`]); queries
    /// transparently fall back to the VP tables for these and
    /// [`S2rdfStore::verify_and_repair`] rebuilds them.
    quarantine: RwLock<FxHashSet<ExtVpKey>>,
    /// One-shot flag for the corruption sweep behind
    /// [`S2rdfStore::quarantined`].
    swept: AtomicBool,
    /// Optional deterministic fault injection on the partition access path
    /// (see [`s2rdf_columnar::fault`]).
    faults: Option<Arc<FaultInjector>>,
    /// Durable-update bookkeeping: WAL handle, dirty sets, overlays (see
    /// the update subsystem below).
    update: UpdateState,
    /// Chunked-format write options applied to every table flush
    /// ([`S2rdfStore::save`], checkpoints).
    write_opts: s2rdf_columnar::WriteOptions,
    /// Write tables in the legacy v2 format (fixture generation and
    /// format-compatibility testing only).
    legacy_v2_writes: bool,
}

/// Mutable bookkeeping of the update subsystem.
///
/// Consistency note: every mutation (`insert`, `delete`, `checkpoint`)
/// takes `&mut self` on the store, so the borrow checker guarantees no
/// engine holds a snapshot across an update — an [`S2rdfEngine`] borrows
/// the store immutably for its whole life. Tables an engine already
/// resolved stay alive through their `Arc`s; the store swapping in new
/// `Arc`s cannot tear a running query.
#[derive(Debug, Default)]
struct UpdateState {
    /// The write-ahead log of a disk-backed store (absent for purely
    /// in-memory built stores, whose updates are not durable).
    wal: Option<Wal>,
    /// Directory the store was loaded from (checkpoint target).
    dir: Option<PathBuf>,
    /// Dictionary length already persisted in `dictionary.nt`.
    dict_persisted: usize,
    /// Triples table changed since the last checkpoint.
    tt_dirty: bool,
    /// VP partitions changed since the last checkpoint.
    vp_dirty: FxHashSet<TermId>,
    /// ExtVP partitions changed since the last checkpoint.
    extvp_dirty: FxHashSet<ExtVpKey>,
    /// Overlay over on-disk ExtVP bodies (Disk storage only):
    /// `Some(table)` is an updated body not yet flushed, `None` a partition
    /// dematerialized by the delta (pending file removal). Consulted before
    /// the table store on every access, so queries see updates immediately.
    extvp_overlay: FxHashMap<ExtVpKey, Option<Arc<Table>>>,
    /// Membership index over the triples table, built on first update and
    /// maintained since: makes replay idempotent (RDF graphs are sets).
    membership: Option<FxHashSet<(u32, u32, u32)>>,
    /// WAL records replayed when the store was opened.
    replayed: u64,
}

/// Outcome of one [`S2rdfStore::insert`]/[`S2rdfStore::delete`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Triples actually added (duplicates of existing triples are no-ops).
    pub inserted: usize,
    /// Triples actually removed (absent triples are no-ops).
    pub deleted: usize,
    /// ExtVP partitions recomputed delta-wise.
    pub extvp_recomputed: usize,
}

/// Outcome of one [`S2rdfStore::checkpoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Dirty tables flushed through the temp+rename path.
    pub tables_flushed: usize,
    /// Tables removed from disk (drained VP partitions, dematerialized
    /// ExtVP reductions).
    pub tables_removed: usize,
    /// Orphaned table files from interrupted earlier flushes deleted.
    pub orphans_removed: usize,
    /// Legacy-format (v1/v2) table files rewritten in the current chunked
    /// v3 format.
    pub tables_upgraded: usize,
    /// New dictionary terms persisted.
    pub dict_terms_appended: usize,
    /// WAL records dropped by the final truncation.
    pub wal_records_truncated: u64,
}

impl S2rdfStore {
    /// Builds a store from a graph (the paper's data load phase, Table 2).
    pub fn build(graph: &Graph, options: &BuildOptions) -> S2rdfStore {
        let tt = build_triples_table(graph);
        let vp: FxHashMap<TermId, Arc<Table>> = build_vp(graph)
            .into_iter()
            .map(|(p, t)| (p, Arc::new(t)))
            .collect();
        let mut catalog = Catalog::new(graph.len(), options.threshold, options.build_extvp);
        for (&p, table) in &vp {
            catalog.set_vp_size(p, table.num_rows());
        }
        let extvp = if options.build_extvp {
            build_extvp(
                graph,
                &vp,
                &mut catalog,
                ExtVpBuildOptions {
                    threshold: options.threshold,
                    mode: options.mode,
                    include_oo: options.include_oo,
                },
            )
        } else {
            ExtVpStorage::None
        };
        S2rdfStore {
            dict: graph.dict().clone(),
            tt: Arc::new(tt),
            vp,
            extvp,
            disk: None,
            lazy_cache: RwLock::new(FxHashMap::default()),
            catalog,
            quarantine: RwLock::new(FxHashSet::default()),
            swept: AtomicBool::new(true), // nothing on disk to sweep
            faults: None,
            update: UpdateState::default(),
            write_opts: s2rdf_columnar::WriteOptions::default(),
            legacy_v2_writes: false,
        }
    }

    /// Sets the chunked-format write options (chunk rows, Bloom filters)
    /// used by every subsequent table flush — [`S2rdfStore::save`],
    /// update checkpoints, and legacy-format upgrades.
    pub fn set_write_options(&mut self, opts: s2rdf_columnar::WriteOptions) {
        self.write_opts = opts;
        if let Some(disk) = &mut self.disk {
            disk.set_write_options(opts);
        }
    }

    /// Makes every subsequent table flush use the legacy v2 (whole-column)
    /// format instead of v3 — for generating compatibility fixtures and
    /// testing the upgrade path; not meant for production stores.
    pub fn set_legacy_v2_writes(&mut self, on: bool) {
        self.legacy_v2_writes = on;
        if let Some(disk) = &mut self.disk {
            disk.set_legacy_v2_writes(on);
        }
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The statistics catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Catalog cardinality estimate for a compiled table source, before
    /// any scan: exactly the number the adaptive join planner would see.
    /// Costs one catalog lookup — no table is touched.
    pub fn estimated_rows(&self, source: &crate::compiler::TableSource) -> usize {
        use crate::compiler::TableSource;
        match source {
            TableSource::TriplesTable => self.catalog.total_triples,
            TableSource::Vp(p) => self.catalog.vp_size(*p),
            TableSource::ExtVp(key) => self.catalog.extvp_stat(key).map(|s| s.count).unwrap_or(0),
            TableSource::Empty => 0,
        }
    }

    /// The ExtVP storage mode of this store.
    pub fn mode(&self) -> ExtVpMode {
        match &self.extvp {
            ExtVpStorage::Rows(_) | ExtVpStorage::Disk | ExtVpStorage::None => {
                ExtVpMode::Materialized
            }
            ExtVpStorage::Bits(_) => ExtVpMode::BitVector,
            ExtVpStorage::Lazy => ExtVpMode::Lazy,
        }
    }

    /// The base triples table.
    pub fn triples_table(&self) -> &Table {
        &self.tt
    }

    /// A VP table by predicate id. Infallible convenience over
    /// [`S2rdfStore::try_vp_table`]: transient read errors surface as
    /// `None` (callers that must distinguish use the fallible variant).
    pub fn vp_table(&self, p: TermId) -> Option<Arc<Table>> {
        self.try_vp_table(p).ok().flatten()
    }

    /// A VP table by predicate id, loading the body from disk on first
    /// access for [`S2rdfStore::load`]-ed stores. `Ok(None)` means the
    /// predicate has no VP table; `Err` is a read failure worth
    /// surfacing/retrying.
    pub fn try_vp_table(&self, p: TermId) -> Result<Option<Arc<Table>>, CoreError> {
        if let Some(table) = self.vp.get(&p) {
            return Ok(Some(table.clone()));
        }
        let Some(disk) = &self.disk else {
            return Ok(None);
        };
        let name = vp_table_name(&self.dict, p);
        if !disk.contains(&name) {
            return Ok(None);
        }
        Ok(Some(disk.load(&name)?))
    }

    /// A VP table body in compressed chunked form, for zone-map-pruned
    /// scans. `Ok(None)` when the body lives in memory (built stores,
    /// un-checkpointed update overlays) or the on-disk file is a legacy
    /// non-chunked format — callers fall back to the materialized path,
    /// which this never replaces, only bypasses.
    pub fn try_vp_compressed(&self, p: TermId) -> Result<Option<Arc<CompressedTable>>, CoreError> {
        if self.vp.contains_key(&p) {
            return Ok(None);
        }
        let Some(disk) = &self.disk else {
            return Ok(None);
        };
        let name = vp_table_name(&self.dict, p);
        if !disk.contains(&name) {
            return Ok(None);
        }
        let ct = disk.load_compressed(&name)?;
        Ok(ct.is_chunked().then_some(ct))
    }

    /// An ExtVP partition body in compressed chunked form (see
    /// [`S2rdfStore::try_vp_compressed`]). Quarantine-aware and
    /// overlay-aware: corrupt bodies quarantine and return `Ok(None)`
    /// exactly like the materialized demand-load path, so the engine's
    /// VP-degradation logic stays the single fallback.
    pub fn try_extvp_compressed(
        &self,
        key: &ExtVpKey,
    ) -> Result<Option<Arc<CompressedTable>>, CoreError> {
        if !matches!(self.extvp, ExtVpStorage::Disk)
            || self.quarantine.read().contains(key)
            || self.update.extvp_overlay.contains_key(key)
        {
            return Ok(None);
        }
        let Some(disk) = &self.disk else {
            return Ok(None);
        };
        let name = extvp_table_name(&self.dict, key);
        if !disk.contains(&name) {
            return Ok(None);
        }
        match disk.load_compressed(&name) {
            Ok(ct) => Ok(ct.is_chunked().then_some(ct)),
            Err(ColumnarError::ChecksumMismatch { .. } | ColumnarError::CorruptFile(_)) => {
                self.quarantine.write().insert(*key);
                Ok(None)
            }
            Err(e) => Err(CoreError::Columnar(e)),
        }
    }

    /// Whether the engine may take the zone-map-pruned scan path. Disabled
    /// while a fault injector is attached anywhere on the read path: the
    /// injector's deterministic op counter is the contract of the
    /// kill-and-recover harnesses, and the pruned path would consume ops
    /// the materialized path then never sees.
    pub fn pruned_scans_enabled(&self) -> bool {
        self.faults.is_none()
            && self
                .disk
                .as_ref()
                .is_none_or(|d| d.fault_injector().is_none())
    }

    /// Zone-map-tightened cardinality estimate for one compiled scan:
    /// with a chunked on-disk body and at least one bound constant, the
    /// sum of the chunks whose `[min, max]` range can contain the constant
    /// (Bloom-consulted, distinct-flagged chunks counting one row)
    /// replaces the whole-table catalog count. `None` when no zone
    /// information applies — the caller keeps the catalog estimate.
    pub fn zone_estimated_rows(
        &self,
        source: &crate::compiler::TableSource,
        tp: &s2rdf_sparql::TriplePattern,
    ) -> Option<usize> {
        use crate::compiler::TableSource;
        if !self.pruned_scans_enabled() {
            return None;
        }
        let ct = match source {
            TableSource::Vp(p) => self.try_vp_compressed(*p).ok().flatten()?,
            TableSource::ExtVp(key) => self.try_extvp_compressed(key).ok().flatten()?,
            TableSource::TriplesTable | TableSource::Empty => return None,
        };
        // VP/ExtVP physical layout: column 0 = subject, column 1 = object.
        let mut est: Option<usize> = None;
        for (col, pat) in [(0usize, &tp.s), (1, &tp.o)] {
            if let Some(term) = pat.as_term() {
                let rows = match self.dict.id(term) {
                    Some(id) => ct.estimate_eq_rows(col, id.0),
                    None => 0,
                };
                est = Some(est.map_or(rows, |e| e.min(rows)));
            }
        }
        est
    }

    /// Attaches (or detaches) a deterministic fault injector on the ExtVP
    /// partition access path, for resilience testing.
    pub fn set_fault_injector(&mut self, faults: Option<Arc<FaultInjector>>) {
        self.faults = faults;
    }

    /// Attaches one fault injector to *every* fault point of the store —
    /// the ExtVP access path (like [`S2rdfStore::set_fault_injector`]),
    /// the backing table store's read/write/rename points, and the WAL's
    /// append/truncate points. Sharing a single injector gives one global
    /// op counter, which is what lets a kill-and-recover harness enumerate
    /// `kill_after_ops = 0, 1, 2, …` and visit every crash point of an
    /// update + checkpoint sequence deterministically.
    pub fn set_fault_injector_deep(&mut self, faults: Option<Arc<FaultInjector>>) {
        self.faults = faults.clone();
        if let Some(disk) = &mut self.disk {
            disk.set_fault_injector(faults.clone());
        }
        if let Some(wal) = &mut self.update.wal {
            wal.set_fault_injector(faults);
        }
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// ExtVP partitions quarantined because their persisted form was
    /// corrupt, sorted for stable output.
    ///
    /// Under demand-driven loading corruption is normally discovered on
    /// first touch; this accessor additionally runs a one-time raw CRC
    /// sweep over the on-disk ExtVP files (no decode, no caching) so that
    /// administrative callers see the full damage set without having to
    /// query every partition first.
    pub fn quarantined(&self) -> Vec<ExtVpKey> {
        self.ensure_quarantine_sweep();
        let mut keys: Vec<ExtVpKey> = self.quarantine.read().iter().copied().collect();
        keys.sort();
        keys
    }

    /// One-shot raw-CRC sweep of on-disk ExtVP bodies feeding the
    /// quarantine set (see [`S2rdfStore::quarantined`]).
    fn ensure_quarantine_sweep(&self) {
        if self.swept.swap(true, Ordering::SeqCst) {
            return;
        }
        let Some(disk) = &self.disk else { return };
        if !matches!(self.extvp, ExtVpStorage::Disk) {
            return;
        }
        let mut quarantine = self.quarantine.write();
        for name in disk.names() {
            if name.starts_with("ExtVP_") && disk.verify_checksum(&name).is_err() {
                if let Ok(key) = parse_extvp_name(&name, &self.dict) {
                    quarantine.insert(key);
                }
            }
        }
    }

    /// Resolves an ExtVP partition to a queryable table, whatever the
    /// storage mode: materialized tables are shared, bitmaps are gathered
    /// on access, and lazy partitions are computed by semi-join on first
    /// use and cached (paper §7's "pay as you go" deployment).
    ///
    /// Returns `None` for quarantined partitions (corrupt at load time);
    /// callers fall back to the VP table, which is always a superset.
    pub fn extvp_table(&self, key: &ExtVpKey) -> Option<Arc<Table>> {
        if self.quarantine.read().contains(key) {
            return None;
        }
        match &self.extvp {
            ExtVpStorage::None => None,
            ExtVpStorage::Rows(tables) => tables.get(key).cloned(),
            ExtVpStorage::Disk => self.disk_extvp(key).ok().flatten(),
            ExtVpStorage::Bits(bits) => {
                let bitmap = bits.get(key)?;
                let base = self.vp_table(TermId(key.p1))?;
                Some(Arc::new(bitmap.gather(&base)))
            }
            ExtVpStorage::Lazy => {
                let eligible = self.catalog.extvp_stat(key)?.materialized;
                if !eligible {
                    return None;
                }
                if let Some(hit) = self.lazy_cache.read().get(key) {
                    return Some(hit.clone());
                }
                let computed = Arc::new(compute_partition_with(|p| self.vp_table(p), key)?);
                self.lazy_cache
                    .write()
                    .entry(*key)
                    .or_insert_with(|| computed.clone());
                Some(computed)
            }
        }
    }

    /// Demand-loads an on-disk ExtVP body. `Ok(None)` when the partition
    /// was never materialized *or* its body is corrupt (the partition is
    /// quarantined as a side effect — non-retryable, the engine degrades
    /// to VP); `Err` for transient I/O failures worth retrying.
    fn disk_extvp(&self, key: &ExtVpKey) -> Result<Option<Arc<Table>>, CoreError> {
        // Un-checkpointed updates shadow the on-disk body: `Some` is the
        // recomputed partition, `None` says the delta dematerialized it.
        if let Some(entry) = self.update.extvp_overlay.get(key) {
            return Ok(entry.clone());
        }
        let Some(disk) = &self.disk else {
            return Ok(None);
        };
        let name = extvp_table_name(&self.dict, key);
        if !disk.contains(&name) {
            return Ok(None);
        }
        match disk.load(&name) {
            Ok(table) => Ok(Some(table)),
            Err(ColumnarError::ChecksumMismatch { .. } | ColumnarError::CorruptFile(_)) => {
                // Derived data failed verification on first touch: a
                // permanent fault. Quarantine so the planner's fallback is
                // stable, never an error the engine keeps retrying.
                self.quarantine.write().insert(*key);
                Ok(None)
            }
            Err(e) => Err(CoreError::Columnar(e)),
        }
    }

    /// Fallible variant of [`S2rdfStore::extvp_table`] exercised by the
    /// query engine: an attached fault injector can fail the access
    /// (modelling a lost partition read), which the engine retries with
    /// backoff before degrading to the VP table.
    ///
    /// `Ok(None)` is *non-retryable* (the partition is not materialized or
    /// is quarantined); `Err` is a transient access failure worth retrying.
    pub fn try_extvp_table(&self, key: &ExtVpKey) -> Result<Option<Arc<Table>>, CoreError> {
        if let Some(faults) = &self.faults {
            faults
                .before_read(&extvp_table_name(&self.dict, key))
                .map_err(|e| CoreError::Columnar(e.into()))?;
        }
        if matches!(self.extvp, ExtVpStorage::Disk) && !self.quarantine.read().contains(key) {
            // Preserve the transient/permanent distinction of demand
            // loading: I/O errors are retryable `Err`s, corruption
            // quarantines and returns `Ok(None)`.
            return self.disk_extvp(key);
        }
        Ok(self.extvp_table(key))
    }

    /// Number of materialized (or materializable, for lazy stores) ExtVP
    /// partitions.
    pub fn num_extvp_tables(&self) -> usize {
        match &self.extvp {
            ExtVpStorage::None => 0,
            ExtVpStorage::Rows(tables) => tables.len(),
            ExtVpStorage::Bits(bits) => bits.len(),
            // Counted from the manifest (no body is decoded), adjusted by
            // the un-checkpointed overlay.
            ExtVpStorage::Disk => {
                let Some(disk) = &self.disk else { return 0 };
                let mut names: FxHashSet<String> = disk
                    .names()
                    .into_iter()
                    .filter(|n| n.starts_with("ExtVP_"))
                    .collect();
                for (key, entry) in &self.update.extvp_overlay {
                    let name = extvp_table_name(&self.dict, key);
                    if entry.is_some() {
                        names.insert(name);
                    } else {
                        names.remove(&name);
                    }
                }
                names.len()
            }
            ExtVpStorage::Lazy => self
                .catalog
                .extvp_stats()
                .filter(|(_, s)| s.materialized)
                .count(),
        }
    }

    /// Total tuples across VP tables (= |G|). Answered from the catalog so
    /// that demand-driven stores need not load any VP body for statistics.
    pub fn vp_tuples(&self) -> usize {
        self.catalog.vp_sizes().map(|(_, n)| n).sum()
    }

    /// Total (logical) tuples across materialized ExtVP partitions.
    /// Statistics-only: answered from catalog/bitmap metadata, never by
    /// decoding table bodies.
    pub fn extvp_tuples(&self) -> usize {
        match &self.extvp {
            ExtVpStorage::None => 0,
            ExtVpStorage::Rows(tables) => tables.values().map(|t| t.num_rows()).sum(),
            ExtVpStorage::Bits(bits) => bits.values().map(Bitmap::count_ones).sum(),
            ExtVpStorage::Disk | ExtVpStorage::Lazy => self
                .catalog
                .extvp_stats()
                .filter(|(_, s)| s.materialized)
                .map(|(_, s)| s.count)
                .sum(),
        }
    }

    /// In-memory bytes the ExtVP representation occupies (8 B/tuple for
    /// tables, one bit per VP row for bitmaps, cache contents for lazy and
    /// disk-backed stores) — the quantity the paper's §8 bit-vector idea
    /// targets.
    pub fn extvp_payload_bytes(&self) -> usize {
        match &self.extvp {
            ExtVpStorage::None => 0,
            ExtVpStorage::Rows(tables) => tables.values().map(|t| t.byte_size()).sum(),
            ExtVpStorage::Bits(bits) => bits.values().map(Bitmap::byte_size).sum(),
            // Approximation: the bodies resident in the demand-load cache
            // (includes TT/VP bodies cached by the same store).
            ExtVpStorage::Disk => self
                .disk
                .as_ref()
                .map(|d| d.cached_bytes() as usize)
                .unwrap_or(0),
            ExtVpStorage::Lazy => self.lazy_cache.read().values().map(|t| t.byte_size()).sum(),
        }
    }

    /// An engine over this store. `use_extvp = false` forces the VP-only
    /// execution path (the paper's "S2RDF VP" rows).
    pub fn engine(&self, use_extvp: bool) -> S2rdfEngine<'_> {
        S2rdfEngine::new(self, use_extvp && self.catalog.extvp_built)
    }

    /// Convenience: parse and run a query with default options on the best
    /// available layout.
    pub fn query(&self, sparql: &str) -> Result<Solutions, CoreError> {
        self.engine(true).query(sparql)
    }

    /// Convenience: run with options, returning the execution trace too.
    pub fn query_opt(
        &self,
        sparql: &str,
        options: &QueryOptions,
    ) -> Result<(Solutions, Explain), CoreError> {
        self.engine(true).query_opt(sparql, options)
    }

    /// Convenience: run a query of any form (SELECT/ASK/CONSTRUCT/DESCRIBE)
    /// with default options on the best available layout.
    pub fn query_result(&self, sparql: &str) -> Result<crate::engines::QueryResult, CoreError> {
        self.engine(true).query_result(sparql)
    }

    /// Persists the store into a directory (tables, bitmaps, dictionary,
    /// catalog).
    pub fn save(&self, dir: &Path) -> Result<(), CoreError> {
        std::fs::create_dir_all(dir).map_err(|e| CoreError::Catalog(e.to_string()))?;
        let mut tables = TableStore::open(dir.join("tables"))?;
        tables.set_write_options(self.write_opts);
        tables.set_legacy_v2_writes(self.legacy_v2_writes);
        tables.save(TT_NAME, &self.tt)?;
        // Catalog-driven so demand-driven stores (empty in-memory VP map)
        // round-trip too: each body is pulled — possibly from disk — and
        // re-persisted.
        let preds: Vec<TermId> = self.catalog.vp_sizes().map(|(p, _)| p).collect();
        for p in preds {
            debug_assert!(
                self.dict.term(p).is_iri(),
                "predicates must be IRIs for name round-tripping"
            );
            let table = self.try_vp_table(p)?.ok_or_else(|| {
                CoreError::Catalog(format!("VP table for predicate {} missing", p.0))
            })?;
            tables.save(&vp_table_name(&self.dict, p), &table)?;
        }
        match &self.extvp {
            ExtVpStorage::Rows(rows) => {
                for (key, table) in rows {
                    tables.save(&extvp_table_name(&self.dict, key), table)?;
                }
            }
            ExtVpStorage::Disk => {
                // The un-checkpointed overlay takes precedence over the
                // backing store: updated bodies are written from memory,
                // dematerialized partitions are skipped entirely.
                let mut handled: FxHashSet<String> = FxHashSet::default();
                for (key, entry) in &self.update.extvp_overlay {
                    let name = extvp_table_name(&self.dict, key);
                    if let Some(table) = entry {
                        tables.save(&name, table)?;
                    }
                    handled.insert(name);
                }
                if let Some(disk) = &self.disk {
                    for name in disk.names() {
                        if name.starts_with("ExtVP_") && !handled.contains(&name) {
                            let table = disk.load(&name)?;
                            tables.save(&name, &table)?;
                        }
                    }
                }
            }
            ExtVpStorage::Bits(bits) => {
                self.save_bitmaps(dir, bits)?;
            }
            ExtVpStorage::Lazy | ExtVpStorage::None => {}
        }
        self.catalog.save(&dir.join("catalog.json"))?;
        // Dictionary: one term per line in N-Triples syntax, id = line no.
        let file = std::fs::File::create(dir.join("dictionary.nt"))
            .map_err(|e| CoreError::Catalog(e.to_string()))?;
        let mut out = BufWriter::new(file);
        for (_, term) in self.dict.iter() {
            writeln!(out, "{term}").map_err(|e| CoreError::Catalog(e.to_string()))?;
        }
        out.flush().map_err(|e| CoreError::Catalog(e.to_string()))?;
        Ok(())
    }

    /// Writes the bitmap sidecar directory of a bit-vector store: one file
    /// per partition plus a name→file manifest. Crash safety rests on two
    /// rules: every body file is named by a hash of its *table name* (so a
    /// surviving old manifest can only ever point at content computed for
    /// that same partition, possibly a newer version of it — never at a
    /// different partition's bits), and every write is temp + fsync +
    /// rename, the manifest last. Bodies a stale manifest then mispoints
    /// at are additionally caught by the length check on load and
    /// quarantined, never served. Files no new manifest references are
    /// swept after the rename commits.
    fn save_bitmaps(
        &self,
        dir: &Path,
        bits: &FxHashMap<ExtVpKey, Bitmap>,
    ) -> Result<(), CoreError> {
        let bm_dir = dir.join("bitmaps");
        std::fs::create_dir_all(&bm_dir).map_err(|e| CoreError::Catalog(e.to_string()))?;
        // Deterministic order: sorted by table name (stable fault-point
        // enumeration for the kill harness).
        let mut entries: Vec<(String, &Bitmap)> = bits
            .iter()
            .map(|(key, bm)| (extvp_table_name(&self.dict, key), bm))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut manifest = String::new();
        let mut live: FxHashSet<String> = FxHashSet::default();
        for (name, bitmap) in &entries {
            let file = format!("b{:016x}.bits", {
                use std::hash::{Hash, Hasher};
                let mut h = rustc_hash::FxHasher::default();
                name.hash(&mut h);
                h.finish()
            });
            let tmp = bm_dir.join(format!("{file}.tmp"));
            let write = || -> std::io::Result<()> {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&bitmap.to_bytes())?;
                f.sync_all()?;
                if let Some(faults) = &self.faults {
                    faults.crash_point(&format!("bitmap:{file}"))?;
                }
                std::fs::rename(&tmp, bm_dir.join(&file))
            };
            write().map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                CoreError::Catalog(e.to_string())
            })?;
            manifest.push_str(name);
            manifest.push('\t');
            manifest.push_str(&file);
            manifest.push('\n');
            live.insert(file);
        }
        let tmp = bm_dir.join("manifest.tsv.tmp");
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(manifest.as_bytes())?;
            f.sync_all()?;
            if let Some(faults) = &self.faults {
                faults.crash_point("bitmaps/manifest.tsv")?;
            }
            std::fs::rename(&tmp, bm_dir.join("manifest.tsv"))
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CoreError::Catalog(e.to_string())
        })?;
        // The manifest committed: sweep body files it no longer references
        // (left by dropped partitions or interrupted earlier saves). A
        // crash mid-sweep only leaves unreferenced files for next time.
        if let Ok(dirents) = std::fs::read_dir(&bm_dir) {
            for entry in dirents.flatten() {
                let fname = entry.file_name().to_string_lossy().into_owned();
                if fname.ends_with(".bits") && !live.contains(&fname) || fname.ends_with(".tmp") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Loads a store previously written by [`S2rdfStore::save`].
    ///
    /// Corruption of the triples table or a VP table is fatal (they are the
    /// ground truth), but a corrupt ExtVP partition — a derived semi-join
    /// reduction — is *quarantined* instead: the store loads, queries over
    /// the damaged partition transparently degrade to the VP table with
    /// identical results, and [`S2rdfStore::verify_and_repair`] can rebuild
    /// the partition from its definition. This mirrors Spark recomputing a
    /// lost RDD partition from lineage rather than failing the job.
    pub fn load(dir: &Path) -> Result<S2rdfStore, CoreError> {
        let catalog = Catalog::load(&dir.join("catalog.json"))?;
        let mode = ExtVpMode::from_label(&catalog.extvp_mode)
            .ok_or_else(|| CoreError::Catalog(format!("bad mode {}", catalog.extvp_mode)))?;
        let mut dict = load_dictionary(dir)?;
        // Only the terms read from dictionary.nt are durable; WAL-recovered
        // growth below must still count as unpersisted so the next
        // checkpoint rewrites the dictionary before truncating the log.
        let dict_persisted = dict.len();
        // Table and bitmap names on disk may already use terms whose
        // dictionary rewrite a crashed checkpoint never reached; their ids
        // live in the WAL's `new_terms`, so recover that growth before any
        // name is parsed (replay below re-interns them — a no-op).
        if let Ok(bytes) = std::fs::read(dir.join("wal.log")) {
            if let Ok((records, _)) = s2rdf_columnar::wal::scan_records(&bytes) {
                for payload in &records {
                    for term in &DeltaBatch::decode(payload)?.new_terms {
                        dict.intern(term);
                    }
                }
            }
        }
        let dict = dict;
        let tables = TableStore::open(dir.join("tables"))?;
        // The ground truth (triples table + VP tables) must be intact for
        // the store to be usable at all, so sweep its raw CRCs up front —
        // a footer check per file, no body is decoded or cached. Derived
        // ExtVP partitions are *not* swept here: they are verified on
        // first touch and quarantined then (demand-driven loading).
        tables.verify_checksum(TT_NAME)?;
        for name in tables.names() {
            if name.starts_with("VP/") {
                tables.verify_checksum(&name)?;
            }
        }
        let tt = tables.load(TT_NAME)?;
        let mut quarantine = FxHashSet::default();
        let extvp = if !catalog.extvp_built {
            ExtVpStorage::None
        } else {
            match mode {
                ExtVpMode::Materialized => ExtVpStorage::Disk,
                ExtVpMode::Lazy => ExtVpStorage::Lazy,
                ExtVpMode::BitVector => {
                    let bm_dir = dir.join("bitmaps");
                    let manifest = std::fs::read_to_string(bm_dir.join("manifest.tsv"))
                        .map_err(|e| CoreError::Catalog(e.to_string()))?;
                    let mut bits = FxHashMap::default();
                    for line in manifest.lines() {
                        let (name, file) = line
                            .split_once('\t')
                            .ok_or_else(|| CoreError::Catalog("bad bitmap manifest".to_string()))?;
                        let key = parse_extvp_name(name, &dict)?;
                        match std::fs::read(bm_dir.join(file))
                            .map_err(|e| CoreError::Catalog(e.to_string()))
                            .and_then(|data| Bitmap::from_bytes(&data).map_err(CoreError::from))
                        {
                            // A bitmap must be exactly one bit per base-VP
                            // row; a torn body that still decodes (e.g. a
                            // file a crashed rewrite half-replaced) is
                            // quarantined, not served.
                            Ok(bitmap) if bitmap.len() == catalog.vp_size(TermId(key.p1)) => {
                                bits.insert(key, bitmap);
                            }
                            Ok(_) | Err(_) => {
                                quarantine.insert(key);
                            }
                        }
                    }
                    ExtVpStorage::Bits(bits)
                }
            }
        };
        let mut store = S2rdfStore {
            dict,
            tt,
            vp: FxHashMap::default(),
            extvp,
            disk: Some(tables),
            lazy_cache: RwLock::new(FxHashMap::default()),
            catalog,
            quarantine: RwLock::new(quarantine),
            swept: AtomicBool::new(false),
            faults: None,
            update: UpdateState {
                dir: Some(dir.to_path_buf()),
                dict_persisted,
                ..UpdateState::default()
            },
            write_opts: s2rdf_columnar::WriteOptions::default(),
            legacy_v2_writes: false,
        };
        // Crash recovery: replay whatever the WAL still holds through the
        // same apply path live updates use. Replay is conservative (every
        // predicate a record *mentions* is recomputed, effective or not):
        // a crash mid-checkpoint can leave the triples table flushed but a
        // VP or ExtVP partition stale, and only the mention set still
        // names the partitions that must be reconciled against the
        // replayed triples table.
        let (wal, payloads) = Wal::open(&dir.join("wal.log"))?;
        store.update.wal = Some(wal);
        for payload in &payloads {
            let batch = DeltaBatch::decode(payload)?;
            store.apply_batch(&batch, true)?;
            store.update.replayed += 1;
        }
        Ok(store)
    }

    /// Number of WAL records replayed when this store was opened (0 for a
    /// cleanly checkpointed store).
    pub fn wal_replayed(&self) -> u64 {
        self.update.replayed
    }

    /// Number of WAL records currently pending (durable but not yet
    /// checkpointed).
    pub fn wal_pending(&self) -> u64 {
        self.update.wal.as_ref().map(Wal::records).unwrap_or(0)
    }

    /// Read-only WAL probe of a saved store directory, for `verify`-style
    /// reporting without opening the store. `Ok(None)` when the store has
    /// no WAL file.
    pub fn wal_status(dir: &Path) -> Result<Option<WalStatus>, CoreError> {
        Ok(Wal::inspect(&dir.join("wal.log"))?)
    }

    /// On-disk byte sizes by table family, for Tables 2 and 6. Returns
    /// `(tt, vp, extvp)` bytes from a saved store directory (bitmap files
    /// count toward the ExtVP family).
    pub fn disk_sizes(dir: &Path) -> Result<(u64, u64, u64), CoreError> {
        let tables = TableStore::open(dir.join("tables"))?;
        let (mut tt, mut vp, mut extvp) = (0, 0, 0);
        for name in tables.names() {
            let size = tables.file_size(&name)?;
            if name == TT_NAME {
                tt += size;
            } else if name.starts_with("VP/") {
                vp += size;
            } else if name.starts_with("ExtVP_") {
                extvp += size;
            }
        }
        let bm_dir = dir.join("bitmaps");
        if bm_dir.is_dir() {
            for entry in
                std::fs::read_dir(&bm_dir).map_err(|e| CoreError::Catalog(e.to_string()))?
            {
                let entry = entry.map_err(|e| CoreError::Catalog(e.to_string()))?;
                extvp += entry
                    .metadata()
                    .map_err(|e| CoreError::Catalog(e.to_string()))?
                    .len();
            }
        }
        Ok((tt, vp, extvp))
    }

    /// Scans a saved store for corrupt, missing or orphaned table files and
    /// repairs what is derivable: ExtVP partitions are semi-join reductions
    /// of the VP tables (paper §5.2), so a damaged partition is rebuilt
    /// from its definition and atomically rewritten — the offline analogue
    /// of Spark's lineage recovery. Orphaned files from interrupted saves
    /// are deleted. Damage to the triples table or a VP table (the ground
    /// truth) is reported as unrecoverable.
    pub fn verify_and_repair(dir: &Path) -> Result<RepairReport, CoreError> {
        let mut dict = load_dictionary(dir)?;
        // A checkpoint that crashed after flushing tables but before the
        // dictionary rewrite leaves table names whose terms only exist in
        // the WAL; recover that growth the same way `load` does (read-only
        // — torn-residue truncation is left to the next real open).
        if let Ok(bytes) = std::fs::read(dir.join("wal.log")) {
            if let Ok((records, _)) = s2rdf_columnar::wal::scan_records(&bytes) {
                for payload in &records {
                    for term in &DeltaBatch::decode(payload)?.new_terms {
                        dict.intern(term);
                    }
                }
            }
        }
        let dict = dict;
        let mut tables = TableStore::open(dir.join("tables"))?;
        let scan = tables.verify_all();
        let mut report = RepairReport {
            scanned: scan.ok.len() + scan.corrupt.len() + scan.missing.len(),
            // Chunk-granular localization for corrupt v3 bodies whose
            // chunk directory survived: names the damaged row ranges so
            // operators see "2 of 160 chunks" instead of writing off the
            // whole table.
            corrupt_chunks: scan.corrupt_chunks.clone(),
            ..RepairReport::default()
        };

        // Base VP tables, for rebuilding reductions. Corrupt VP tables are
        // themselves in the damage list and unrecoverable.
        let mut vp: FxHashMap<TermId, Arc<Table>> = FxHashMap::default();
        for name in &scan.ok {
            if let Some(term_text) = name.strip_prefix("VP/") {
                let term = Term::parse_ntriples(term_text)?;
                let p = dict
                    .id(&term)
                    .ok_or_else(|| CoreError::Catalog(format!("unknown predicate {term}")))?;
                vp.insert(p, tables.load(name)?);
            }
        }

        let damaged = scan.corrupt.iter().cloned().chain(
            scan.missing
                .iter()
                .map(|n| (n.clone(), "file missing".to_string())),
        );
        for (name, why) in damaged {
            if !name.starts_with("ExtVP_") {
                report.unrecoverable.push((name, why));
                continue;
            }
            let rebuilt = parse_extvp_name(&name, &dict)
                .ok()
                .and_then(|key| compute_partition(&vp, &key));
            match rebuilt {
                Some(table) => {
                    tables.save(&name, &table)?;
                    report.repaired.push(name);
                }
                None => report.unrecoverable.push((
                    name,
                    format!("{why}; base VP tables unavailable for rebuild"),
                )),
            }
        }

        for orphan in &scan.orphans {
            std::fs::remove_file(tables.root().join(orphan))
                .map_err(|e| CoreError::Catalog(e.to_string()))?;
            report.removed_orphans.push(orphan.clone());
        }

        // Re-open (clears the orphan list) and re-verify to confirm.
        let tables = TableStore::open(dir.join("tables"))?;
        report.clean_after = tables.verify_all().is_clean() && report.unrecoverable.is_empty();
        Ok(report)
    }
}

/// The durable-update subsystem (WAL + delta-wise ExtVP maintenance).
///
/// An update batch is (1) appended to the write-ahead log — one CRC-32
/// checksummed record holding the dictionary growth and the encoded triple
/// ops — and fsynced, (2) applied in memory: the triples table and the VP
/// tables of the touched predicates are rebuilt (VP is a pure function of
/// the triples table), and every ExtVP reduction one of those predicates
/// participates in is recomputed delta-wise, (3) eventually flushed by
/// [`S2rdfStore::checkpoint`], whose last step truncates the WAL. A crash
/// anywhere before that truncation is recovered on the next
/// [`S2rdfStore::load`] by replaying the surviving records through the
/// same apply path, conservatively: every predicate a record *mentions* is
/// reconciled against the replayed triples table, effective or not,
/// because a crash mid-checkpoint can leave the triples table flushed
/// while a VP or ExtVP body is still stale.
impl S2rdfStore {
    /// Inserts a batch of triples durably (triples already present are
    /// no-ops). See [`S2rdfStore::update_batch`].
    pub fn insert(&mut self, triples: &[Triple]) -> Result<DeltaSummary, CoreError> {
        self.update_batch(triples, &[])
    }

    /// Deletes a batch of triples durably (absent triples are no-ops).
    /// See [`S2rdfStore::update_batch`].
    pub fn delete(&mut self, triples: &[Triple]) -> Result<DeltaSummary, CoreError> {
        self.update_batch(&[], triples)
    }

    /// Applies one insert+delete batch: WAL first (durability), then the
    /// in-memory tables and statistics. Inserts are applied before
    /// deletes. On a [`S2rdfStore::build`]-t store (no backing directory)
    /// the update is applied in memory only and is *not* durable.
    pub fn update_batch(
        &mut self,
        inserts: &[Triple],
        deletes: &[Triple],
    ) -> Result<DeltaSummary, CoreError> {
        let dict_before = self.dict.len();
        let mut ops = Vec::with_capacity(inserts.len() + deletes.len());
        for t in inserts {
            let (s, p, o) = (
                self.dict.intern(&t.s),
                self.dict.intern(&t.p),
                self.dict.intern(&t.o),
            );
            ops.push(DeltaRecord {
                insert: true,
                s: s.0,
                p: p.0,
                o: o.0,
            });
        }
        for t in deletes {
            // A term the dictionary has never seen cannot occur in any
            // triple, so the delete is a no-op — and must not grow the
            // dictionary.
            let (Some(s), Some(p), Some(o)) =
                (self.dict.id(&t.s), self.dict.id(&t.p), self.dict.id(&t.o))
            else {
                continue;
            };
            ops.push(DeltaRecord {
                insert: false,
                s: s.0,
                p: p.0,
                o: o.0,
            });
        }
        let new_terms: Vec<Term> = (dict_before..self.dict.len())
            .map(|i| self.dict.term(TermId(i as u32)).clone())
            .collect();
        let batch = DeltaBatch { new_terms, ops };
        if batch.is_empty() {
            return Ok(DeltaSummary::default());
        }
        // Durability first: the record is on disk (fsynced) before any
        // table changes. A crash from here on replays it at next open.
        if let Some(wal) = &mut self.update.wal {
            wal.append(&batch.encode())?;
        }
        self.apply_batch(&batch, false)
    }

    /// Applies a decoded batch to the in-memory store. `conservative` is
    /// the replay mode: rebuild every predicate the batch *mentions* even
    /// if its ops turn out to be no-ops against the current triples table
    /// (the triples table on disk may already include them while VP/ExtVP
    /// bodies do not — only the mention set still names what to
    /// reconcile). Live updates pass `false` and rebuild only effectively
    /// changed predicates.
    fn apply_batch(
        &mut self,
        batch: &DeltaBatch,
        conservative: bool,
    ) -> Result<DeltaSummary, CoreError> {
        // Replay re-interns the batch's dictionary growth: `new_terms` is
        // in id order, so a recovering store reproduces identical ids;
        // for a live store these terms are already interned (no-op).
        for term in &batch.new_terms {
            self.dict.intern(term);
        }
        // Membership index over the triples table, built on first update:
        // RDF graphs are sets, and set semantics is what makes replay
        // idempotent.
        if self.update.membership.is_none() {
            let (s, p, o) = (self.tt.column(0), self.tt.column(1), self.tt.column(2));
            self.update.membership = Some(
                (0..self.tt.num_rows())
                    .map(|i| (s[i], p[i], o[i]))
                    .collect(),
            );
        }
        let membership = self.update.membership.as_mut().expect("just built");

        let mut summary = DeltaSummary::default();
        let mut mentioned: BTreeSet<u32> = BTreeSet::new();
        let mut effective: BTreeSet<u32> = BTreeSet::new();
        // First-time inserts in op order (deduplicated, delete-aware), for
        // the triples-table append below.
        let mut added_order: Vec<(u32, u32, u32)> = Vec::new();
        let mut added_set: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
        for op in &batch.ops {
            let key = (op.s, op.p, op.o);
            mentioned.insert(op.p);
            if op.insert {
                if membership.insert(key) {
                    summary.inserted += 1;
                    effective.insert(op.p);
                    if added_set.insert(key) {
                        added_order.push(key);
                    }
                }
            } else if membership.remove(&key) {
                summary.deleted += 1;
                effective.insert(op.p);
                if added_set.remove(&key) {
                    added_order.retain(|k| k != &key);
                }
            }
        }

        // Rebuild the triples table when the delta changed it: survivors
        // keep their original order, first-time inserts append. Keys both
        // deleted and re-inserted within the batch survive in place.
        if !effective.is_empty() {
            let n = self.tt.num_rows();
            let mut old_keys: FxHashSet<(u32, u32, u32)> =
                FxHashSet::with_capacity_and_hasher(n, Default::default());
            let (mut ns, mut np, mut no) = (Vec::new(), Vec::new(), Vec::new());
            {
                let (s, p, o) = (self.tt.column(0), self.tt.column(1), self.tt.column(2));
                for i in 0..n {
                    let key = (s[i], p[i], o[i]);
                    if membership.contains(&key) {
                        ns.push(s[i]);
                        np.push(p[i]);
                        no.push(o[i]);
                    }
                    old_keys.insert(key);
                }
            }
            for &(s, p, o) in added_order.iter().filter(|k| !old_keys.contains(*k)) {
                ns.push(s);
                np.push(p);
                no.push(o);
            }
            self.tt = Arc::new(Table::from_columns(
                Schema::new([COL_S, COL_P, COL_O]),
                vec![ns, np, no],
            ));
            self.update.tt_dirty = true;
            self.catalog.total_triples = self.tt.num_rows();
        }
        if conservative {
            // A checkpoint that crashed after flushing the triples table
            // but before the catalog leaves the statistic stale while every
            // replayed op reads as a no-op; resync it from the table.
            self.catalog.total_triples = self.tt.num_rows();
        }

        let touched: BTreeSet<u32> = if conservative { mentioned } else { effective };
        if touched.is_empty() {
            return Ok(summary);
        }

        // Rebuild the VP tables of every touched predicate from one pass
        // over the (post-apply) triples table. VP is recomputed from the
        // triples table — never patched incrementally — so that replay
        // converges to the rebuild-from-scratch state no matter which
        // tables an interrupted checkpoint already flushed.
        let mut per_pred: FxHashMap<u32, (Vec<u32>, Vec<u32>)> = touched
            .iter()
            .map(|&p| (p, (Vec::new(), Vec::new())))
            .collect();
        {
            let (s, p, o) = (self.tt.column(0), self.tt.column(1), self.tt.column(2));
            for i in 0..self.tt.num_rows() {
                if let Some((vs, vo)) = per_pred.get_mut(&p[i]) {
                    vs.push(s[i]);
                    vo.push(o[i]);
                }
            }
        }
        for &pred in &touched {
            let (vs, vo) = per_pred.remove(&pred).expect("seeded above");
            let table = Table::from_columns(Schema::new([COL_S, COL_O]), vec![vs, vo]);
            self.catalog.set_vp_size(TermId(pred), table.num_rows());
            // Kept in the in-memory map even when drained empty: it
            // shadows the stale disk body until checkpoint removes the
            // file.
            self.vp.insert(TermId(pred), Arc::new(table));
            self.update.vp_dirty.insert(TermId(pred));
        }

        // Delta-wise ExtVP maintenance: only reductions a touched
        // predicate participates in — on either side — can change.
        // Partners include already-drained predicates so stale entries are
        // cleaned, and correlations follow what the store precomputes.
        if self.catalog.extvp_built {
            let mut partners: BTreeSet<u32> = self.catalog.vp_sizes().map(|(p, _)| p.0).collect();
            partners.extend(touched.iter().copied());
            let mut corrs = vec![Correlation::SS, Correlation::OS, Correlation::SO];
            if self.catalog.oo_built {
                corrs.push(Correlation::OO);
            }
            let mut candidates: BTreeSet<ExtVpKey> = BTreeSet::new();
            for &p in &touched {
                for &q in &partners {
                    for &corr in &corrs {
                        // SS/OO self-correlations are the identity and
                        // never stored (OS/SO self-pairs are real).
                        if matches!(corr, Correlation::SS | Correlation::OO) && p == q {
                            continue;
                        }
                        candidates.insert(ExtVpKey { corr, p1: p, p2: q });
                        candidates.insert(ExtVpKey { corr, p1: q, p2: p });
                    }
                }
            }
            for key in candidates {
                self.recompute_extvp(&key)?;
                summary.extvp_recomputed += 1;
            }
        }
        Ok(summary)
    }

    /// Recomputes one ExtVP reduction from the current VP tables and
    /// routes the result into whatever representation the store uses,
    /// updating catalog statistics (including draining to absence) and
    /// lifting any quarantine — a fresh recompute supersedes a corrupt
    /// on-disk body.
    fn recompute_extvp(&mut self, key: &ExtVpKey) -> Result<(), CoreError> {
        metric_counter!("core.extvp.delta_recomputes").inc();
        let vp1 = self.try_vp_table(TermId(key.p1))?;
        let vp2 = self.try_vp_table(TermId(key.p2))?;
        let indices = match (&vp1, &vp2) {
            (Some(a), Some(b)) => compute_partition_indices(a, b, key.corr),
            _ => Vec::new(),
        };
        let count = indices.len();
        let vp_size = self.catalog.vp_size(TermId(key.p1));
        let sf = if vp_size == 0 {
            0.0
        } else {
            count as f64 / vp_size as f64
        };
        // Same materialization rule as the initial build: proper (SF < 1)
        // and selective enough (SF < threshold) — and non-empty.
        let materialized = count > 0 && sf < 1.0 && sf < self.catalog.threshold;
        self.catalog.set_extvp(*key, count, materialized);
        self.quarantine.write().remove(key);
        let gathered = || -> Arc<Table> {
            let idx: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
            Arc::new(vp1.as_ref().expect("materialized implies vp1").gather(&idx))
        };
        match &mut self.extvp {
            ExtVpStorage::None => {}
            ExtVpStorage::Rows(tables) => {
                if materialized {
                    tables.insert(*key, gathered());
                    self.update.extvp_dirty.insert(*key);
                } else if tables.remove(key).is_some() {
                    self.update.extvp_dirty.insert(*key);
                }
            }
            ExtVpStorage::Bits(bits) => {
                if materialized {
                    bits.insert(*key, Bitmap::from_indices(vp_size, &indices));
                    self.update.extvp_dirty.insert(*key);
                } else if bits.remove(key).is_some() {
                    self.update.extvp_dirty.insert(*key);
                }
            }
            ExtVpStorage::Disk => {
                let stored = self.update.extvp_overlay.contains_key(key)
                    || self
                        .disk
                        .as_ref()
                        .is_some_and(|d| d.contains(&extvp_table_name(&self.dict, key)));
                if materialized {
                    self.update.extvp_overlay.insert(*key, Some(gathered()));
                    self.update.extvp_dirty.insert(*key);
                } else if stored {
                    // `None` overlays the on-disk body until checkpoint
                    // deletes the file.
                    self.update.extvp_overlay.insert(*key, None);
                    self.update.extvp_dirty.insert(*key);
                }
            }
            ExtVpStorage::Lazy => {
                // Statistics above are the source of truth; just drop a
                // stale cached materialization.
                self.lazy_cache.write().remove(key);
            }
        }
        Ok(())
    }

    /// Flushes every un-checkpointed update to disk and truncates the WAL.
    ///
    /// Protocol (each table write is itself temp + fsync + rename):
    /// 1. sweep orphan files an interrupted earlier flush left behind,
    /// 2. flush the dirty triples table, then dirty VP tables (drained
    ///    ones are deleted), then dirty ExtVP state per representation,
    /// 3. write the catalog, then the dictionary (atomic rewrites),
    /// 4. truncate the WAL — the commit point.
    ///
    /// A crash anywhere before step 4 leaves the WAL intact; the next
    /// [`S2rdfStore::load`] replays it conservatively and converges. The
    /// order is deterministic (sorted), so a kill-switch harness can
    /// enumerate every crash point.
    pub fn checkpoint(&mut self) -> Result<CheckpointReport, CoreError> {
        let Some(dir) = self.update.dir.clone() else {
            return Err(CoreError::Unsupported(
                "checkpoint requires a store with a backing directory (use save + load)"
                    .to_string(),
            ));
        };
        let mut report = CheckpointReport::default();
        if let Some(disk) = &mut self.disk {
            report.orphans_removed = disk.sweep_orphans()?.len();
        }
        if self.update.tt_dirty {
            let disk = self.disk.as_mut().expect("loaded store has a table store");
            disk.save(TT_NAME, &self.tt)?;
            report.tables_flushed += 1;
        }
        let mut preds: Vec<TermId> = self.update.vp_dirty.iter().copied().collect();
        preds.sort_by_key(|p| p.0);
        for p in preds {
            let name = vp_table_name(&self.dict, p);
            let table = self.vp.get(&p).cloned().expect("dirty VP is resident");
            let disk = self.disk.as_mut().expect("loaded store has a table store");
            if table.num_rows() > 0 {
                disk.save(&name, &table)?;
                report.tables_flushed += 1;
            } else if disk.contains(&name) {
                disk.remove(&name)?;
                report.tables_removed += 1;
            }
        }
        let mut keys: Vec<ExtVpKey> = self.update.extvp_dirty.iter().copied().collect();
        keys.sort();
        match &self.extvp {
            ExtVpStorage::Rows(tables) => {
                for key in &keys {
                    let name = extvp_table_name(&self.dict, key);
                    let disk = self.disk.as_mut().expect("loaded store has a table store");
                    if let Some(table) = tables.get(key) {
                        disk.save(&name, table)?;
                        report.tables_flushed += 1;
                    } else if disk.contains(&name) {
                        disk.remove(&name)?;
                        report.tables_removed += 1;
                    }
                }
            }
            ExtVpStorage::Disk => {
                for key in &keys {
                    let name = extvp_table_name(&self.dict, key);
                    let entry = self.update.extvp_overlay.get(key).cloned();
                    let disk = self.disk.as_mut().expect("loaded store has a table store");
                    match entry {
                        Some(Some(table)) => {
                            disk.save(&name, &table)?;
                            report.tables_flushed += 1;
                        }
                        Some(None) if disk.contains(&name) => {
                            disk.remove(&name)?;
                            report.tables_removed += 1;
                        }
                        Some(None) | None => {}
                    }
                }
            }
            ExtVpStorage::Bits(bits) => {
                if !keys.is_empty() {
                    self.save_bitmaps(&dir, bits)?;
                    report.tables_flushed += keys.len();
                }
            }
            ExtVpStorage::Lazy | ExtVpStorage::None => {}
        }
        // Format convergence: any table file still in a legacy (v1/v2)
        // format — loaded from a store built before the chunked format —
        // is rewritten as v3. Runs after the dirty flushes so freshly
        // saved tables are probed (and skipped) as already-current.
        if let Some(disk) = &mut self.disk {
            report.tables_upgraded = disk.upgrade_legacy()?;
        }
        if let Some(faults) = &self.faults {
            faults
                .crash_point("catalog.json")
                .map_err(|e| CoreError::Columnar(e.into()))?;
        }
        self.catalog.save(&dir.join("catalog.json"))?;
        let new_terms = self.dict.len().saturating_sub(self.update.dict_persisted);
        if new_terms > 0 {
            let tmp = dir.join("dictionary.nt.tmp");
            let write = || -> std::io::Result<()> {
                let mut out = BufWriter::new(std::fs::File::create(&tmp)?);
                for (_, term) in self.dict.iter() {
                    writeln!(out, "{term}")?;
                }
                let f = out
                    .into_inner()
                    .map_err(std::io::IntoInnerError::into_error)?;
                f.sync_all()?;
                if let Some(faults) = &self.faults {
                    faults.crash_point("dictionary.nt")?;
                }
                std::fs::rename(&tmp, dir.join("dictionary.nt"))
            };
            write().map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                CoreError::Catalog(e.to_string())
            })?;
            report.dict_terms_appended = new_terms;
            self.update.dict_persisted = self.dict.len();
        }
        // The commit point: dropping the WAL records declares everything
        // above durable. Dirty state is cleared only after it succeeds.
        if let Some(wal) = &mut self.update.wal {
            report.wal_records_truncated = wal.records();
            wal.truncate()?;
        }
        self.update.tt_dirty = false;
        self.update.vp_dirty.clear();
        self.update.extvp_dirty.clear();
        self.update.extvp_overlay.clear();
        Ok(report)
    }
}

/// Outcome of [`S2rdfStore::verify_and_repair`].
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Manifest entries examined.
    pub scanned: usize,
    /// ExtVP partitions rebuilt from their VP base tables.
    pub repaired: Vec<String>,
    /// Damaged tables that could not be rebuilt (triples table, VP tables,
    /// or reductions whose base tables are themselves damaged), with the
    /// reason.
    pub unrecoverable: Vec<(String, String)>,
    /// Chunk-level localization of the damage, for corrupt v3 files whose
    /// chunk directory still parsed: `(table, corrupt chunk labels, total
    /// chunks)`. Legacy-format files cannot localize and never appear.
    pub corrupt_chunks: Vec<(String, Vec<String>, usize)>,
    /// Orphaned table files deleted.
    pub removed_orphans: Vec<String>,
    /// True if a final verification pass found the store fully clean.
    pub clean_after: bool,
}

/// Reads the dictionary file of a saved store (one N-Triples term per line,
/// id = line number).
fn load_dictionary(dir: &Path) -> Result<Dictionary, CoreError> {
    let file = std::fs::File::open(dir.join("dictionary.nt"))
        .map_err(|e| CoreError::Catalog(e.to_string()))?;
    let mut dict = Dictionary::new();
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| CoreError::Catalog(e.to_string()))?;
        dict.intern(&Term::parse_ntriples(&line)?);
    }
    Ok(dict)
}

/// Parses `ExtVP_<corr>/<p1>|<p2>` names back into keys. Predicates are
/// IRIs rendered as `<...>`, so the separator is the `|` between `>` and
/// `<`.
fn parse_extvp_name(name: &str, dict: &Dictionary) -> Result<ExtVpKey, CoreError> {
    let rest = name
        .strip_prefix("ExtVP_")
        .ok_or_else(|| CoreError::Catalog(format!("bad table name {name}")))?;
    let (corr_label, pair) = rest
        .split_once('/')
        .ok_or_else(|| CoreError::Catalog(format!("bad table name {name}")))?;
    let corr = match corr_label {
        "SS" => Correlation::SS,
        "OS" => Correlation::OS,
        "SO" => Correlation::SO,
        "OO" => Correlation::OO,
        other => return Err(CoreError::Catalog(format!("bad correlation {other}"))),
    };
    let sep = pair
        .find(">|<")
        .ok_or_else(|| CoreError::Catalog(format!("bad table name {name}")))?;
    let p1 = Term::parse_ntriples(&pair[..sep + 1])?;
    let p2 = Term::parse_ntriples(&pair[sep + 2..])?;
    let p1 = dict
        .id(&p1)
        .ok_or_else(|| CoreError::Catalog(format!("unknown predicate {p1}")))?;
    let p2 = dict
        .id(&p2)
        .ok_or_else(|| CoreError::Catalog(format!("unknown predicate {p2}")))?;
    Ok(ExtVpKey::new(corr, p1, p2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::Triple;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn g1() -> Graph {
        Graph::from_triples([
            t("A", "follows", "B"),
            t("B", "follows", "C"),
            t("B", "follows", "D"),
            t("C", "follows", "D"),
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ])
    }

    const Q_CHAIN: &str = "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?w }";

    #[test]
    fn build_counts() {
        let store = S2rdfStore::build(&g1(), &BuildOptions::default());
        assert_eq!(store.vp_tuples(), 7);
        assert_eq!(store.catalog().num_predicates(), 2);
        // Fig. 10: 5 green ExtVP tables for G1.
        assert_eq!(store.num_extvp_tables(), 5);
    }

    #[test]
    fn vp_only_build() {
        let store = S2rdfStore::build(
            &g1(),
            &BuildOptions {
                build_extvp: false,
                ..Default::default()
            },
        );
        assert_eq!(store.num_extvp_tables(), 0);
        assert!(!store.catalog().extvp_built);
        // Queries still work through VP.
        let s = store.query(Q_CHAIN).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn all_modes_answer_identically() {
        let reference = S2rdfStore::build(&g1(), &BuildOptions::default());
        let expected = reference.query(Q_CHAIN).unwrap().canonical();
        for mode in [ExtVpMode::BitVector, ExtVpMode::Lazy] {
            let store = S2rdfStore::build(
                &g1(),
                &BuildOptions {
                    mode,
                    ..Default::default()
                },
            );
            assert_eq!(store.num_extvp_tables(), reference.num_extvp_tables());
            assert_eq!(store.extvp_tuples(), reference.extvp_tuples());
            assert_eq!(
                store.query(Q_CHAIN).unwrap().canonical(),
                expected,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn bitvector_payload_is_smaller() {
        // With large VP tables the bitmap payload undercuts 8 B/tuple — on
        // tiny G1 the advantage is absent, so synthesize a wider graph.
        let mut triples = Vec::new();
        for i in 0..2000 {
            triples.push(t(
                &format!("u{i}"),
                "follows",
                &format!("u{}", (i + 1) % 2000),
            ));
        }
        for i in 0..500 {
            triples.push(t(&format!("u{i}"), "likes", &format!("m{}", i % 50)));
        }
        let g = Graph::from_triples(triples);
        let rows = S2rdfStore::build(&g, &BuildOptions::default());
        let bits = S2rdfStore::build(
            &g,
            &BuildOptions {
                mode: ExtVpMode::BitVector,
                ..Default::default()
            },
        );
        assert_eq!(rows.extvp_tuples(), bits.extvp_tuples());
        assert!(
            bits.extvp_payload_bytes() * 4 < rows.extvp_payload_bytes(),
            "bitmaps {}B vs tables {}B",
            bits.extvp_payload_bytes(),
            rows.extvp_payload_bytes()
        );
    }

    #[test]
    fn lazy_cache_fills_on_use() {
        let store = S2rdfStore::build(
            &g1(),
            &BuildOptions {
                mode: ExtVpMode::Lazy,
                ..Default::default()
            },
        );
        assert_eq!(store.extvp_payload_bytes(), 0); // nothing materialized yet
        let s = store.query(Q_CHAIN).unwrap();
        assert_eq!(s.len(), 1);
        assert!(store.extvp_payload_bytes() > 0); // warm cache
                                                  // Second run hits the cache and still agrees.
        assert_eq!(store.query(Q_CHAIN).unwrap().len(), 1);
    }

    #[test]
    fn oo_correlation_improves_oo_queries() {
        let store_oo = S2rdfStore::build(
            &g1(),
            &BuildOptions {
                include_oo: true,
                ..Default::default()
            },
        );
        let store_plain = S2rdfStore::build(&g1(), &BuildOptions::default());
        // ?a follows ?w . ?c likes ?w — an OO correlation.
        let q = "SELECT * WHERE { ?a <follows> ?w . ?c <likes> ?w }";
        let a = store_oo.query(q).unwrap();
        let b = store_plain.query(q).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        // With OO built, the follows-side scan reads the OO reduction
        // (follows tuples whose object is liked: only (B,D)? — objects of
        // likes are I1/I2, no follows object is liked, so SF = 0 and the
        // query is answered from statistics).
        let (_, explain) = store_oo
            .engine(true)
            .query_opt(q, &Default::default())
            .unwrap();
        assert!(explain.statically_empty);
        assert!(a.is_empty());
        // Without OO the plain store must execute the join.
        let (_, plain_explain) = store_plain
            .engine(true)
            .query_opt(q, &Default::default())
            .unwrap();
        assert!(!plain_explain.statically_empty);
    }

    /// Queries that together cover VP scans, ExtVP reductions and the
    /// statically-empty path.
    const PROBES: [&str; 3] = [
        Q_CHAIN,
        "SELECT * WHERE { ?x <follows> ?y }",
        "SELECT * WHERE { ?x <likes> ?y . ?y <follows> ?z }",
    ];

    /// Asserts a store answers every probe exactly like a from-scratch
    /// build over `expected` would.
    fn assert_matches_rebuild(store: &S2rdfStore, expected: &Graph, options: &BuildOptions) {
        let fresh = S2rdfStore::build(expected, options);
        for q in PROBES {
            assert_eq!(
                store.query(q).unwrap().canonical(),
                fresh.query(q).unwrap().canonical(),
                "{q}"
            );
        }
        assert_eq!(store.catalog().total_triples, expected.len());
        assert_eq!(store.vp_tuples(), expected.len());
        assert_eq!(store.extvp_tuples(), fresh.extvp_tuples());
        assert_eq!(store.num_extvp_tables(), fresh.num_extvp_tables());
    }

    #[test]
    fn in_memory_updates_match_rebuild_all_modes() {
        for mode in [
            ExtVpMode::Materialized,
            ExtVpMode::BitVector,
            ExtVpMode::Lazy,
        ] {
            let options = BuildOptions {
                mode,
                ..Default::default()
            };
            let mut store = S2rdfStore::build(&g1(), &options);
            // Insert: D likes I1 (new subject for likes, new ExtVP links).
            let summary = store.insert(&[t("D", "likes", "I1")]).unwrap();
            assert_eq!(summary.inserted, 1, "{mode:?}");
            assert!(summary.extvp_recomputed > 0);
            // Duplicate insert is a no-op.
            assert_eq!(
                store.insert(&[t("D", "likes", "I1")]).unwrap(),
                DeltaSummary::default()
            );
            // Delete one follows edge; deleting an absent triple no-ops.
            let summary = store
                .delete(&[t("B", "follows", "C"), t("B", "follows", "nope")])
                .unwrap();
            assert_eq!(summary.deleted, 1);
            let mut expected = g1();
            expected.insert(&t("D", "likes", "I1"));
            expected.remove(&t("B", "follows", "C"));
            assert_matches_rebuild(&store, &expected, &options);
        }
    }

    #[test]
    fn update_drains_predicate_and_statistics() {
        let mut store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let likes: Vec<Triple> = [
            t("A", "likes", "I1"),
            t("A", "likes", "I2"),
            t("C", "likes", "I2"),
        ]
        .to_vec();
        store.delete(&likes).unwrap();
        assert_eq!(store.catalog().num_predicates(), 1);
        assert_eq!(store.query(Q_CHAIN).unwrap().len(), 0);
        let mut expected = g1();
        for tr in &likes {
            expected.remove(tr);
        }
        assert_matches_rebuild(&store, &expected, &BuildOptions::default());
        // Re-inserting brings everything back.
        store.insert(&likes).unwrap();
        assert_matches_rebuild(&store, &g1(), &BuildOptions::default());
    }

    #[test]
    fn estimated_rows_follow_deltas() {
        use crate::compiler::TableSource;
        let mut store = S2rdfStore::build(&g1(), &BuildOptions::default());
        let follows = store.dict().id(&Term::iri("follows")).unwrap();
        assert_eq!(store.estimated_rows(&TableSource::Vp(follows)), 4);
        assert_eq!(store.estimated_rows(&TableSource::TriplesTable), 7);
        store
            .insert(&[t("D", "follows", "A"), t("E", "follows", "A")])
            .unwrap();
        assert_eq!(store.estimated_rows(&TableSource::Vp(follows)), 6);
        assert_eq!(store.estimated_rows(&TableSource::TriplesTable), 9);
        store.delete(&[t("A", "follows", "B")]).unwrap();
        assert_eq!(store.estimated_rows(&TableSource::Vp(follows)), 5);
        let key = ExtVpKey::new(
            Correlation::OS,
            follows,
            store.dict().id(&Term::iri("likes")).unwrap(),
        );
        // OS follows|likes grew: D follows A and A likes things.
        let fresh_count = store.catalog().extvp_stat(&key).unwrap().count;
        assert_eq!(store.estimated_rows(&TableSource::ExtVp(key)), fresh_count);
        assert!(fresh_count > 1);
    }

    /// Catalog statistics drive the adaptive join planner, so they must
    /// track deltas: a join that broadcasts its small build side flips to
    /// the partitioned strategy once a large delta grows that side past
    /// the broadcast threshold — without rebuilding the store.
    #[test]
    fn join_strategy_flips_after_large_delta() {
        use s2rdf_columnar::exec::{JoinConfig, JoinStrategy};
        let mut triples = Vec::new();
        for i in 0..8 {
            triples.push(t(&format!("s{i}"), "p", &format!("m{i}")));
            triples.push(t(&format!("m{i}"), "q", &format!("o{i}")));
        }
        let mut store = S2rdfStore::build(&Graph::from_triples(triples), &BuildOptions::default());
        let options = QueryOptions {
            join: JoinConfig {
                serial_row_threshold: 4,
                broadcast_rows: 64,
                broadcast_bytes: 0,
                // Pin the partition knobs so the flip does not depend on
                // the machine's core count.
                target_partition_rows: 64,
                max_partitions: 4,
                ..JoinConfig::default()
            },
            ..QueryOptions::default()
        };
        let q = "SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }";
        let (solutions, explain) = store.query_opt(q, &options).unwrap();
        assert_eq!(solutions.len(), 8);
        assert!(
            explain
                .join_steps
                .iter()
                .any(|j| j.decision.strategy == JoinStrategy::Broadcast),
            "small build side must broadcast: {:?}",
            explain.join_steps
        );

        let mut delta = Vec::new();
        for i in 0..500 {
            delta.push(t(&format!("S{i}"), "p", &format!("M{i}")));
            delta.push(t(&format!("M{i}"), "q", &format!("O{i}")));
        }
        store.insert(&delta).unwrap();
        let (solutions, explain) = store.query_opt(q, &options).unwrap();
        assert_eq!(solutions.len(), 508);
        assert!(
            explain
                .join_steps
                .iter()
                .any(|j| j.decision.strategy == JoinStrategy::Partitioned),
            "grown build side must flip to partitioned: {:?}",
            explain.join_steps
        );
        assert!(
            explain
                .join_steps
                .iter()
                .all(|j| j.decision.strategy != JoinStrategy::Broadcast),
            "no join should still broadcast a 500-row build side: {:?}",
            explain.join_steps
        );
    }

    #[test]
    fn durable_update_recovers_without_checkpoint() {
        let dir = std::env::temp_dir().join(format!("s2rdf-wal-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        S2rdfStore::build(&g1(), &BuildOptions::default())
            .save(&dir)
            .unwrap();
        let mut store = S2rdfStore::load(&dir).unwrap();
        assert_eq!(store.wal_replayed(), 0);
        store.insert(&[t("D", "likes", "I1")]).unwrap();
        store.delete(&[t("B", "follows", "C")]).unwrap();
        assert_eq!(store.wal_pending(), 2);
        let expected: Vec<_> = PROBES
            .iter()
            .map(|q| store.query(q).unwrap().canonical())
            .collect();
        drop(store); // "crash": no checkpoint, WAL survives
        let reopened = S2rdfStore::load(&dir).unwrap();
        assert_eq!(reopened.wal_replayed(), 2);
        for (q, want) in PROBES.iter().zip(&expected) {
            assert_eq!(&reopened.query(q).unwrap().canonical(), want, "{q}");
        }
        let mut graph = g1();
        graph.insert(&t("D", "likes", "I1"));
        graph.remove(&t("B", "follows", "C"));
        assert_matches_rebuild(&reopened, &graph, &BuildOptions::default());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_persists() {
        let dir = std::env::temp_dir().join(format!("s2rdf-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        S2rdfStore::build(&g1(), &BuildOptions::default())
            .save(&dir)
            .unwrap();
        let mut store = S2rdfStore::load(&dir).unwrap();
        store.insert(&[t("D", "likes", "I1")]).unwrap();
        store.delete(&[t("A", "likes", "I1")]).unwrap();
        let report = store.checkpoint().unwrap();
        assert_eq!(report.wal_records_truncated, 2);
        assert!(report.tables_flushed > 0);
        assert_eq!(report.dict_terms_appended, 0); // D, I1 already interned
        assert_eq!(store.wal_pending(), 0);
        // A second checkpoint with nothing dirty is a no-op.
        let report = store.checkpoint().unwrap();
        assert_eq!(report.tables_flushed, 0);
        let expected: Vec<_> = PROBES
            .iter()
            .map(|q| store.query(q).unwrap().canonical())
            .collect();
        drop(store);
        let reopened = S2rdfStore::load(&dir).unwrap();
        assert_eq!(reopened.wal_replayed(), 0);
        for (q, want) in PROBES.iter().zip(&expected) {
            assert_eq!(&reopened.query(q).unwrap().canonical(), want, "{q}");
        }
        // The checkpointed store verifies clean.
        let report = S2rdfStore::verify_and_repair(&dir).unwrap();
        assert!(report.clean_after, "{report:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_persists_new_dictionary_terms() {
        let dir = std::env::temp_dir().join(format!("s2rdf-dict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        S2rdfStore::build(&g1(), &BuildOptions::default())
            .save(&dir)
            .unwrap();
        let mut store = S2rdfStore::load(&dir).unwrap();
        store.insert(&[t("E", "knows", "F")]).unwrap();
        let report = store.checkpoint().unwrap();
        assert_eq!(report.dict_terms_appended, 3);
        drop(store);
        let reopened = S2rdfStore::load(&dir).unwrap();
        let q = "SELECT * WHERE { ?x <knows> ?y }";
        assert_eq!(reopened.query(q).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_requires_backing_directory() {
        let mut store = S2rdfStore::build(&g1(), &BuildOptions::default());
        assert!(store.checkpoint().is_err());
    }

    #[test]
    fn save_load_roundtrip_all_modes() {
        for (idx, options) in [
            BuildOptions::default(),
            BuildOptions {
                mode: ExtVpMode::BitVector,
                ..Default::default()
            },
            BuildOptions {
                mode: ExtVpMode::Lazy,
                ..Default::default()
            },
            BuildOptions {
                include_oo: true,
                ..Default::default()
            },
        ]
        .iter()
        .enumerate()
        {
            let dir =
                std::env::temp_dir().join(format!("s2rdf-store-{}-{idx}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let store = S2rdfStore::build(&g1(), options);
            store.save(&dir).unwrap();
            let loaded = S2rdfStore::load(&dir).unwrap();
            assert_eq!(loaded.mode(), store.mode(), "mode {idx}");
            assert_eq!(loaded.vp_tuples(), store.vp_tuples());
            assert_eq!(loaded.extvp_tuples(), store.extvp_tuples());
            assert_eq!(loaded.num_extvp_tables(), store.num_extvp_tables());
            assert_eq!(loaded.catalog().oo_built, store.catalog().oo_built);
            assert_eq!(
                loaded.query(Q_CHAIN).unwrap().canonical(),
                store.query(Q_CHAIN).unwrap().canonical()
            );
            let (tt, vp, _) = S2rdfStore::disk_sizes(&dir).unwrap();
            assert!(tt > 0 && vp > 0);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
