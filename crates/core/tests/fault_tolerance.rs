//! End-to-end fault-tolerance tests: disk corruption of ExtVP partitions,
//! transient read faults, and offline verify/repair.
//!
//! The invariant under test is the paper's lineage argument transplanted to
//! shared memory: every ExtVP partition is a semi-join *reduction* of its
//! VP table (§5), so losing one can change query **cost** but never query
//! **results** — the engine degrades to the VP superset and produces the
//! exact same solutions.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use s2rdf_columnar::{FaultConfig, FaultInjector};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::{BuildOptions, CoreError, S2rdfStore};
use s2rdf_model::{Graph, Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// G1 from the paper (§2.1).
fn g1() -> Graph {
    Graph::from_triples([
        t("A", "follows", "B"),
        t("B", "follows", "C"),
        t("B", "follows", "D"),
        t("C", "follows", "D"),
        t("A", "likes", "I1"),
        t("A", "likes", "I2"),
        t("C", "likes", "I2"),
    ])
}

/// Q1 from the paper: friends-of-friends liking the same thing.
const Q1: &str = "SELECT * WHERE {
    ?x <likes> ?w . ?x <follows> ?y .
    ?y <follows> ?z . ?z <likes> ?w
}";

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2rdf-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Flips one byte in the middle of every saved table whose logical name
/// matches `prefix`; returns how many files were damaged.
fn corrupt_tables(dir: &Path, prefix: &str) -> usize {
    let manifest = std::fs::read_to_string(dir.join("tables/manifest.tsv")).unwrap();
    let mut hit = 0;
    for line in manifest.lines() {
        let (name, file) = line.split_once('\t').unwrap();
        if !name.starts_with(prefix) {
            continue;
        }
        let path = dir.join("tables").join(file);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        hit += 1;
    }
    assert!(hit > 0, "no tables matched prefix {prefix}");
    hit
}

/// Disk corruption of ExtVP partitions is quarantined at load; queries
/// degrade to the VP tables with byte-identical solutions and the damage
/// is reported in the explain trace.
#[test]
fn corrupted_extvp_partitions_degrade_to_exact_results() {
    let dir = temp_store("degrade");
    let built = S2rdfStore::build(&g1(), &BuildOptions::default());
    let expected = built.query(Q1).unwrap().canonical();
    built.save(&dir).unwrap();

    corrupt_tables(&dir, "ExtVP_");
    let store = S2rdfStore::load(&dir).unwrap();
    assert!(
        !store.quarantined().is_empty(),
        "corrupt partitions must be quarantined, not silently loaded"
    );

    let (solutions, explain) = store
        .engine(true)
        .query_opt(Q1, &QueryOptions::default())
        .unwrap();
    assert_eq!(
        solutions.canonical(),
        expected,
        "degraded results must be exact"
    );
    assert!(
        !explain.degraded_steps.is_empty(),
        "degradation must be traced"
    );
    assert!(!explain.fully_healthy());
    for step in &explain.degraded_steps {
        assert!(
            step.planned.starts_with("ExtVP_"),
            "planned {}",
            step.planned
        );
        assert!(
            step.fallback.starts_with("VP/"),
            "fallback {}",
            step.fallback
        );
        assert!(step.attempts >= 1);
    }
    // Every degraded step runs at VP selectivity.
    for step in explain
        .bgp_steps
        .iter()
        .filter(|s| s.table.contains("degraded"))
    {
        assert_eq!(step.sf, 1.0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A fault injector that fails every ExtVP partition access exercises the
/// retry-then-fallback path end to end: results stay exact, the failed
/// attempts are logged, and detaching the injector restores healthy runs.
#[test]
fn injected_read_faults_are_absorbed_by_vp_fallback() {
    let dir = temp_store("inject");
    let built = S2rdfStore::build(&g1(), &BuildOptions::default());
    let expected = built.query(Q1).unwrap().canonical();
    built.save(&dir).unwrap();

    let mut store = S2rdfStore::load(&dir).unwrap();
    assert!(store.quarantined().is_empty());
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        seed: 7,
        read_error: 1.0,
        ..FaultConfig::default()
    }));
    store.set_fault_injector(Some(injector.clone()));

    let options = QueryOptions {
        max_retries: 2,
        ..QueryOptions::default()
    };
    let (solutions, explain) = store.engine(true).query_opt(Q1, &options).unwrap();
    assert_eq!(solutions.canonical(), expected);
    assert!(!explain.degraded_steps.is_empty());
    // max_retries = 2 → three attempts per degraded partition.
    assert!(explain.degraded_steps.iter().all(|s| s.attempts == 3));
    assert!(
        !explain.recovered_errors.is_empty(),
        "attempt failures must be logged"
    );
    assert!(injector.stats().read_errors > 0);

    // Healthy again once the injector is removed.
    store.set_fault_injector(None);
    let (solutions, explain) = store
        .engine(true)
        .query_opt(Q1, &QueryOptions::default())
        .unwrap();
    assert_eq!(solutions.canonical(), expected);
    assert!(explain.fully_healthy());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `verify_and_repair` rebuilds damaged ExtVP partitions from their VP
/// base tables and leaves the store fully clean.
#[test]
fn verify_and_repair_rebuilds_extvp_from_vp() {
    let dir = temp_store("repair");
    let built = S2rdfStore::build(&g1(), &BuildOptions::default());
    let expected = built.query(Q1).unwrap().canonical();
    built.save(&dir).unwrap();

    let damaged = corrupt_tables(&dir, "ExtVP_");
    let report = S2rdfStore::verify_and_repair(&dir).unwrap();
    assert_eq!(report.repaired.len(), damaged);
    assert!(
        report.unrecoverable.is_empty(),
        "{:?}",
        report.unrecoverable
    );
    assert!(report.clean_after, "repair must leave a clean store");

    // The repaired store loads without quarantine and runs fully healthy.
    let store = S2rdfStore::load(&dir).unwrap();
    assert!(store.quarantined().is_empty());
    let (solutions, explain) = store
        .engine(true)
        .query_opt(Q1, &QueryOptions::default())
        .unwrap();
    assert_eq!(solutions.canonical(), expected);
    assert!(explain.fully_healthy());
    assert!(explain.degraded_steps.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Ground-truth damage (a VP table) cannot be rebuilt: load fails loudly
/// and repair reports it as unrecoverable rather than faking a fix.
#[test]
fn damaged_vp_table_is_unrecoverable() {
    let dir = temp_store("vp-damage");
    let built = S2rdfStore::build(&g1(), &BuildOptions::default());
    built.save(&dir).unwrap();

    corrupt_tables(&dir, "VP/<follows>");
    let err = S2rdfStore::load(&dir).unwrap_err();
    assert!(
        matches!(err, CoreError::Columnar(_)),
        "VP corruption must fail the load: {err:?}"
    );
    let report = S2rdfStore::verify_and_repair(&dir).unwrap();
    assert!(!report.clean_after);
    assert!(
        report
            .unrecoverable
            .iter()
            .any(|(name, _)| name == "VP/<follows>"),
        "{:?}",
        report.unrecoverable
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
