//! Backward compatibility of the on-disk table formats: a store written
//! in the legacy v2 (whole-column) format — checked in as a fixture —
//! must load and answer queries identically, and a checkpoint must
//! converge its files to the current chunked v3 format without changing
//! any result.

use std::path::{Path, PathBuf};

use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_model::{Graph, Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// The fixture's graph: small but exercising VP + ExtVP tables, an SS and
/// an OS correlation, and enough rows that every table is non-trivial.
fn fixture_graph() -> Graph {
    let mut triples = Vec::new();
    for i in 0..20 {
        triples.push(t(
            &format!("person{i}"),
            "follows",
            &format!("person{}", (i + 1) % 20),
        ));
        triples.push(t(&format!("person{i}"), "likes", &format!("post{}", i % 7)));
        if i % 2 == 0 {
            triples.push(t(&format!("post{}", i % 7), "taggedWith", "topic1"));
        }
    }
    Graph::from_triples(triples)
}

const QUERIES: &[&str] = &[
    "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }",
    "SELECT * WHERE { <person3> <follows> ?y }",
    "SELECT * WHERE { ?x <likes> ?p . ?p <taggedWith> <topic1> }",
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v2_store")
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Version bytes of every table file in `dir/tables` (manifest excluded).
fn table_versions(dir: &Path) -> Vec<u8> {
    let mut versions = Vec::new();
    for entry in std::fs::read_dir(dir.join("tables")).unwrap() {
        let path = entry.unwrap().path();
        if path.file_name().and_then(|n| n.to_str()) == Some("manifest.tsv") {
            continue;
        }
        let data = std::fs::read(&path).unwrap();
        assert_eq!(&data[..4], b"S2CT", "{path:?}");
        versions.push(data[4]);
    }
    assert!(!versions.is_empty(), "fixture has no table files");
    versions
}

/// Regenerates the checked-in fixture. Run explicitly when the fixture
/// must change (`cargo test -p s2rdf-core --test format_compat -- --ignored`),
/// then commit the result; normal runs never touch it.
#[test]
#[ignore = "fixture generator, run manually"]
fn regenerate_v2_fixture() {
    let dir = fixture_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = S2rdfStore::build(&fixture_graph(), &BuildOptions::default());
    store.set_legacy_v2_writes(true);
    store.save(&dir).unwrap();
    assert!(table_versions(&dir).iter().all(|&v| v == 2));
}

#[test]
fn v2_fixture_loads_queries_and_checkpoints_to_v3() {
    let work = std::env::temp_dir().join(format!("s2rdf-v2compat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    copy_dir(&fixture_dir(), &work);
    assert!(
        table_versions(&work).iter().all(|&v| v == 2),
        "fixture must stay v2 on disk — regenerate_v2_fixture rewrites it"
    );

    // Ground truth from a fresh in-memory build of the same graph.
    let reference = S2rdfStore::build(&fixture_graph(), &BuildOptions::default());
    let expected: Vec<_> = QUERIES
        .iter()
        .map(|q| reference.query(q).unwrap().canonical())
        .collect();

    // The legacy store loads and answers identically.
    let mut store = S2rdfStore::load(&work).unwrap();
    for (q, want) in QUERIES.iter().zip(&expected) {
        assert_eq!(
            &store.query(q).unwrap().canonical(),
            want,
            "pre-upgrade: {q}"
        );
    }

    // Checkpoint rewrites every legacy file in the current chunked format…
    let report = store.checkpoint().unwrap();
    assert!(report.tables_upgraded > 0, "{report:?}");
    assert!(
        table_versions(&work).iter().all(|&v| v == 3),
        "checkpoint must leave only v3 files"
    );
    // …without changing any result, in the same session…
    for (q, want) in QUERIES.iter().zip(&expected) {
        assert_eq!(
            &store.query(q).unwrap().canonical(),
            want,
            "post-upgrade: {q}"
        );
    }
    // …or after a reload of the upgraded store.
    let reloaded = S2rdfStore::load(&work).unwrap();
    for (q, want) in QUERIES.iter().zip(&expected) {
        assert_eq!(
            &reloaded.query(q).unwrap().canonical(),
            want,
            "reloaded: {q}"
        );
    }
    // A second checkpoint finds nothing left to upgrade.
    let mut store = reloaded;
    assert_eq!(store.checkpoint().unwrap().tables_upgraded, 0);
    std::fs::remove_dir_all(&work).unwrap();
}

/// A selective scan over a loaded v3 store must actually skip chunks:
/// the zone maps rule out every chunk whose subject range excludes the
/// bound constant, so `columnar.io.chunks_pruned` advances.
#[test]
fn selective_scan_on_loaded_store_prunes_chunks() {
    use s2rdf_columnar::metrics;

    // Many rows under one predicate so the VP table spans several chunks;
    // subjects are grouped, so zone maps separate cleanly.
    let mut triples = Vec::new();
    for i in 0..4000u32 {
        triples.push(t(
            &format!("s{:05}", i / 4),
            "edge",
            &format!("o{:05}", i % 97),
        ));
    }
    let graph = Graph::from_triples(triples);
    let mut store = S2rdfStore::build(&graph, &BuildOptions::default());
    store.set_write_options(s2rdf_columnar::WriteOptions {
        chunk_rows: 256,
        bloom: true,
    });

    let work = std::env::temp_dir().join(format!("s2rdf-prune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    store.save(&work).unwrap();
    let loaded = S2rdfStore::load(&work).unwrap();

    let _guard = metrics::test_lock();
    metrics::set_enabled(true);
    let pruned = metrics::counter("columnar.io.chunks_pruned");
    let before = pruned.get();
    let result = loaded
        .query("SELECT * WHERE { <s00007> <edge> ?o }")
        .unwrap();
    metrics::set_enabled(false);

    assert_eq!(result.canonical().len(), 4);
    assert!(
        pruned.get() > before,
        "bound-constant scan must skip chunks via zone maps"
    );
    std::fs::remove_dir_all(&work).unwrap();
}
