//! Join-semantics equivalence properties in the presence of `NULL_ID`.
//!
//! Two join families coexist in the stack and must each be internally
//! consistent:
//!
//! * the **hash family** (`ops::natural_join`, `natural_join_auto`,
//!   `par_natural_join`) treats `NULL_ID` as an ordinary key value — all
//!   three must produce the same bag for every partition count, including
//!   the `default_parallelism()` used in production;
//! * the **compatibility family** (`compat_join`,
//!   `compat_left_outer_join`) implements SPARQL §2.1 semantics where an
//!   unbound shared variable matches anything — it must agree with a
//!   direct nested-loop oracle, and collapse to the hash family whenever
//!   no shared column contains `NULL_ID`.
//!
//! The engines pick between the families based on a NULL scan
//! (`needs_compat_join`), so these properties are exactly what makes that
//! dispatch sound.

use proptest::prelude::*;

use s2rdf_columnar::exec::{
    default_parallelism, natural_join_auto, par_natural_join, row_multiset,
};
use s2rdf_columnar::ops::natural_join;
use s2rdf_columnar::{Schema, Table, NULL_ID};
use s2rdf_core::exec::{compat_join, compat_left_outer_join};

fn table(cols: &'static [&'static str], rows: Vec<Vec<u32>>) -> Table {
    Table::from_rows(Schema::new(cols.iter().map(|c| c.to_string())), &rows)
}

/// Rows over a tiny domain where one value in `0..card` maps to `NULL_ID`,
/// so shared columns regularly contain unbound entries.
fn arb_rows_with_null(width: usize, card: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0..card).prop_map(|v| if v == 0 { NULL_ID } else { v }),
            width,
        ),
        0..40,
    )
}

/// NULL-free rows.
fn arb_rows(width: usize, card: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(1..card, width), 0..40)
}

/// Compatibility semantics oracle: nested loop over row pairs; `NULL_ID`
/// on either side of a shared column matches anything; the merged value is
/// the bound one (left wins when both are bound).
fn compat_oracle(left: &Table, right: &Table, outer: bool) -> Vec<Vec<u32>> {
    let shared: Vec<(usize, usize)> = left
        .schema()
        .common_columns(right.schema())
        .iter()
        .map(|c| {
            (
                left.schema().index_of(c).unwrap(),
                right.schema().index_of(c).unwrap(),
            )
        })
        .collect();
    let right_extra: Vec<usize> = (0..right.schema().len())
        .filter(|&c| !left.schema().contains(&right.schema().names()[c]))
        .collect();
    let mut out = Vec::new();
    for lr in 0..left.num_rows() {
        let mut matched = false;
        for rr in 0..right.num_rows() {
            let compatible = shared.iter().all(|&(lc, rc)| {
                let (lv, rv) = (left.value(lr, lc), right.value(rr, rc));
                lv == NULL_ID || rv == NULL_ID || lv == rv
            });
            if !compatible {
                continue;
            }
            matched = true;
            let mut row: Vec<u32> = (0..left.schema().len())
                .map(|c| {
                    let lv = left.value(lr, c);
                    if lv != NULL_ID {
                        return lv;
                    }
                    match shared.iter().find(|&&(lc, _)| lc == c) {
                        Some(&(_, rc)) => right.value(rr, rc),
                        None => NULL_ID,
                    }
                })
                .collect();
            row.extend(right_extra.iter().map(|&c| right.value(rr, c)));
            out.push(row);
        }
        if outer && !matched {
            let mut row: Vec<u32> = (0..left.schema().len())
                .map(|c| left.value(lr, c))
                .collect();
            row.extend(std::iter::repeat_n(NULL_ID, right_extra.len()));
            out.push(row);
        }
    }
    out.sort();
    out
}

/// The partition counts production code can use, plus edge cases.
fn partition_counts() -> Vec<usize> {
    let mut parts = vec![1, 2, 3, 4, 7];
    let dp = default_parallelism();
    if !parts.contains(&dp) {
        parts.push(dp);
    }
    parts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The hash-join family treats NULL_ID as a literal value and agrees
    /// with itself on every partition count, even when shared columns
    /// contain NULL_ID.
    #[test]
    fn hash_family_agrees_on_null_inputs(
        l in arb_rows_with_null(2, 6),
        r in arb_rows_with_null(2, 6),
    ) {
        let left = table(&["j", "a"], l);
        let right = table(&["j", "b"], r);
        let serial = row_multiset(&natural_join(&left, &right));
        prop_assert_eq!(row_multiset(&natural_join_auto(&left, &right)), serial.clone());
        for parts in partition_counts() {
            prop_assert_eq!(
                row_multiset(&par_natural_join(&left, &right, parts)),
                serial.clone(),
                "par_natural_join diverged at parts={}", parts
            );
        }
    }

    /// Same, with two shared columns (the wide-key probe path).
    #[test]
    fn hash_family_agrees_on_null_inputs_two_keys(
        l in arb_rows_with_null(3, 4),
        r in arb_rows_with_null(3, 4),
    ) {
        let left = table(&["j", "k", "a"], l);
        let right = table(&["j", "k", "b"], r);
        let serial = row_multiset(&natural_join(&left, &right));
        prop_assert_eq!(row_multiset(&natural_join_auto(&left, &right)), serial.clone());
        for parts in partition_counts() {
            prop_assert_eq!(
                row_multiset(&par_natural_join(&left, &right, parts)),
                serial.clone()
            );
        }
    }

    /// compat_join implements the §2.1 oracle exactly on NULL inputs.
    #[test]
    fn compat_join_matches_oracle(
        l in arb_rows_with_null(2, 6),
        r in arb_rows_with_null(2, 6),
    ) {
        let left = table(&["j", "a"], l);
        let right = table(&["j", "b"], r);
        prop_assert_eq!(
            row_multiset(&compat_join(&left, &right)),
            compat_oracle(&left, &right, false)
        );
    }

    /// compat_left_outer_join implements the OPTIONAL oracle exactly on
    /// NULL inputs (the PR's OPTIONAL bugfix path).
    #[test]
    fn compat_left_outer_matches_oracle(
        l in arb_rows_with_null(2, 6),
        r in arb_rows_with_null(2, 6),
    ) {
        let left = table(&["j", "a"], l);
        let right = table(&["j", "b"], r);
        prop_assert_eq!(
            row_multiset(&compat_left_outer_join(&left, &right)),
            compat_oracle(&left, &right, true)
        );
    }

    /// On NULL-free shared columns the two families coincide, which is
    /// what lets the engines dispatch to the fast hash path by default.
    #[test]
    fn families_coincide_without_nulls(
        l in arb_rows(2, 8),
        r in arb_rows(2, 8),
    ) {
        let left = table(&["j", "a"], l);
        let right = table(&["j", "b"], r);
        let hash = row_multiset(&natural_join_auto(&left, &right));
        prop_assert_eq!(row_multiset(&compat_join(&left, &right)), hash.clone());
        for parts in partition_counts() {
            prop_assert_eq!(
                row_multiset(&par_natural_join(&left, &right, parts)),
                hash.clone()
            );
        }
    }
}
