//! Property tests for demand-driven store loading: a store served lazily
//! from disk (manifest eagerly, table bodies on first touch) must be
//! observationally equivalent to the eagerly built store it was saved
//! from — same solutions (row multisets via canonicalization), same
//! statistics — for every storage mode, under injected transient read
//! faults, and under on-disk corruption of derived partitions.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use s2rdf_columnar::{FaultConfig, FaultInjector};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::{BuildOptions, ExtVpMode, S2rdfStore};
use s2rdf_model::{Graph, Term, Triple};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "s2rdf-lazyeq-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// Decodes `(s, p, o)` index triples into a graph. Objects with small
/// indices alias the subject space so OS/SO correlations actually occur;
/// three fixed triples guarantee every queried predicate exists in the
/// dictionary.
fn graph_from(indices: &[(u8, u8, u8)]) -> Graph {
    let mut triples = vec![
        t("s0", "p0", "s1"),
        t("s1", "p1", "o9"),
        t("s2", "p2", "o8"),
    ];
    for &(s, p, o) in indices {
        let object = if o < 4 {
            format!("s{o}")
        } else {
            format!("o{o}")
        };
        triples.push(t(&format!("s{}", s % 6), &format!("p{}", p % 3), &object));
    }
    Graph::from_triples(triples)
}

const QUERIES: &[&str] = &[
    "SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z }",
    "SELECT * WHERE { ?a <p0> ?x . ?b <p1> ?x . ?c <p2> ?x }",
    "SELECT * WHERE { ?s <p2> ?o }",
    "SELECT * WHERE { ?x <p0> ?y . ?y <p0> ?z . ?z <p1> ?w }",
];

fn triples_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..6, 0u8..3, 0u8..10), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Save → load must preserve every query answer and statistic in all
    /// three storage modes, without the loaded store being eager.
    #[test]
    fn loaded_store_equals_built_store(indices in triples_strategy()) {
        let g = graph_from(&indices);
        for mode in [ExtVpMode::Materialized, ExtVpMode::BitVector, ExtVpMode::Lazy] {
            let built = S2rdfStore::build(&g, &BuildOptions { mode, ..Default::default() });
            let dir = temp_store("mode");
            built.save(&dir).unwrap();
            let loaded = S2rdfStore::load(&dir).unwrap();
            prop_assert_eq!(loaded.vp_tuples(), built.vp_tuples());
            prop_assert_eq!(loaded.extvp_tuples(), built.extvp_tuples());
            prop_assert_eq!(loaded.num_extvp_tables(), built.num_extvp_tables());
            prop_assert!(loaded.quarantined().is_empty());
            for q in QUERIES {
                prop_assert_eq!(
                    loaded.query(q).unwrap().canonical(),
                    built.query(q).unwrap().canonical(),
                    "{:?} {}", mode, q
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    /// Injected transient read faults on the partition access path change
    /// retries/degradations, never answers; detaching the injector
    /// restores fully healthy execution.
    #[test]
    fn injected_faults_never_change_answers(
        indices in triples_strategy(),
        read_error_pct in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let read_error = f64::from(read_error_pct) / 100.0;
        let g = graph_from(&indices);
        let built = S2rdfStore::build(&g, &BuildOptions::default());
        let dir = temp_store("faults");
        built.save(&dir).unwrap();
        let mut loaded = S2rdfStore::load(&dir).unwrap();
        loaded.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed,
            read_error,
            ..FaultConfig::default()
        }))));
        let options = QueryOptions { max_retries: 2, ..QueryOptions::default() };
        for q in QUERIES {
            let (faulty, _) = loaded.engine(true).query_opt(q, &options).unwrap();
            prop_assert_eq!(
                faulty.canonical(),
                built.query(q).unwrap().canonical(),
                "under faults: {}", q
            );
        }
        loaded.set_fault_injector(None);
        for q in QUERIES {
            let (clean, explain) = loaded.engine(true).query_opt(q, &options).unwrap();
            prop_assert!(explain.fully_healthy(), "{}: {:?}", q, explain.degraded_steps);
            prop_assert_eq!(clean.canonical(), built.query(q).unwrap().canonical());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Corrupting every persisted ExtVP body after the save: the loaded
    /// store quarantines them on first touch (checksum failure under lazy
    /// loading) and every answer still matches the eager store via the VP
    /// fallback.
    #[test]
    fn corrupt_extvp_bodies_degrade_without_wrong_answers(indices in triples_strategy()) {
        let g = graph_from(&indices);
        let built = S2rdfStore::build(&g, &BuildOptions::default());
        let dir = temp_store("corrupt");
        built.save(&dir).unwrap();
        // Flip a byte in the middle of every ExtVP table file.
        let manifest = std::fs::read_to_string(dir.join("tables/manifest.tsv")).unwrap();
        let mut damaged = 0;
        for line in manifest.lines() {
            let (name, file) = line.split_once('\t').unwrap();
            if !name.starts_with("ExtVP_") {
                continue;
            }
            let path = dir.join("tables").join(file.split('\t').next().unwrap());
            let mut data = std::fs::read(&path).unwrap();
            let mid = data.len() / 2;
            data[mid] ^= 0xFF;
            std::fs::write(&path, data).unwrap();
            damaged += 1;
        }
        let loaded = S2rdfStore::load(&dir).unwrap();
        for q in QUERIES {
            prop_assert_eq!(
                loaded.query(q).unwrap().canonical(),
                built.query(q).unwrap().canonical(),
                "after corruption: {}", q
            );
        }
        // The administrative sweep sees every damaged partition.
        prop_assert_eq!(loaded.quarantined().len(), damaged);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
