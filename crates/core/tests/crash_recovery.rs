//! Kill-and-recover harness for the incremental-update path (WAL +
//! delta-wise ExtVP maintenance + checkpoint).
//!
//! The invariant under test: a crash at *any* write-side fault point during
//! an update/checkpoint workload leaves the store directory in a state from
//! which [`S2rdfStore::load`] recovers a **batch-prefix** of the workload —
//! the triples, VP partitions, ExtVP reductions and catalog statistics are
//! all byte-equivalent (in query results and summary statistics) to a store
//! rebuilt from scratch on that prefix graph. Nothing torn, nothing
//! half-applied, nothing silently lost after its WAL append completed *and*
//! a later batch survived.
//!
//! The enumeration works like the classic "CrashMonkey" style harnesses:
//! a fault-free baseline run counts the write-side fault points the
//! workload crosses (`FaultInjector::op_count`); the kill loop then replays
//! the same workload once per fault point with `kill_after_ops = k`,
//! reopens the directory without any injector, and checks the recovered
//! store against every admissible prefix state.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use s2rdf_columnar::{FaultConfig, FaultInjector};
use s2rdf_core::{BuildOptions, CoreError, ExtVpMode, S2rdfStore};
use s2rdf_model::{Graph, Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// G1 from the paper (§2.1).
fn g1() -> Vec<Triple> {
    vec![
        t("A", "follows", "B"),
        t("B", "follows", "C"),
        t("B", "follows", "D"),
        t("C", "follows", "D"),
        t("A", "likes", "I1"),
        t("A", "likes", "I2"),
        t("C", "likes", "I2"),
    ]
}

/// One update step of the workload: a batch of inserts and deletes,
/// optionally followed by a checkpoint.
struct Step {
    ins: Vec<Triple>,
    del: Vec<Triple>,
    checkpoint_after: bool,
}

/// The workload: three batches (touching existing predicates, introducing
/// a brand-new predicate with new dictionary terms, and draining rows) with
/// checkpoints interleaved so the kill loop crosses both WAL-append and
/// checkpoint fault points. Each prefix leaves a distinct triple count
/// (7 → 9 → 8 → 10) so the recovered state is identifiable.
fn workload() -> Vec<Step> {
    vec![
        Step {
            ins: vec![
                t("D", "likes", "I3"), // new object term
                t("E", "knows", "A"),  // new predicate + new subject
                t("A", "likes", "I1"), // duplicate: must be a no-op
            ],
            del: vec![],
            checkpoint_after: false,
        },
        Step {
            ins: vec![],
            del: vec![
                t("B", "follows", "C"),
                t("X", "follows", "Y"), // absent: must be a no-op
            ],
            checkpoint_after: true,
        },
        Step {
            ins: vec![
                t("C", "knows", "E"),
                t("E", "likes", "I3"),
                t("D", "knows", "A"),
            ],
            del: vec![t("A", "likes", "I2")],
            checkpoint_after: true,
        },
    ]
}

/// Queries probing every maintained structure: the full chain query (ExtVP
/// SS/OS/SO reductions), the predicate introduced by the deltas, and a
/// two-pattern join over predicates the deltas drain.
const PROBES: &[&str] = &[
    "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y . ?y <follows> ?z . ?z <likes> ?w }",
    "SELECT * WHERE { ?a <knows> ?b }",
    "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?o }",
    "SELECT * WHERE { ?s ?p ?o }",
];

/// Expected state after a prefix of the workload: the prefix graph plus
/// the canonical probe answers of a store rebuilt from scratch on it.
struct PrefixState {
    total_triples: usize,
    probes: Vec<Vec<String>>,
    num_extvp_tables: usize,
    extvp_tuples: usize,
}

fn prefix_states(options: &BuildOptions) -> Vec<PrefixState> {
    let mut triples = g1();
    let mut states = Vec::new();
    let snapshot = |triples: &[Triple]| {
        let rebuilt = S2rdfStore::build(&Graph::from_triples(triples.iter().cloned()), options);
        PrefixState {
            total_triples: triples.len(),
            probes: PROBES
                .iter()
                .map(|q| rebuilt.query(q).unwrap().canonical())
                .collect(),
            num_extvp_tables: rebuilt.num_extvp_tables(),
            extvp_tuples: rebuilt.extvp_tuples(),
        }
    };
    states.push(snapshot(&triples));
    for step in workload() {
        for ins in &step.ins {
            if !triples.contains(ins) {
                triples.push(ins.clone());
            }
        }
        triples.retain(|x| !step.del.contains(x));
        states.push(snapshot(&triples));
    }
    // The prefix detector keys on the triple count; the workload is
    // constructed so every prefix is distinguishable.
    let counts: Vec<usize> = states.iter().map(|s| s.total_triples).collect();
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(
            counts.iter().position(|x| x == c),
            Some(i),
            "workload prefixes must have distinct triple counts, got {counts:?}"
        );
    }
    states
}

/// Applies the whole workload; the first fault aborts (as a real process
/// death would, mid-sequence).
fn run_workload(store: &mut S2rdfStore) -> Result<(), CoreError> {
    for step in workload() {
        store.update_batch(&step.ins, &step.del)?;
        if step.checkpoint_after {
            store.checkpoint()?;
        }
    }
    Ok(())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2rdf-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Checks a recovered store against the admissible prefix states and
/// returns the index of the state it matched.
fn assert_prefix_state(store: &S2rdfStore, states: &[PrefixState], ctx: &str) -> usize {
    let total = store.catalog().total_triples;
    let idx = states
        .iter()
        .position(|s| s.total_triples == total)
        .unwrap_or_else(|| panic!("{ctx}: recovered {total} triples, not any workload prefix"));
    let state = &states[idx];
    for (q, expected) in PROBES.iter().zip(&state.probes) {
        let got = store
            .query(q)
            .unwrap_or_else(|e| panic!("{ctx}: probe failed after recovery: {e}"))
            .canonical();
        assert_eq!(&got, expected, "{ctx}: probe {q} diverged from rebuild");
    }
    assert_eq!(
        store.num_extvp_tables(),
        state.num_extvp_tables,
        "{ctx}: materialized ExtVP set diverged from rebuild"
    );
    assert_eq!(
        store.extvp_tuples(),
        state.extvp_tuples,
        "{ctx}: ExtVP tuple count diverged from rebuild"
    );
    idx
}

/// The full enumeration: kill the process (via the injector's kill switch)
/// after every write-side fault point the workload crosses, reopen, and
/// require a consistent batch-prefix state plus a clean offline verify.
fn kill_at_every_fault_point(tag: &str, options: &BuildOptions) {
    let pristine = temp_dir(&format!("{tag}-pristine"));
    S2rdfStore::build(&Graph::from_triples(g1()), options)
        .save(&pristine)
        .unwrap();
    let states = prefix_states(options);
    let final_state = states.len() - 1;

    // Fault-free baseline: count the write-side fault points and prove the
    // workload itself lands on the final state.
    let work = temp_dir(&format!("{tag}-work"));
    copy_dir(&pristine, &work);
    let injector = Arc::new(FaultInjector::new(FaultConfig::default()));
    let total_ops = {
        let mut store = S2rdfStore::load(&work).unwrap();
        store.set_fault_injector_deep(Some(injector.clone()));
        run_workload(&mut store).unwrap();
        assert_eq!(
            assert_prefix_state(&store, &states, "baseline"),
            final_state
        );
        injector.op_count()
    };
    assert!(
        (5..500).contains(&(total_ops as usize)),
        "implausible fault-point count {total_ops}"
    );
    // The baseline ends checkpointed: a plain reopen must also be final.
    let reopened = S2rdfStore::load(&work).unwrap();
    assert_eq!(reopened.wal_pending(), 0, "baseline left WAL records");
    assert_eq!(
        assert_prefix_state(&reopened, &states, "baseline reopen"),
        final_state
    );
    drop(reopened);

    let mut reached = vec![false; states.len()];
    for k in 0..total_ops {
        let ctx = format!("{tag} kill at op {k}/{total_ops}");
        let dir = temp_dir(&format!("{tag}-kill"));
        copy_dir(&pristine, &dir);
        {
            let mut store = S2rdfStore::load(&dir).unwrap();
            store.set_fault_injector_deep(Some(Arc::new(FaultInjector::new(FaultConfig {
                kill_after_ops: Some(k),
                ..FaultConfig::default()
            }))));
            let died = run_workload(&mut store);
            assert!(died.is_err(), "{ctx}: kill did not surface an error");
            // The process is gone: whatever the in-memory store held is
            // lost. Only the directory survives.
        }

        // Recovery pass 1: reopen replays the WAL. No injector attached.
        let recovered =
            S2rdfStore::load(&dir).unwrap_or_else(|e| panic!("{ctx}: store did not reopen: {e}"));
        let idx = assert_prefix_state(&recovered, &states, &ctx);
        reached[idx] = true;
        drop(recovered);

        // Offline verify must find nothing unrecoverable; interrupted
        // flushes may only have left orphan files, which repair sweeps.
        let report = S2rdfStore::verify_and_repair(&dir).unwrap();
        assert!(
            report.unrecoverable.is_empty(),
            "{ctx}: unrecoverable damage {:?}",
            report.unrecoverable
        );
        assert!(report.clean_after, "{ctx}: verify not clean after repair");

        // Recovery pass 2: checkpoint the recovered store and reopen once
        // more — the state must be stable (same prefix, empty WAL).
        let mut recovered = S2rdfStore::load(&dir).unwrap();
        recovered
            .checkpoint()
            .unwrap_or_else(|e| panic!("{ctx}: post-recovery checkpoint failed: {e}"));
        drop(recovered);
        let settled = S2rdfStore::load(&dir).unwrap();
        assert_eq!(
            settled.wal_pending(),
            0,
            "{ctx}: checkpoint left WAL records"
        );
        assert_eq!(
            assert_prefix_state(&settled, &states, &format!("{ctx} (settled)")),
            idx,
            "{ctx}: state changed across checkpoint+reopen"
        );
        drop(settled);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // The enumeration must actually exercise partial progress: the initial
    // state (early kills) and the final state (late kills) are both
    // reachable. Intermediate prefixes appear unless every fault point of
    // a batch shares its fate with the next — with interleaved checkpoints
    // they do not.
    assert!(reached[0], "{tag}: no kill preserved the initial state");
    assert!(
        reached[final_state],
        "{tag}: no kill reached the final state"
    );
    assert!(
        reached.iter().filter(|r| **r).count() >= 3,
        "{tag}: kill enumeration visited too few distinct prefixes: {reached:?}"
    );

    std::fs::remove_dir_all(&pristine).unwrap();
    std::fs::remove_dir_all(&work).unwrap();
}

#[test]
fn kill_and_recover_materialized_mode() {
    kill_at_every_fault_point("rows", &BuildOptions::default());
}

#[test]
fn kill_and_recover_bitvector_mode() {
    kill_at_every_fault_point(
        "bits",
        &BuildOptions {
            mode: ExtVpMode::BitVector,
            ..BuildOptions::default()
        },
    );
}

/// A torn WAL append (the crash window *inside* `Wal::append`) loses the
/// uncommitted batch and everything after it — never a prefix violation,
/// never an error at reopen.
#[test]
fn torn_wal_append_loses_only_uncommitted_batches() {
    let options = BuildOptions::default();
    let pristine = temp_dir("torn-append");
    S2rdfStore::build(&Graph::from_triples(g1()), &options)
        .save(&pristine)
        .unwrap();
    let states = prefix_states(&options);

    let mut store = S2rdfStore::load(&pristine).unwrap();
    store.set_fault_injector_deep(Some(Arc::new(FaultInjector::new(FaultConfig {
        torn_append: 1.0,
        seed: 7,
        ..FaultConfig::default()
    }))));
    // The very first append is torn mid-record — the injector surfaces the
    // crash as an error, exactly like a process death inside `append`.
    let step = &workload()[0];
    let died = store.update_batch(&step.ins, &step.del);
    assert!(died.is_err(), "torn append must surface as an error");
    drop(store);

    let recovered = S2rdfStore::load(&pristine).unwrap();
    assert_eq!(
        assert_prefix_state(&recovered, &states, "torn append"),
        0,
        "torn WAL records must not replay"
    );
    assert_eq!(recovered.wal_pending(), 0, "residue must be truncated");
    drop(recovered);
    std::fs::remove_dir_all(&pristine).unwrap();
}

/// A bit flip inside a later WAL record (decay, not a crash) cuts replay at
/// the damaged record: earlier batches survive, later ones are dropped, and
/// the reopen still succeeds.
#[test]
fn wal_bit_flip_cuts_replay_at_damaged_record() {
    let options = BuildOptions::default();
    let dir = temp_dir("bitflip");
    S2rdfStore::build(&Graph::from_triples(g1()), &options)
        .save(&dir)
        .unwrap();
    let states = prefix_states(&options);

    let mut store = S2rdfStore::load(&dir).unwrap();
    for step in workload().into_iter().take(2) {
        store.update_batch(&step.ins, &step.del).unwrap();
    }
    assert_eq!(store.wal_pending(), 2);
    drop(store);

    // Flip a payload bit inside the *second* record (offsets: 5-byte file
    // header, then [len][crc][payload] per record).
    let wal_path = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let len1 = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let second_payload = 5 + 8 + len1 + 8;
    assert!(second_payload < bytes.len(), "second record must exist");
    bytes[second_payload] ^= 0x01;
    std::fs::write(&wal_path, &bytes).unwrap();

    let recovered = S2rdfStore::load(&dir).unwrap();
    assert_eq!(
        assert_prefix_state(&recovered, &states, "bit flip"),
        1,
        "replay must stop exactly at the damaged record"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
