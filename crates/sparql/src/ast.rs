//! Query AST, structured as the SPARQL algebra.

use s2rdf_model::Term;

use crate::expr::Expression;

/// A position in a triple pattern: either a variable or a bound RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    /// A query variable (name without the leading `?`).
    Var(String),
    /// A bound term.
    Term(Term),
}

impl TermPattern {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    /// The bound term, if this is one.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            TermPattern::Var(_) => None,
            TermPattern::Term(t) => Some(t),
        }
    }

    /// True if this position is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, TermPattern::Var(_))
    }
}

/// A triple pattern `tp = (s', p', o')` (paper §2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject position.
    pub s: TermPattern,
    /// Predicate position.
    pub p: TermPattern,
    /// Object position.
    pub o: TermPattern,
}

impl TriplePattern {
    /// Creates a triple pattern.
    pub fn new(s: TermPattern, p: TermPattern, o: TermPattern) -> TriplePattern {
        TriplePattern { s, p, o }
    }

    /// The set of variables in this pattern, in s/p/o order, deduplicated.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for pos in [&self.s, &self.p, &self.o] {
            if let Some(v) = pos.as_var() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Number of bound (non-variable) positions — the selectivity proxy the
    /// join-order optimizer sorts by first (paper §6.2).
    pub fn bound_count(&self) -> usize {
        [&self.s, &self.p, &self.o]
            .iter()
            .filter(|p| !p.is_var())
            .count()
    }
}

/// A SPARQL 1.1 property path expression (the path grammar's algebra form).
///
/// A plain IRI in the verb position is parsed as an ordinary
/// [`TriplePattern`]; only composite paths reach this type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropertyPath {
    /// A single predicate IRI (one edge step).
    Iri(Term),
    /// `^path`: follow edges object→subject.
    Inverse(Box<PropertyPath>),
    /// `a/b`: relation composition.
    Sequence(Box<PropertyPath>, Box<PropertyPath>),
    /// `a|b`: relation union.
    Alternative(Box<PropertyPath>, Box<PropertyPath>),
    /// `path*`: reflexive-transitive closure.
    ZeroOrMore(Box<PropertyPath>),
    /// `path+`: transitive closure.
    OneOrMore(Box<PropertyPath>),
    /// `path?`: zero-or-one step.
    ZeroOrOne(Box<PropertyPath>),
}

impl PropertyPath {
    /// True if the path can match a zero-length walk (endpoint = endpoint).
    pub fn allows_zero_length(&self) -> bool {
        match self {
            PropertyPath::Iri(_) | PropertyPath::OneOrMore(_) => false,
            PropertyPath::Inverse(p) => p.allows_zero_length(),
            PropertyPath::Sequence(a, b) => a.allows_zero_length() && b.allows_zero_length(),
            PropertyPath::Alternative(a, b) => a.allows_zero_length() || b.allows_zero_length(),
            PropertyPath::ZeroOrMore(_) | PropertyPath::ZeroOrOne(_) => true,
        }
    }
}

/// A graph pattern in algebra form.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphPattern {
    /// A basic graph pattern: a set of triple patterns joined on shared
    /// variables.
    Bgp(Vec<TriplePattern>),
    /// A property-path pattern `s path o` (SPARQL 1.1 §9).
    Path {
        /// Subject endpoint.
        subject: TermPattern,
        /// The path expression.
        path: PropertyPath,
        /// Object endpoint.
        object: TermPattern,
    },
    /// FILTER: keep solutions where the expression evaluates to true.
    Filter {
        /// The filter condition.
        expr: Expression,
        /// The filtered pattern.
        inner: Box<GraphPattern>,
    },
    /// `BIND(expr AS ?var)`: extend each inner solution with a computed
    /// binding (an expression error leaves the variable unbound).
    Bind {
        /// The computed expression.
        expr: Expression,
        /// The new variable it binds.
        var: String,
        /// The pattern the binding extends (everything before the BIND in
        /// its group).
        inner: Box<GraphPattern>,
    },
    /// `VALUES`: an inline solution sequence, joined like any other table.
    /// `None` cells are `UNDEF`.
    Values {
        /// The block's variables.
        vars: Vec<String>,
        /// One row per inline solution.
        rows: Vec<Vec<Option<Term>>>,
    },
    /// Join of two group patterns (juxtaposition in the syntax).
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// OPTIONAL: left outer join.
    LeftJoin(Box<GraphPattern>, Box<GraphPattern>),
    /// UNION of two patterns.
    Union(Box<GraphPattern>, Box<GraphPattern>),
}

impl GraphPattern {
    /// All variables mentioned in the pattern, first-occurrence order.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        let mut add = |v: &str| {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        };
        match self {
            GraphPattern::Bgp(tps) => {
                for tp in tps {
                    for v in tp.vars() {
                        add(v);
                    }
                }
            }
            GraphPattern::Path {
                subject, object, ..
            } => {
                for pos in [subject, object] {
                    if let Some(v) = pos.as_var() {
                        add(v);
                    }
                }
            }
            GraphPattern::Filter { inner, .. } => inner.collect_vars(out),
            GraphPattern::Bind { var, inner, .. } => {
                inner.collect_vars(out);
                if !out.iter().any(|x| x == var) {
                    out.push(var.clone());
                }
            }
            GraphPattern::Values { vars, .. } => {
                for v in vars {
                    add(v);
                }
            }
            GraphPattern::Join(l, r) | GraphPattern::LeftJoin(l, r) | GraphPattern::Union(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }
}

/// The projection of a SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// `SELECT *`: all variables in the pattern.
    All,
    /// An explicit variable list.
    Vars(Vec<String>),
    /// A projection containing aggregates (SPARQL 1.1 — the paper lists
    /// aggregation as future work, implemented here), e.g.
    /// `SELECT ?x (COUNT(?y) AS ?n)`.
    Items(Vec<SelectItem>),
}

/// One item of an aggregate projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain (group-key) variable.
    Var(String),
    /// `(<func>([DISTINCT] <expr>|*) AS ?alias)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated expression; `None` is `COUNT(*)`.
        arg: Option<Expression>,
        /// `DISTINCT` inside the aggregate.
        distinct: bool,
        /// Output variable name.
        alias: String,
    },
}

/// SPARQL 1.1 aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// The SPARQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One ORDER BY condition.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderCondition {
    /// The sort key expression (usually a bare variable).
    pub expr: Expression,
    /// True for DESC.
    pub descending: bool,
}

/// The query form: what the solution sequence is turned into.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    /// `SELECT`: project variables into a solution table.
    Select,
    /// `ASK`: a boolean — does the pattern have at least one solution?
    Ask,
    /// `CONSTRUCT { template }`: instantiate the template per solution into
    /// an RDF graph.
    Construct(Vec<TriplePattern>),
    /// `DESCRIBE <target>… / ?var…`: emit all triples mentioning each
    /// target resource.
    Describe(Vec<TermPattern>),
}

/// A parsed query (any form; `SELECT` unless [`Query::form`] says
/// otherwise).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The query form (SELECT/ASK/CONSTRUCT/DESCRIBE).
    pub form: QueryForm,
    /// Projected variables.
    pub selection: Selection,
    /// True if DISTINCT was given.
    pub distinct: bool,
    /// The WHERE pattern in algebra form.
    pub pattern: GraphPattern,
    /// GROUP BY variables (SPARQL 1.1).
    pub group_by: Vec<String>,
    /// ORDER BY conditions, outermost first.
    pub order_by: Vec<OrderCondition>,
    /// LIMIT, if given.
    pub limit: Option<usize>,
    /// OFFSET, if given.
    pub offset: Option<usize>,
}

impl Query {
    /// The variables this query projects, resolving `SELECT *` against the
    /// pattern. For aggregate projections these are the output columns
    /// (group keys and aliases).
    pub fn projected_vars(&self) -> Vec<String> {
        match &self.selection {
            Selection::All => self.pattern.vars(),
            Selection::Vars(vs) => vs.clone(),
            Selection::Items(items) => items
                .iter()
                .map(|item| match item {
                    SelectItem::Var(v) => v.clone(),
                    SelectItem::Aggregate { alias, .. } => alias.clone(),
                })
                .collect(),
        }
    }

    /// True if the query uses aggregation (aggregate projection or GROUP
    /// BY).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty() || matches!(self.selection, Selection::Items(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: &str) -> TermPattern {
        TermPattern::Var(v.to_string())
    }

    fn iri(i: &str) -> TermPattern {
        TermPattern::Term(Term::iri(i))
    }

    #[test]
    fn triple_pattern_vars_dedup() {
        let tp = TriplePattern::new(var("x"), iri("p"), var("x"));
        assert_eq!(tp.vars(), vec!["x"]);
        assert_eq!(tp.bound_count(), 1);
    }

    #[test]
    fn pattern_vars_first_occurrence_order() {
        let bgp = GraphPattern::Bgp(vec![
            TriplePattern::new(var("b"), iri("p"), var("a")),
            TriplePattern::new(var("a"), iri("q"), var("c")),
        ]);
        assert_eq!(bgp.vars(), vec!["b", "a", "c"]);
    }

    #[test]
    fn select_star_resolves_vars() {
        let q = Query {
            form: QueryForm::Select,
            selection: Selection::All,
            distinct: false,
            pattern: GraphPattern::Bgp(vec![TriplePattern::new(var("x"), iri("p"), var("y"))]),
            group_by: vec![],
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert_eq!(q.projected_vars(), vec!["x", "y"]);
    }
}
