//! SPARQL lexer, parser, algebra and algebraic optimizations.
//!
//! The supported fragment starts from the one S2RDF implements (paper
//! §6.1) — basic graph patterns, FILTER, OPTIONAL, UNION, DISTINCT, ORDER
//! BY, LIMIT/OFFSET, and PREFIX declarations — and extends it with the
//! SPARQL 1.1 breadth the paper leaves as future work: aggregation
//! (GROUP BY + COUNT/SUM/AVG/MIN/MAX), property paths
//! (`^`, `/`, `|`, `*`, `+`, `?`), BIND/VALUES, and the
//! ASK/CONSTRUCT/DESCRIBE query forms.
//!
//! Parsing produces a [`Query`] whose [`GraphPattern`] mirrors the SPARQL
//! algebra (BGP / Path / Filter / Bind / Values / LeftJoin / Union /
//! Join); the [`optimizer`] applies the algebraic rewrites the paper
//! mentions (filter splitting and pushdown).

pub mod ast;
pub mod expr;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod render;
pub mod shape;

pub use ast::{
    AggFunc, GraphPattern, OrderCondition, PropertyPath, Query, QueryForm, SelectItem, Selection,
    TermPattern, TriplePattern,
};
pub use expr::{EvalError, Expression, Value};
pub use parser::{parse_query, ParseError};
