//! SPARQL 1.0 subset: lexer, parser, algebra and algebraic optimizations.
//!
//! The supported fragment is the one S2RDF implements (paper §6.1): basic
//! graph patterns, FILTER, OPTIONAL, UNION, DISTINCT, ORDER BY,
//! LIMIT/OFFSET, and PREFIX declarations. SPARQL 1.1 features (subqueries,
//! aggregation, property paths) are out of scope, exactly as in the paper.
//!
//! Parsing produces a [`Query`] whose [`GraphPattern`] mirrors the SPARQL
//! algebra (BGP / Filter / LeftJoin / Union / Join); the
//! [`optimizer`] applies the algebraic rewrites the paper mentions
//! (filter splitting and pushdown).

pub mod ast;
pub mod expr;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod render;
pub mod shape;

pub use ast::{
    AggFunc, GraphPattern, OrderCondition, Query, SelectItem, Selection, TermPattern, TriplePattern,
};
pub use expr::{EvalError, Expression, Value};
pub use parser::{parse_query, ParseError};
