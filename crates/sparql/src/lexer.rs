//! Tokenizer for the SPARQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<iri>`
    IriRef(String),
    /// `prefix:local` (either part may be empty).
    PName(String, String),
    /// `?name` (or `$name`).
    Var(String),
    /// A quoted string with optional `@lang` or datatype reference.
    StringLit {
        /// Lexical form (unescaped).
        lexical: String,
        /// Language tag, if any.
        lang: Option<String>,
        /// Datatype: either a full IRI or a prefixed name to resolve later.
        datatype: Option<DatatypeRef>,
    },
    /// Integer literal.
    Integer(i64),
    /// Decimal/double literal (kept as text for lossless round-trips).
    Decimal(String),
    /// A bare word: keyword, `a`, `true`, `false`, or a function name.
    Word(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `|` (property-path alternative)
    Pipe,
    /// `^` (property-path inverse)
    Caret,
    /// A bare `?` not starting a variable (property-path zero-or-one).
    Question,
}

/// A datatype annotation on a string literal.
#[derive(Debug, Clone, PartialEq)]
pub enum DatatypeRef {
    /// `^^<iri>`
    Iri(String),
    /// `^^prefix:local`
    PName(String, String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::IriRef(i) => write!(f, "<{i}>"),
            Token::PName(p, l) => write!(f, "{p}:{l}"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::StringLit { lexical, .. } => write!(f, "\"{lexical}\""),
            Token::Integer(n) => write!(f, "{n}"),
            Token::Decimal(d) => write!(f, "{d}"),
            Token::Word(w) => write!(f, "{w}"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Star => write!(f, "*"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Question => write!(f, "?"),
        }
    }
}

/// A lexer error with a byte offset and 1-based line/column into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// 1-based line of the problem.
    pub line: u32,
    /// 1-based column (in characters) of the problem.
    pub column: u32,
    /// Description.
    pub message: String,
}

impl LexError {
    fn new(src: &str, offset: usize, message: impl Into<String>) -> Self {
        let (line, column) = locate(src, offset);
        LexError {
            offset,
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Maps a byte offset to a 1-based (line, column) pair.
pub fn locate(src: &str, offset: usize) -> (u32, u32) {
    let mut line = 1u32;
    let mut column = 1u32;
    for (i, ch) in src.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            column = 1;
        } else {
            column += 1;
        }
    }
    (line, column)
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

fn is_name_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes a query string. `#` starts a comment to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    tokenize_spanned(src).map(|(tokens, _)| tokens)
}

/// Tokenizes a query string, also returning the byte offset each token
/// starts at (for error positions; see [`locate`]).
pub fn tokenize_spanned(src: &str) -> Result<(Vec<Token>, Vec<usize>), LexError> {
    let mut tokens = Vec::new();
    let mut offsets = Vec::new();
    let mut i = skip_trivia(src, 0);
    while i < src.len() {
        let (tok, next) = next_token(src, i)?;
        tokens.push(tok);
        offsets.push(i);
        i = skip_trivia(src, next);
    }
    Ok((tokens, offsets))
}

/// Advances past whitespace and `#`-to-end-of-line comments.
fn skip_trivia(src: &str, mut i: usize) -> usize {
    let bytes = src.as_bytes();
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    i
}

/// Lexes one token starting exactly at `i`, returning it and the offset of
/// the first byte past it.
fn next_token(src: &str, i: usize) -> Result<(Token, usize), LexError> {
    let bytes = src.as_bytes();
    let c = bytes[i] as char;
    match c {
        '{' => Ok((Token::LBrace, i + 1)),
        '}' => Ok((Token::RBrace, i + 1)),
        '(' => Ok((Token::LParen, i + 1)),
        ')' => Ok((Token::RParen, i + 1)),
        ';' => Ok((Token::Semicolon, i + 1)),
        ',' => Ok((Token::Comma, i + 1)),
        '*' => Ok((Token::Star, i + 1)),
        '+' => Ok((Token::Plus, i + 1)),
        '/' => Ok((Token::Slash, i + 1)),
        '=' => Ok((Token::Eq, i + 1)),
        '^' => Ok((Token::Caret, i + 1)),
        '&' => {
            if bytes.get(i + 1) == Some(&b'&') {
                Ok((Token::AndAnd, i + 2))
            } else {
                Err(LexError::new(src, i, "expected &&"))
            }
        }
        '|' => {
            if bytes.get(i + 1) == Some(&b'|') {
                Ok((Token::OrOr, i + 2))
            } else {
                Ok((Token::Pipe, i + 1))
            }
        }
        '!' => {
            if bytes.get(i + 1) == Some(&b'=') {
                Ok((Token::Ne, i + 2))
            } else {
                Ok((Token::Bang, i + 1))
            }
        }
        '>' => {
            if bytes.get(i + 1) == Some(&b'=') {
                Ok((Token::Ge, i + 2))
            } else {
                Ok((Token::Gt, i + 1))
            }
        }
        '<' => {
            // IRIREF if a '>' appears before any whitespace; otherwise a
            // comparison operator.
            let rest = &src[i + 1..];
            let close = rest.find('>');
            let ws = rest.find(char::is_whitespace);
            match (close, ws) {
                (Some(c_idx), w) if w.is_none_or(|w_idx| c_idx < w_idx) => {
                    Ok((Token::IriRef(rest[..c_idx].to_string()), i + c_idx + 2))
                }
                _ => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        Ok((Token::Le, i + 2))
                    } else {
                        Ok((Token::Lt, i + 1))
                    }
                }
            }
        }
        '?' | '$' => {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && is_name_char(bytes[j] as char) {
                j += 1;
            }
            if j == start {
                // A bare `?` is the zero-or-one path modifier; a bare `$` is
                // never valid.
                if c == '?' {
                    return Ok((Token::Question, i + 1));
                }
                return Err(LexError::new(src, i, "empty variable name"));
            }
            Ok((Token::Var(src[start..j].to_string()), j))
        }
        '"' => lex_string(src, i),
        '-' => {
            // Negative number or bare minus.
            if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                Ok(lex_number(src, i))
            } else {
                Ok((Token::Minus, i + 1))
            }
        }
        '0'..='9' => Ok(lex_number(src, i)),
        '.' => Ok((Token::Dot, i + 1)),
        c if is_name_start(c) => {
            let start = i;
            let mut j = i;
            while j < bytes.len() && is_name_char(bytes[j] as char) {
                j += 1;
            }
            if bytes.get(j) == Some(&b':') {
                // Prefixed name: prefix ':' local
                let prefix = src[start..j].to_string();
                let mut k = j + 1;
                while k < bytes.len() && is_name_char(bytes[k] as char) {
                    k += 1;
                }
                // Local names must not end with '.': the trailing dot is
                // the triple terminator.
                let mut end = k;
                while end > j + 1 && bytes[end - 1] == b'.' {
                    end -= 1;
                }
                Ok((Token::PName(prefix, src[j + 1..end].to_string()), end))
            } else {
                // Bare word; strip trailing dots (triple terminator).
                let mut end = j;
                while end > start && bytes[end - 1] == b'.' {
                    end -= 1;
                }
                Ok((Token::Word(src[start..end].to_string()), end))
            }
        }
        ':' => {
            // PName with empty prefix.
            let mut k = i + 1;
            while k < bytes.len() && is_name_char(bytes[k] as char) {
                k += 1;
            }
            let mut end = k;
            while end > i + 1 && bytes[end - 1] == b'.' {
                end -= 1;
            }
            Ok((
                Token::PName(String::new(), src[i + 1..end].to_string()),
                end,
            ))
        }
        other => Err(LexError::new(
            src,
            i,
            format!("unexpected character {other:?}"),
        )),
    }
}

fn lex_number(src: &str, start: usize) -> (Token, usize) {
    let bytes = src.as_bytes();
    let mut j = start;
    if bytes[j] == b'-' {
        j += 1;
    }
    while j < bytes.len() && bytes[j].is_ascii_digit() {
        j += 1;
    }
    // A '.' only belongs to the number if followed by a digit (otherwise it
    // terminates a triple).
    if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        return (Token::Decimal(src[start..j].to_string()), j);
    }
    let text = &src[start..j];
    match text.parse::<i64>() {
        Ok(n) => (Token::Integer(n), j),
        Err(_) => (Token::Decimal(text.to_string()), j),
    }
}

fn lex_string(src: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = src.as_bytes();
    let mut j = start + 1;
    let mut lexical = String::new();
    loop {
        match bytes.get(j) {
            None => return Err(LexError::new(src, start, "unterminated string")),
            Some(b'"') => break,
            Some(b'\\') => {
                match bytes.get(j + 1) {
                    Some(b'n') => lexical.push('\n'),
                    Some(b't') => lexical.push('\t'),
                    Some(b'r') => lexical.push('\r'),
                    Some(&c) => lexical.push(c as char),
                    None => return Err(LexError::new(src, j, "dangling escape")),
                }
                j += 2;
            }
            Some(_) => {
                // Advance one UTF-8 character.
                let ch = src[j..].chars().next().unwrap();
                lexical.push(ch);
                j += ch.len_utf8();
            }
        }
    }
    j += 1; // closing quote
            // Optional @lang
    if bytes.get(j) == Some(&b'@') {
        let start_lang = j + 1;
        let mut k = start_lang;
        while k < bytes.len() && ((bytes[k] as char).is_ascii_alphanumeric() || bytes[k] == b'-') {
            k += 1;
        }
        return Ok((
            Token::StringLit {
                lexical,
                lang: Some(src[start_lang..k].to_string()),
                datatype: None,
            },
            k,
        ));
    }
    // Optional ^^datatype
    if src[j..].starts_with("^^") {
        let k = j + 2;
        if bytes.get(k) == Some(&b'<') {
            let close = src[k + 1..]
                .find('>')
                .ok_or_else(|| LexError::new(src, k, "unterminated datatype IRI"))?;
            let iri = src[k + 1..k + 1 + close].to_string();
            return Ok((
                Token::StringLit {
                    lexical,
                    lang: None,
                    datatype: Some(DatatypeRef::Iri(iri)),
                },
                k + close + 2,
            ));
        }
        // prefixed datatype
        let mut m = k;
        while m < bytes.len() && is_name_char(bytes[m] as char) {
            m += 1;
        }
        if bytes.get(m) != Some(&b':') {
            return Err(LexError::new(src, k, "bad datatype"));
        }
        let prefix = src[k..m].to_string();
        let mut n = m + 1;
        while n < bytes.len() && is_name_char(bytes[n] as char) {
            n += 1;
        }
        let mut end = n;
        while end > m + 1 && bytes[end - 1] == b'.' {
            end -= 1;
        }
        return Ok((
            Token::StringLit {
                lexical,
                lang: None,
                datatype: Some(DatatypeRef::PName(prefix, src[m + 1..end].to_string())),
            },
            end,
        ));
    }
    Ok((
        Token::StringLit {
            lexical,
            lang: None,
            datatype: None,
        },
        j,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT * WHERE { ?x <p> ?y . }").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Star,
                Token::Word("WHERE".into()),
                Token::LBrace,
                Token::Var("x".into()),
                Token::IriRef("p".into()),
                Token::Var("y".into()),
                Token::Dot,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn prefixed_names_and_trailing_dot() {
        let toks = tokenize("?v0 wsdbm:follows wsdbm:User123 .").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Var("v0".into()),
                Token::PName("wsdbm".into(), "follows".into()),
                Token::PName("wsdbm".into(), "User123".into()),
                Token::Dot,
            ]
        );
    }

    #[test]
    fn iri_vs_less_than() {
        let toks = tokenize("FILTER(?x < 5 && ?y <= <http://e/x>)").unwrap();
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::IriRef("http://e/x".into())));
    }

    #[test]
    fn string_literals() {
        let toks = tokenize(r#""plain" "tagged"@en-GB "typed"^^xsd:integer"#).unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(
            toks[1],
            Token::StringLit {
                lexical: "tagged".into(),
                lang: Some("en-GB".into()),
                datatype: None
            }
        );
        assert_eq!(
            toks[2],
            Token::StringLit {
                lexical: "typed".into(),
                lang: None,
                datatype: Some(DatatypeRef::PName("xsd".into(), "integer".into()))
            }
        );
    }

    #[test]
    fn numbers() {
        let toks = tokenize("5 -3 2.5 10.").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Integer(5),
                Token::Integer(-3),
                Token::Decimal("2.5".into()),
                Token::Integer(10),
                Token::Dot,
            ]
        );
    }

    #[test]
    fn comments_ignored() {
        let toks = tokenize("?x # comment with <junk> ?y\n?z").unwrap();
        assert_eq!(toks, vec![Token::Var("x".into()), Token::Var("z".into())]);
    }

    #[test]
    fn operators() {
        let toks = tokenize("= != ! && || > >= + - / *").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Bang,
                Token::AndAnd,
                Token::OrOr,
                Token::Gt,
                Token::Ge,
                Token::Plus,
                Token::Minus,
                Token::Slash,
                Token::Star,
            ]
        );
    }

    #[test]
    fn path_operators() {
        // `|` alone is the path alternative, `^` the inverse, and a `?` not
        // followed by a name char is the zero-or-one modifier.
        let toks = tokenize("<a>|^<b> (<c>)? ").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::IriRef("a".into()),
                Token::Pipe,
                Token::Caret,
                Token::IriRef("b".into()),
                Token::LParen,
                Token::IriRef("c".into()),
                Token::RParen,
                Token::Question,
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("@@").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("$ ").is_err());
        assert!(tokenize("&x").is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = tokenize("?x ?y\n  \"unterminated").unwrap_err();
        assert_eq!((err.line, err.column), (2, 3));
        assert!(err.to_string().contains("line 2, column 3"));

        let (_, offsets) = tokenize_spanned("?x\n?y").unwrap();
        assert_eq!(offsets, vec![0, 3]);
        assert_eq!(locate("?x\n?y", 3), (2, 1));
    }
}
