//! Algebraic optimizations applied before compilation.
//!
//! S2RDF parses queries with Jena ARQ and applies "some basic algebraic
//! optimizations, e.g. filter pushing" (paper §6). This module implements
//! the equivalents:
//!
//! 1. **BGP merging** — adjacent joined BGPs collapse into one, so the
//!    join-order optimizer (paper Alg. 4) sees the full set of triple
//!    patterns at once,
//! 2. **filter splitting** — conjunctive filters split into one filter per
//!    conjunct, and
//! 3. **filter pushdown** — each filter moves to the smallest subpattern
//!    that binds all its variables.

use crate::ast::{GraphPattern, Query};
use crate::expr::Expression;

/// Optimizes a query in place.
pub fn optimize(query: &mut Query) {
    let pattern = std::mem::replace(&mut query.pattern, GraphPattern::Bgp(Vec::new()));
    query.pattern = optimize_pattern(pattern);
}

/// Optimizes a graph pattern.
pub fn optimize_pattern(pattern: GraphPattern) -> GraphPattern {
    let merged = merge_bgps(pattern);
    let split = split_filters(merged);
    push_filters(split)
}

/// Collapses `Join(Bgp, Bgp)` into a single BGP, bottom-up.
fn merge_bgps(pattern: GraphPattern) -> GraphPattern {
    match pattern {
        GraphPattern::Bgp(tps) => GraphPattern::Bgp(tps),
        GraphPattern::Filter { expr, inner } => GraphPattern::Filter {
            expr,
            inner: Box::new(merge_bgps(*inner)),
        },
        GraphPattern::Join(l, r) => {
            let l = merge_bgps(*l);
            let r = merge_bgps(*r);
            match (l, r) {
                (GraphPattern::Bgp(mut a), GraphPattern::Bgp(b)) => {
                    a.extend(b);
                    GraphPattern::Bgp(a)
                }
                // An empty BGP is the join identity.
                (GraphPattern::Bgp(a), other) if a.is_empty() => other,
                (other, GraphPattern::Bgp(b)) if b.is_empty() => other,
                (l, r) => GraphPattern::Join(Box::new(l), Box::new(r)),
            }
        }
        GraphPattern::LeftJoin(l, r) => {
            GraphPattern::LeftJoin(Box::new(merge_bgps(*l)), Box::new(merge_bgps(*r)))
        }
        GraphPattern::Union(l, r) => {
            GraphPattern::Union(Box::new(merge_bgps(*l)), Box::new(merge_bgps(*r)))
        }
        GraphPattern::Bind { expr, var, inner } => GraphPattern::Bind {
            expr,
            var,
            inner: Box::new(merge_bgps(*inner)),
        },
        // Paths and inline data are leaves for this pass.
        p @ (GraphPattern::Path { .. } | GraphPattern::Values { .. }) => p,
    }
}

/// Splits `Filter(a && b, p)` into `Filter(a, Filter(b, p))`, recursively.
fn split_filters(pattern: GraphPattern) -> GraphPattern {
    match pattern {
        GraphPattern::Filter { expr, inner } => {
            let mut inner = split_filters(*inner);
            for conjunct in conjuncts(expr) {
                inner = GraphPattern::Filter {
                    expr: conjunct,
                    inner: Box::new(inner),
                };
            }
            inner
        }
        GraphPattern::Join(l, r) => {
            GraphPattern::Join(Box::new(split_filters(*l)), Box::new(split_filters(*r)))
        }
        GraphPattern::LeftJoin(l, r) => {
            GraphPattern::LeftJoin(Box::new(split_filters(*l)), Box::new(split_filters(*r)))
        }
        GraphPattern::Union(l, r) => {
            GraphPattern::Union(Box::new(split_filters(*l)), Box::new(split_filters(*r)))
        }
        GraphPattern::Bind { expr, var, inner } => GraphPattern::Bind {
            expr,
            var,
            inner: Box::new(split_filters(*inner)),
        },
        p => p,
    }
}

fn conjuncts(expr: Expression) -> Vec<Expression> {
    match expr {
        Expression::And(a, b) => {
            let mut out = conjuncts(*a);
            out.extend(conjuncts(*b));
            out
        }
        e => vec![e],
    }
}

/// Pushes each filter into the deepest join branch that binds all its
/// variables. `BOUND` filters stay put: their meaning depends on OPTIONAL
/// scope.
fn push_filters(pattern: GraphPattern) -> GraphPattern {
    match pattern {
        GraphPattern::Filter { expr, inner } => {
            let inner = push_filters(*inner);
            push_one_filter(expr, inner)
        }
        GraphPattern::Join(l, r) => {
            GraphPattern::Join(Box::new(push_filters(*l)), Box::new(push_filters(*r)))
        }
        GraphPattern::LeftJoin(l, r) => {
            GraphPattern::LeftJoin(Box::new(push_filters(*l)), Box::new(push_filters(*r)))
        }
        GraphPattern::Union(l, r) => {
            GraphPattern::Union(Box::new(push_filters(*l)), Box::new(push_filters(*r)))
        }
        GraphPattern::Bind { expr, var, inner } => GraphPattern::Bind {
            expr,
            var,
            inner: Box::new(push_filters(*inner)),
        },
        p => p,
    }
}

fn uses_bound(expr: &Expression) -> bool {
    match expr {
        Expression::Bound(_) => true,
        Expression::Var(_) | Expression::Const(_) => false,
        Expression::And(a, b)
        | Expression::Or(a, b)
        | Expression::Eq(a, b)
        | Expression::Ne(a, b)
        | Expression::Lt(a, b)
        | Expression::Le(a, b)
        | Expression::Gt(a, b)
        | Expression::Ge(a, b)
        | Expression::Add(a, b)
        | Expression::Sub(a, b)
        | Expression::Mul(a, b)
        | Expression::Div(a, b) => uses_bound(a) || uses_bound(b),
        Expression::Not(e)
        | Expression::IsIri(e)
        | Expression::IsLiteral(e)
        | Expression::IsBlank(e)
        | Expression::Str(e)
        | Expression::Lang(e) => uses_bound(e),
    }
}

fn covers(pattern: &GraphPattern, vars: &[String]) -> bool {
    let pv = pattern.vars();
    vars.iter().all(|v| pv.contains(v))
}

fn push_one_filter(expr: Expression, pattern: GraphPattern) -> GraphPattern {
    if uses_bound(&expr) {
        return GraphPattern::Filter {
            expr,
            inner: Box::new(pattern),
        };
    }
    let vars = expr.vars();
    match pattern {
        GraphPattern::Join(l, r) => {
            if covers(&l, &vars) {
                GraphPattern::Join(Box::new(push_one_filter(expr, *l)), r)
            } else if covers(&r, &vars) {
                GraphPattern::Join(l, Box::new(push_one_filter(expr, *r)))
            } else {
                GraphPattern::Filter {
                    expr,
                    inner: Box::new(GraphPattern::Join(l, r)),
                }
            }
        }
        // A filter over OPTIONAL may only move into the required (left)
        // side.
        GraphPattern::LeftJoin(l, r) => {
            if covers(&l, &vars) {
                GraphPattern::LeftJoin(Box::new(push_one_filter(expr, *l)), r)
            } else {
                GraphPattern::Filter {
                    expr,
                    inner: Box::new(GraphPattern::LeftJoin(l, r)),
                }
            }
        }
        p => GraphPattern::Filter {
            expr,
            inner: Box::new(p),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{TermPattern, TriplePattern};
    use s2rdf_model::Term;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let part = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Term(Term::iri(x))
            }
        };
        TriplePattern::new(part(s), part(p), part(o))
    }

    fn bgp(tps: Vec<TriplePattern>) -> GraphPattern {
        GraphPattern::Bgp(tps)
    }

    #[test]
    fn merges_joined_bgps() {
        let pattern = GraphPattern::Join(
            Box::new(bgp(vec![tp("?x", "p", "?y")])),
            Box::new(GraphPattern::Join(
                Box::new(bgp(vec![tp("?y", "q", "?z")])),
                Box::new(bgp(vec![tp("?z", "r", "?w")])),
            )),
        );
        match optimize_pattern(pattern) {
            GraphPattern::Bgp(tps) => assert_eq!(tps.len(), 3),
            other => panic!("expected merged BGP, got {other:?}"),
        }
    }

    #[test]
    fn empty_bgp_is_join_identity() {
        let pattern = GraphPattern::Join(
            Box::new(bgp(vec![])),
            Box::new(GraphPattern::Union(
                Box::new(bgp(vec![tp("?x", "p", "?y")])),
                Box::new(bgp(vec![tp("?x", "q", "?y")])),
            )),
        );
        assert!(matches!(
            optimize_pattern(pattern),
            GraphPattern::Union(_, _)
        ));
    }

    #[test]
    fn splits_conjunctions() {
        let expr = Expression::And(
            Box::new(Expression::Bound("a".into())),
            Box::new(Expression::Bound("b".into())),
        );
        let pattern = GraphPattern::Filter {
            expr,
            inner: Box::new(bgp(vec![tp("?a", "p", "?b")])),
        };
        let out = optimize_pattern(pattern);
        let GraphPattern::Filter { inner, .. } = out else {
            panic!("outer filter")
        };
        assert!(matches!(*inner, GraphPattern::Filter { .. }));
    }

    #[test]
    fn pushes_filter_into_covering_branch() {
        let join = GraphPattern::Join(
            Box::new(bgp(vec![tp("?x", "p", "?y")])),
            Box::new(GraphPattern::Union(
                Box::new(bgp(vec![tp("?z", "q", "?w")])),
                Box::new(bgp(vec![tp("?z", "r", "?w")])),
            )),
        );
        let pattern = GraphPattern::Filter {
            expr: Expression::Eq(
                Box::new(Expression::Var("x".into())),
                Box::new(Expression::Var("y".into())),
            ),
            inner: Box::new(join),
        };
        match optimize_pattern(pattern) {
            GraphPattern::Join(l, _) => {
                assert!(matches!(*l, GraphPattern::Filter { .. }))
            }
            other => panic!("filter not pushed: {other:?}"),
        }
    }

    #[test]
    fn filter_spanning_both_sides_stays() {
        let join = GraphPattern::Join(
            Box::new(bgp(vec![tp("?x", "p", "?y")])),
            Box::new(GraphPattern::Union(
                Box::new(bgp(vec![tp("?z", "q", "?w")])),
                Box::new(bgp(vec![tp("?z", "r", "?w")])),
            )),
        );
        let pattern = GraphPattern::Filter {
            expr: Expression::Eq(
                Box::new(Expression::Var("x".into())),
                Box::new(Expression::Var("z".into())),
            ),
            inner: Box::new(join),
        };
        assert!(matches!(
            optimize_pattern(pattern),
            GraphPattern::Filter { .. }
        ));
    }

    #[test]
    fn bound_filter_not_pushed() {
        let pattern = GraphPattern::Filter {
            expr: Expression::Not(Box::new(Expression::Bound("z".into()))),
            inner: Box::new(GraphPattern::LeftJoin(
                Box::new(bgp(vec![tp("?x", "p", "?y")])),
                Box::new(bgp(vec![tp("?y", "q", "?z")])),
            )),
        };
        // Must remain a filter over the LeftJoin, not move inside.
        match optimize_pattern(pattern) {
            GraphPattern::Filter { inner, .. } => {
                assert!(matches!(*inner, GraphPattern::LeftJoin(_, _)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
