//! FILTER expressions and their evaluation.
//!
//! Evaluation follows SPARQL's error-propagation model: a type error (e.g.
//! comparing a number with an IRI) yields [`EvalError`], and a FILTER whose
//! condition errors removes the solution (the effective boolean value of an
//! error is "drop").

use s2rdf_model::Term;

/// A FILTER (or ORDER BY key) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Var(String),
    /// A constant term.
    Const(Term),
    /// Logical conjunction with SPARQL error semantics.
    And(Box<Expression>, Box<Expression>),
    /// Logical disjunction with SPARQL error semantics.
    Or(Box<Expression>, Box<Expression>),
    /// Logical negation.
    Not(Box<Expression>),
    /// `=` on values (numeric when both operands are numeric).
    Eq(Box<Expression>, Box<Expression>),
    /// `!=`.
    Ne(Box<Expression>, Box<Expression>),
    /// `<`.
    Lt(Box<Expression>, Box<Expression>),
    /// `<=`.
    Le(Box<Expression>, Box<Expression>),
    /// `>`.
    Gt(Box<Expression>, Box<Expression>),
    /// `>=`.
    Ge(Box<Expression>, Box<Expression>),
    /// Numeric addition.
    Add(Box<Expression>, Box<Expression>),
    /// Numeric subtraction.
    Sub(Box<Expression>, Box<Expression>),
    /// Numeric multiplication.
    Mul(Box<Expression>, Box<Expression>),
    /// Numeric division.
    Div(Box<Expression>, Box<Expression>),
    /// `BOUND(?v)`.
    Bound(String),
    /// `isIRI(e)`.
    IsIri(Box<Expression>),
    /// `isLiteral(e)`.
    IsLiteral(Box<Expression>),
    /// `isBlank(e)`.
    IsBlank(Box<Expression>),
    /// `STR(e)`: the lexical form / IRI string.
    Str(Box<Expression>),
    /// `LANG(e)`: the language tag of a literal ("" if none).
    Lang(Box<Expression>),
}

/// Evaluation result values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An RDF term.
    Term(Term),
    /// A boolean produced by a comparison or logical operator.
    Bool(bool),
    /// A number produced by arithmetic.
    Number(f64),
    /// A plain string produced by STR()/LANG().
    String(String),
}

/// Evaluation error (SPARQL type error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expression error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

fn err(msg: impl Into<String>) -> EvalError {
    EvalError(msg.into())
}

impl Value {
    /// The SPARQL effective boolean value.
    pub fn ebv(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Number(n) => Ok(*n != 0.0 && !n.is_nan()),
            Value::String(s) => Ok(!s.is_empty()),
            Value::Term(Term::Literal {
                lexical,
                datatype,
                lang,
            }) => {
                if lang.is_none() && datatype.is_none() {
                    return Ok(!lexical.is_empty());
                }
                if let Ok(n) = lexical.trim().parse::<f64>() {
                    return Ok(n != 0.0 && !n.is_nan());
                }
                match datatype.as_deref() {
                    Some("http://www.w3.org/2001/XMLSchema#boolean") => Ok(lexical == "true"),
                    Some("http://www.w3.org/2001/XMLSchema#string") | None => {
                        Ok(!lexical.is_empty())
                    }
                    _ => Err(err("no effective boolean value")),
                }
            }
            Value::Term(_) => Err(err("EBV of non-literal term")),
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Term(t) => t.numeric_value(),
            _ => None,
        }
    }

    fn as_string(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            Value::Term(Term::Literal { lexical, .. }) => Some(lexical),
            Value::Term(Term::Iri(i)) => Some(i),
            _ => None,
        }
    }
}

impl Expression {
    /// Evaluates the expression against a variable binding.
    ///
    /// `lookup` returns the term bound to a variable, or `None` if unbound
    /// (e.g. under OPTIONAL).
    pub fn eval<'a, F>(&self, lookup: &F) -> Result<Value, EvalError>
    where
        F: Fn(&str) -> Option<&'a Term>,
    {
        match self {
            Expression::Var(v) => lookup(v)
                .map(|t| Value::Term(t.clone()))
                .ok_or_else(|| err(format!("unbound variable ?{v}"))),
            Expression::Const(t) => Ok(Value::Term(t.clone())),
            Expression::And(a, b) => {
                // SPARQL: false && error = false; error && true = error.
                let av = a.eval(lookup).and_then(|v| v.ebv());
                let bv = b.eval(lookup).and_then(|v| v.ebv());
                match (av, bv) {
                    (Ok(false), _) | (_, Ok(false)) => Ok(Value::Bool(false)),
                    (Ok(true), Ok(true)) => Ok(Value::Bool(true)),
                    (Err(e), _) | (_, Err(e)) => Err(e),
                }
            }
            Expression::Or(a, b) => {
                let av = a.eval(lookup).and_then(|v| v.ebv());
                let bv = b.eval(lookup).and_then(|v| v.ebv());
                match (av, bv) {
                    (Ok(true), _) | (_, Ok(true)) => Ok(Value::Bool(true)),
                    (Ok(false), Ok(false)) => Ok(Value::Bool(false)),
                    (Err(e), _) | (_, Err(e)) => Err(e),
                }
            }
            Expression::Not(e) => Ok(Value::Bool(!e.eval(lookup)?.ebv()?)),
            Expression::Eq(a, b) => compare(a, b, lookup, |o| o == std::cmp::Ordering::Equal),
            Expression::Ne(a, b) => compare(a, b, lookup, |o| o != std::cmp::Ordering::Equal),
            Expression::Lt(a, b) => compare(a, b, lookup, |o| o == std::cmp::Ordering::Less),
            Expression::Le(a, b) => compare(a, b, lookup, |o| o != std::cmp::Ordering::Greater),
            Expression::Gt(a, b) => compare(a, b, lookup, |o| o == std::cmp::Ordering::Greater),
            Expression::Ge(a, b) => compare(a, b, lookup, |o| o != std::cmp::Ordering::Less),
            Expression::Add(a, b) => arith(a, b, lookup, |x, y| x + y),
            Expression::Sub(a, b) => arith(a, b, lookup, |x, y| x - y),
            Expression::Mul(a, b) => arith(a, b, lookup, |x, y| x * y),
            Expression::Div(a, b) => {
                let l = a.eval(lookup)?;
                let r = b.eval(lookup)?;
                let (x, y) = numeric_pair(&l, &r)?;
                if y == 0.0 {
                    return Err(err("division by zero"));
                }
                Ok(Value::Number(x / y))
            }
            Expression::Bound(v) => Ok(Value::Bool(lookup(v).is_some())),
            Expression::IsIri(e) => Ok(Value::Bool(matches!(
                e.eval(lookup)?,
                Value::Term(Term::Iri(_))
            ))),
            Expression::IsLiteral(e) => Ok(Value::Bool(matches!(
                e.eval(lookup)?,
                Value::Term(Term::Literal { .. })
            ))),
            Expression::IsBlank(e) => Ok(Value::Bool(matches!(
                e.eval(lookup)?,
                Value::Term(Term::BlankNode(_))
            ))),
            Expression::Str(e) => {
                let v = e.eval(lookup)?;
                v.as_string()
                    .map(|s| Value::String(s.to_string()))
                    .ok_or_else(|| err("STR() of non-stringable value"))
            }
            Expression::Lang(e) => match e.eval(lookup)? {
                Value::Term(Term::Literal { lang, .. }) => {
                    Ok(Value::String(lang.unwrap_or_default()))
                }
                _ => Err(err("LANG() of non-literal")),
            },
        }
    }

    /// The variables this expression references.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expression::Var(v) | Expression::Bound(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expression::Const(_) => {}
            Expression::And(a, b)
            | Expression::Or(a, b)
            | Expression::Eq(a, b)
            | Expression::Ne(a, b)
            | Expression::Lt(a, b)
            | Expression::Le(a, b)
            | Expression::Gt(a, b)
            | Expression::Ge(a, b)
            | Expression::Add(a, b)
            | Expression::Sub(a, b)
            | Expression::Mul(a, b)
            | Expression::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expression::Not(e)
            | Expression::IsIri(e)
            | Expression::IsLiteral(e)
            | Expression::IsBlank(e)
            | Expression::Str(e)
            | Expression::Lang(e) => e.collect_vars(out),
        }
    }
}

fn numeric_pair(l: &Value, r: &Value) -> Result<(f64, f64), EvalError> {
    match (l.as_number(), r.as_number()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(err("non-numeric operand")),
    }
}

fn arith<'a, F>(
    a: &Expression,
    b: &Expression,
    lookup: &F,
    op: impl Fn(f64, f64) -> f64,
) -> Result<Value, EvalError>
where
    F: Fn(&str) -> Option<&'a Term>,
{
    let l = a.eval(lookup)?;
    let r = b.eval(lookup)?;
    let (x, y) = numeric_pair(&l, &r)?;
    Ok(Value::Number(op(x, y)))
}

fn compare<'a, F>(
    a: &Expression,
    b: &Expression,
    lookup: &F,
    accept: impl Fn(std::cmp::Ordering) -> bool,
) -> Result<Value, EvalError>
where
    F: Fn(&str) -> Option<&'a Term>,
{
    let l = a.eval(lookup)?;
    let r = b.eval(lookup)?;
    // Numeric comparison when both sides are numeric.
    if let (Some(x), Some(y)) = (l.as_number(), r.as_number()) {
        let ord = x.partial_cmp(&y).ok_or_else(|| err("NaN comparison"))?;
        return Ok(Value::Bool(accept(ord)));
    }
    // String comparison when both sides are stringable.
    if let (Some(x), Some(y)) = (l.as_string(), r.as_string()) {
        return Ok(Value::Bool(accept(x.cmp(y))));
    }
    // Term equality for the remaining cases.
    match (&l, &r) {
        (Value::Term(x), Value::Term(y)) => Ok(Value::Bool(accept(x.value_cmp(y)))),
        (Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(accept(x.cmp(y)))),
        _ => Err(err("incomparable values")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_none(_: &str) -> Option<&'static Term> {
        None
    }

    fn e_var(v: &str) -> Expression {
        Expression::Var(v.to_string())
    }

    fn e_int(n: i64) -> Expression {
        Expression::Const(Term::integer(n))
    }

    #[test]
    fn numeric_comparison() {
        let lt = Expression::Lt(Box::new(e_int(2)), Box::new(e_int(10)));
        assert_eq!(lt.eval(&lookup_none).unwrap(), Value::Bool(true));
        // "10" < "2" lexicographically, but numeric compare must win.
        let gt = Expression::Gt(Box::new(e_int(10)), Box::new(e_int(2)));
        assert_eq!(gt.eval(&lookup_none).unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic() {
        let expr = Expression::Add(
            Box::new(Expression::Mul(Box::new(e_int(3)), Box::new(e_int(4)))),
            Box::new(e_int(1)),
        );
        assert_eq!(expr.eval(&lookup_none).unwrap(), Value::Number(13.0));
        let div0 = Expression::Div(Box::new(e_int(1)), Box::new(e_int(0)));
        assert!(div0.eval(&lookup_none).is_err());
    }

    #[test]
    fn unbound_variable_errors_but_bound_tests_it() {
        let term = Term::iri("x");
        let lookup = |v: &str| (v == "a").then_some(&term);
        assert!(e_var("missing").eval(&lookup).is_err());
        assert_eq!(
            Expression::Bound("a".to_string()).eval(&lookup).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expression::Bound("b".to_string()).eval(&lookup).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn and_or_error_semantics() {
        let f = Expression::Const(Term::typed_literal(
            "false",
            "http://www.w3.org/2001/XMLSchema#boolean",
        ));
        let errish = e_var("unbound");
        // false && error = false
        let and = Expression::And(Box::new(f.clone()), Box::new(errish.clone()));
        assert_eq!(and.eval(&lookup_none).unwrap(), Value::Bool(false));
        // error || true = true
        let t = Expression::Const(Term::typed_literal(
            "true",
            "http://www.w3.org/2001/XMLSchema#boolean",
        ));
        let or = Expression::Or(Box::new(errish.clone()), Box::new(t));
        assert_eq!(or.eval(&lookup_none).unwrap(), Value::Bool(true));
        // error && true = error
        let and_err = Expression::And(Box::new(errish), Box::new(f));
        assert_eq!(and_err.eval(&lookup_none).unwrap(), Value::Bool(false));
    }

    #[test]
    fn string_functions() {
        let term = Term::lang_literal("chat", "fr");
        let lookup = |v: &str| (v == "x").then_some(&term);
        let lang = Expression::Lang(Box::new(e_var("x")));
        assert_eq!(lang.eval(&lookup).unwrap(), Value::String("fr".into()));
        let s = Expression::Str(Box::new(e_var("x")));
        assert_eq!(s.eval(&lookup).unwrap(), Value::String("chat".into()));
    }

    #[test]
    fn type_predicates() {
        let iri = Term::iri("i");
        let lookup = |v: &str| (v == "x").then_some(&iri);
        assert_eq!(
            Expression::IsIri(Box::new(e_var("x")))
                .eval(&lookup)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expression::IsLiteral(Box::new(e_var("x")))
                .eval(&lookup)
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn vars_collection() {
        let expr = Expression::And(
            Box::new(Expression::Lt(Box::new(e_var("a")), Box::new(e_int(5)))),
            Box::new(Expression::Bound("b".to_string())),
        );
        assert_eq!(expr.vars(), vec!["a", "b"]);
    }
}
