//! Recursive-descent parser producing [`Query`] values.

use std::collections::HashMap;
use std::fmt;

use s2rdf_model::Term;

use crate::ast::{
    AggFunc, GraphPattern, OrderCondition, PropertyPath, Query, QueryForm, SelectItem, Selection,
    TermPattern, TriplePattern,
};
use crate::expr::Expression;
use crate::lexer::{locate, tokenize_spanned, DatatypeRef, LexError, Token};

/// The `rdf:type` IRI (the meaning of the keyword `a`).
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
const XSD: &str = "http://www.w3.org/2001/XMLSchema#";

/// A parse error with a human-readable message (including the 1-based
/// line/column of the offending token where known).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPARQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError(e.to_string())
    }
}

/// Parses a query (SELECT, ASK, CONSTRUCT, or DESCRIBE) from its textual
/// form.
///
/// ```
/// use s2rdf_sparql::{parse_query, GraphPattern};
///
/// let q = parse_query("SELECT ?x WHERE { ?x <likes> ?y . ?y <likes> ?z }").unwrap();
/// assert_eq!(q.projected_vars(), vec!["x"]);
/// assert!(matches!(q.pattern, GraphPattern::Bgp(ref tps) if tps.len() == 2));
/// ```
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let (tokens, offsets) = tokenize_spanned(src)?;
    let mut p = Parser {
        src,
        tokens,
        offsets,
        pos: 0,
        prefixes: HashMap::new(),
    };
    let q = p.parse_query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("unexpected trailing token {}", p.tokens[p.pos])));
    }
    Ok(q)
}

/// A verb position: a plain term pattern, or a composite property path.
enum Verb {
    Pattern(TermPattern),
    Path(PropertyPath),
}

struct Parser<'s> {
    src: &'s str,
    tokens: Vec<Token>,
    /// Byte offset each token starts at (parallel to `tokens`).
    offsets: Vec<usize>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser<'_> {
    /// An error anchored at the token at `idx` (or "end of query").
    fn err_at(&self, idx: usize, msg: impl Into<String>) -> ParseError {
        let msg = msg.into();
        match self.offsets.get(idx) {
            Some(&off) => {
                let (line, column) = locate(self.src, off);
                ParseError(format!("{msg} at line {line}, column {column}"))
            }
            None => ParseError(format!("{msg} at end of query")),
        }
    }

    /// An error anchored at the current (unconsumed) token.
    fn err(&self, msg: impl Into<String>) -> ParseError {
        self.err_at(self.pos, msg)
    }

    /// An error anchored at the most recently consumed token.
    fn err_prev(&self, msg: impl Into<String>) -> ParseError {
        self.err_at(self.pos.saturating_sub(1), msg)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        let t = self.next()?;
        if &t != expected {
            return Err(self.err_prev(format!("expected {expected}, found {t}")));
        }
        Ok(())
    }

    /// Consumes a keyword case-insensitively; returns whether it was there.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            match self.peek() {
                Some(t) => Err(self.err(format!("expected {kw}, found {t}"))),
                None => Err(self.err(format!("expected {kw}"))),
            }
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        let base = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.err_prev(format!("undeclared prefix '{prefix}:'")))?;
        Ok(format!("{base}{local}"))
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        // Prologue: PREFIX declarations.
        while self.eat_keyword("PREFIX") {
            let (prefix, local) = match self.next()? {
                Token::PName(p, l) => (p, l),
                t => return Err(self.err_prev(format!("expected prefix name, found {t}"))),
            };
            if !local.is_empty() {
                return Err(self.err_prev(format!(
                    "prefix declaration must end with ':', got {prefix}:{local}"
                )));
            }
            let iri = match self.next()? {
                Token::IriRef(i) => i,
                t => return Err(self.err_prev(format!("expected IRI, found {t}"))),
            };
            self.prefixes.insert(prefix, iri);
        }

        let form;
        let mut selection = Selection::All;
        let mut distinct = false;
        let pattern;
        if self.eat_keyword("SELECT") {
            distinct = self.eat_keyword("DISTINCT");
            if !distinct {
                // REDUCED is accepted and treated as plain (allowed by spec).
                self.eat_keyword("REDUCED");
            }
            selection = self.parse_selection()?;
            // WHERE is optional in the grammar.
            self.eat_keyword("WHERE");
            pattern = self.parse_group()?;
            form = QueryForm::Select;
        } else if self.eat_keyword("ASK") {
            self.eat_keyword("WHERE");
            pattern = self.parse_group()?;
            form = QueryForm::Ask;
        } else if self.eat_keyword("CONSTRUCT") {
            let template = self.parse_construct_template()?;
            self.eat_keyword("WHERE");
            pattern = self.parse_group()?;
            form = QueryForm::Construct(template);
        } else if self.eat_keyword("DESCRIBE") {
            let targets = self.parse_describe_targets()?;
            let explicit_where = self.eat_keyword("WHERE");
            pattern = if explicit_where || matches!(self.peek(), Some(Token::LBrace)) {
                self.parse_group()?
            } else {
                GraphPattern::Bgp(Vec::new())
            };
            form = QueryForm::Describe(targets);
        } else {
            return Err(self.err("expected SELECT, ASK, CONSTRUCT, or DESCRIBE"));
        }

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let Some(Token::Var(v)) = self.peek() {
                group_by.push(v.clone());
                self.pos += 1;
            }
            if group_by.is_empty() {
                return Err(self.err("GROUP BY needs at least one variable"));
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    Some(Token::Var(v)) => {
                        order_by.push(OrderCondition {
                            expr: Expression::Var(v.clone()),
                            descending: false,
                        });
                        self.pos += 1;
                    }
                    Some(Token::Word(w))
                        if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                    {
                        let descending = w.eq_ignore_ascii_case("DESC");
                        self.pos += 1;
                        self.expect(&Token::LParen)?;
                        let expr = self.parse_expression()?;
                        self.expect(&Token::RParen)?;
                        order_by.push(OrderCondition { expr, descending });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.err("ORDER BY needs at least one condition"));
            }
        }

        let mut limit = None;
        let mut offset = None;
        // LIMIT and OFFSET may come in either order.
        for _ in 0..2 {
            if self.eat_keyword("LIMIT") {
                match self.next()? {
                    Token::Integer(n) if n >= 0 => limit = Some(n as usize),
                    t => return Err(self.err_prev(format!("bad LIMIT {t}"))),
                }
            } else if self.eat_keyword("OFFSET") {
                match self.next()? {
                    Token::Integer(n) if n >= 0 => offset = Some(n as usize),
                    t => return Err(self.err_prev(format!("bad OFFSET {t}"))),
                }
            }
        }

        Ok(Query {
            form,
            selection,
            distinct,
            pattern,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    /// The SELECT clause's projection (after DISTINCT/REDUCED).
    fn parse_selection(&mut self) -> Result<Selection, ParseError> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            return Ok(Selection::All);
        }
        let mut items: Vec<SelectItem> = Vec::new();
        let mut has_aggregate = false;
        loop {
            match self.peek() {
                Some(Token::Var(v)) => {
                    items.push(SelectItem::Var(v.clone()));
                    self.pos += 1;
                }
                Some(Token::LParen) => {
                    self.pos += 1;
                    items.push(self.parse_aggregate_item()?);
                    has_aggregate = true;
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return Err(self.err("SELECT needs '*' or variables"));
        }
        if has_aggregate {
            Ok(Selection::Items(items))
        } else {
            Ok(Selection::Vars(
                items
                    .into_iter()
                    .map(|i| match i {
                        SelectItem::Var(v) => v,
                        SelectItem::Aggregate { .. } => unreachable!(),
                    })
                    .collect(),
            ))
        }
    }

    /// `{ TriplesTemplate }` — plain triple patterns only (no paths).
    fn parse_construct_template(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut bgp = Vec::new();
        let mut paths = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated CONSTRUCT template")),
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Dot) => {
                    self.pos += 1;
                }
                Some(_) => self.parse_triples_same_subject(&mut bgp, &mut paths)?,
            }
        }
        if !paths.is_empty() {
            return Err(self.err_prev("property paths are not allowed in a CONSTRUCT template"));
        }
        Ok(bgp)
    }

    /// DESCRIBE targets: one or more variables/IRIs.
    fn parse_describe_targets(&mut self) -> Result<Vec<TermPattern>, ParseError> {
        let mut targets = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Var(v)) => {
                    targets.push(TermPattern::Var(v.clone()));
                    self.pos += 1;
                }
                Some(Token::IriRef(i)) => {
                    targets.push(TermPattern::Term(Term::iri(i.clone())));
                    self.pos += 1;
                }
                Some(Token::PName(p, l)) => {
                    let (p, l) = (p.clone(), l.clone());
                    self.pos += 1;
                    targets.push(TermPattern::Term(Term::iri(self.resolve_pname(&p, &l)?)));
                }
                _ => break,
            }
        }
        if targets.is_empty() {
            return Err(self.err("DESCRIBE needs at least one variable or IRI"));
        }
        Ok(targets)
    }

    /// `(<FUNC>([DISTINCT] <expr>|*) AS ?alias)` — the leading '(' is
    /// already consumed.
    fn parse_aggregate_item(&mut self) -> Result<SelectItem, ParseError> {
        let func = match self.next()? {
            Token::Word(w) => match w.to_ascii_uppercase().as_str() {
                "COUNT" => AggFunc::Count,
                "SUM" => AggFunc::Sum,
                "AVG" => AggFunc::Avg,
                "MIN" => AggFunc::Min,
                "MAX" => AggFunc::Max,
                other => return Err(self.err_prev(format!("unsupported aggregate {other}()"))),
            },
            t => return Err(self.err_prev(format!("expected aggregate function, found {t}"))),
        };
        self.expect(&Token::LParen)?;
        let distinct = self.eat_keyword("DISTINCT");
        let arg = if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            if func != AggFunc::Count {
                return Err(self.err_prev(format!("{}(*) is not valid", func.keyword())));
            }
            None
        } else {
            Some(self.parse_expression()?)
        };
        self.expect(&Token::RParen)?;
        self.expect_keyword("AS")?;
        let alias = match self.next()? {
            Token::Var(v) => v,
            t => return Err(self.err_prev(format!("expected ?alias after AS, found {t}"))),
        };
        self.expect(&Token::RParen)?;
        Ok(SelectItem::Aggregate {
            func,
            arg,
            distinct,
            alias,
        })
    }

    /// GroupGraphPattern := '{' … '}' with SPARQL's left-to-right algebra
    /// translation: group elements fold with Join, OPTIONAL folds with
    /// LeftJoin, BIND wraps everything before it, and the group's FILTERs
    /// apply to the whole group.
    fn parse_group(&mut self) -> Result<GraphPattern, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut current: Option<GraphPattern> = None;
        let mut bgp: Vec<TriplePattern> = Vec::new();
        let mut paths: Vec<GraphPattern> = Vec::new();
        let mut filters: Vec<Expression> = Vec::new();

        fn join_into(current: &mut Option<GraphPattern>, pat: GraphPattern) {
            *current = Some(match current.take() {
                None => pat,
                Some(prev) => GraphPattern::Join(Box::new(prev), Box::new(pat)),
            });
        }

        fn flush(
            current: &mut Option<GraphPattern>,
            bgp: &mut Vec<TriplePattern>,
            paths: &mut Vec<GraphPattern>,
        ) {
            if !bgp.is_empty() {
                join_into(current, GraphPattern::Bgp(std::mem::take(bgp)));
            }
            for p in paths.drain(..) {
                join_into(current, p);
            }
        }

        loop {
            match self.peek() {
                None => return Err(self.err("unterminated group")),
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Dot) => {
                    self.pos += 1;
                }
                Some(Token::LBrace) => {
                    flush(&mut current, &mut bgp, &mut paths);
                    let sub = self.parse_group_or_union()?;
                    join_into(&mut current, sub);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    self.pos += 1;
                    self.expect(&Token::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect(&Token::RParen)?;
                    filters.push(expr);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.pos += 1;
                    flush(&mut current, &mut bgp, &mut paths);
                    let right = self.parse_group()?;
                    let left = current.take().unwrap_or(GraphPattern::Bgp(Vec::new()));
                    current = Some(GraphPattern::LeftJoin(Box::new(left), Box::new(right)));
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("BIND") => {
                    self.pos += 1;
                    self.expect(&Token::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_keyword("AS")?;
                    let var = match self.next()? {
                        Token::Var(v) => v,
                        t => return Err(self.err_prev(format!("BIND needs ?var, found {t}"))),
                    };
                    self.expect(&Token::RParen)?;
                    flush(&mut current, &mut bgp, &mut paths);
                    let inner = current.take().unwrap_or(GraphPattern::Bgp(Vec::new()));
                    current = Some(GraphPattern::Bind {
                        expr,
                        var,
                        inner: Box::new(inner),
                    });
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("VALUES") => {
                    self.pos += 1;
                    let values = self.parse_values()?;
                    flush(&mut current, &mut bgp, &mut paths);
                    join_into(&mut current, values);
                }
                Some(_) => {
                    // Triples block.
                    self.parse_triples_same_subject(&mut bgp, &mut paths)?;
                }
            }
        }
        flush(&mut current, &mut bgp, &mut paths);
        let mut pattern = current.unwrap_or(GraphPattern::Bgp(Vec::new()));
        for expr in filters {
            pattern = GraphPattern::Filter {
                expr,
                inner: Box::new(pattern),
            };
        }
        Ok(pattern)
    }

    /// GroupOrUnion := GroupGraphPattern ('UNION' GroupGraphPattern)*
    fn parse_group_or_union(&mut self) -> Result<GraphPattern, ParseError> {
        let mut pattern = self.parse_group()?;
        while self.eat_keyword("UNION") {
            let right = self.parse_group()?;
            pattern = GraphPattern::Union(Box::new(pattern), Box::new(right));
        }
        Ok(pattern)
    }

    /// `VALUES ?v { t… }` or `VALUES (?v…) { (t…)… }` — the keyword is
    /// already consumed.
    fn parse_values(&mut self) -> Result<GraphPattern, ParseError> {
        let mut vars = Vec::new();
        let mut single = false;
        match self.peek() {
            Some(Token::Var(v)) => {
                vars.push(v.clone());
                self.pos += 1;
                single = true;
            }
            Some(Token::LParen) => {
                self.pos += 1;
                while let Some(Token::Var(v)) = self.peek() {
                    vars.push(v.clone());
                    self.pos += 1;
                }
                self.expect(&Token::RParen)?;
            }
            _ => return Err(self.err("VALUES needs ?var or (?var …)")),
        }
        if vars.is_empty() {
            return Err(self.err("VALUES needs at least one variable"));
        }
        self.expect(&Token::LBrace)?;
        let mut rows = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated VALUES block")),
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                _ if single => rows.push(vec![self.parse_data_term()?]),
                Some(Token::LParen) => {
                    self.pos += 1;
                    let mut row = Vec::new();
                    while !matches!(self.peek(), Some(Token::RParen)) {
                        if self.peek().is_none() {
                            return Err(self.err("unterminated VALUES row"));
                        }
                        row.push(self.parse_data_term()?);
                    }
                    self.pos += 1;
                    if row.len() != vars.len() {
                        return Err(self.err_prev(format!(
                            "VALUES row has {} terms, expected {}",
                            row.len(),
                            vars.len()
                        )));
                    }
                    rows.push(row);
                }
                Some(t) => return Err(self.err(format!("expected '(' in VALUES, found {t}"))),
            }
        }
        Ok(GraphPattern::Values { vars, rows })
    }

    /// One VALUES cell: a bound term or `UNDEF`.
    fn parse_data_term(&mut self) -> Result<Option<Term>, ParseError> {
        if self.eat_keyword("UNDEF") {
            return Ok(None);
        }
        match self.parse_term_pattern("VALUES term")? {
            TermPattern::Term(t) => Ok(Some(t)),
            TermPattern::Var(v) => {
                Err(self.err_prev(format!("variables (?{v}) are not allowed in VALUES data")))
            }
        }
    }

    /// TriplesSameSubject := Subject (Verb ObjectList (';' Verb ObjectList)*)
    ///
    /// Plain-predicate triples go into `bgp`; composite property-path verbs
    /// become [`GraphPattern::Path`] entries in `paths`.
    fn parse_triples_same_subject(
        &mut self,
        bgp: &mut Vec<TriplePattern>,
        paths: &mut Vec<GraphPattern>,
    ) -> Result<(), ParseError> {
        let subject = self.parse_term_pattern("subject")?;
        loop {
            let verb = self.parse_verb()?;
            loop {
                let object = self.parse_term_pattern("object")?;
                match &verb {
                    Verb::Pattern(p) => {
                        bgp.push(TriplePattern::new(subject.clone(), p.clone(), object));
                    }
                    Verb::Path(path) => paths.push(GraphPattern::Path {
                        subject: subject.clone(),
                        path: path.clone(),
                        object,
                    }),
                }
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if matches!(self.peek(), Some(Token::Semicolon)) {
                self.pos += 1;
                // Allow a dangling ';' before '.' or '}'.
                if matches!(self.peek(), Some(Token::Dot) | Some(Token::RBrace)) {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(())
    }

    /// A verb: a variable, or a property path (a single-IRI path collapses
    /// back to a plain predicate).
    fn parse_verb(&mut self) -> Result<Verb, ParseError> {
        if matches!(self.peek(), Some(Token::Var(_))) {
            return Ok(Verb::Pattern(self.parse_term_pattern("predicate")?));
        }
        Ok(match self.parse_path()? {
            PropertyPath::Iri(t) => Verb::Pattern(TermPattern::Term(t)),
            path => Verb::Path(path),
        })
    }

    // ---- Property-path parsing (SPARQL 1.1 §9 grammar) ----

    /// Path := PathSequence ('|' PathSequence)*
    fn parse_path(&mut self) -> Result<PropertyPath, ParseError> {
        let mut p = self.parse_path_sequence()?;
        while matches!(self.peek(), Some(Token::Pipe)) {
            self.pos += 1;
            let right = self.parse_path_sequence()?;
            p = PropertyPath::Alternative(Box::new(p), Box::new(right));
        }
        Ok(p)
    }

    /// PathSequence := PathEltOrInverse ('/' PathEltOrInverse)*
    fn parse_path_sequence(&mut self) -> Result<PropertyPath, ParseError> {
        let mut p = self.parse_path_elt_or_inverse()?;
        while matches!(self.peek(), Some(Token::Slash)) {
            self.pos += 1;
            let right = self.parse_path_elt_or_inverse()?;
            p = PropertyPath::Sequence(Box::new(p), Box::new(right));
        }
        Ok(p)
    }

    /// PathEltOrInverse := PathElt | '^' PathElt
    fn parse_path_elt_or_inverse(&mut self) -> Result<PropertyPath, ParseError> {
        if matches!(self.peek(), Some(Token::Caret)) {
            self.pos += 1;
            let inner = self.parse_path_elt()?;
            return Ok(PropertyPath::Inverse(Box::new(inner)));
        }
        self.parse_path_elt()
    }

    /// PathElt := PathPrimary ('*' | '+' | '?')?
    fn parse_path_elt(&mut self) -> Result<PropertyPath, ParseError> {
        let p = self.parse_path_primary()?;
        match self.peek() {
            Some(Token::Star) => {
                self.pos += 1;
                Ok(PropertyPath::ZeroOrMore(Box::new(p)))
            }
            Some(Token::Plus) => {
                self.pos += 1;
                Ok(PropertyPath::OneOrMore(Box::new(p)))
            }
            Some(Token::Question) => {
                self.pos += 1;
                Ok(PropertyPath::ZeroOrOne(Box::new(p)))
            }
            _ => Ok(p),
        }
    }

    /// PathPrimary := iri | 'a' | '(' Path ')'
    fn parse_path_primary(&mut self) -> Result<PropertyPath, ParseError> {
        match self.next()? {
            Token::IriRef(i) => Ok(PropertyPath::Iri(Term::iri(i))),
            Token::PName(p, l) => Ok(PropertyPath::Iri(Term::iri(self.resolve_pname(&p, &l)?))),
            Token::Word(w) if w == "a" => Ok(PropertyPath::Iri(Term::iri(RDF_TYPE))),
            Token::LParen => {
                let p = self.parse_path()?;
                self.expect(&Token::RParen)?;
                Ok(p)
            }
            t => Err(self.err_prev(format!("expected predicate or path, found {t}"))),
        }
    }

    fn parse_term_pattern(&mut self, what: &str) -> Result<TermPattern, ParseError> {
        match self.next()? {
            Token::Var(v) => Ok(TermPattern::Var(v)),
            Token::IriRef(i) => Ok(TermPattern::Term(Term::iri(i))),
            Token::PName(p, l) => Ok(TermPattern::Term(Term::iri(self.resolve_pname(&p, &l)?))),
            Token::StringLit {
                lexical,
                lang,
                datatype,
            } => Ok(TermPattern::Term(
                self.make_literal(lexical, lang, datatype)?,
            )),
            Token::Integer(n) => Ok(TermPattern::Term(Term::integer(n))),
            Token::Decimal(d) => Ok(TermPattern::Term(Term::typed_literal(
                d,
                format!("{XSD}decimal"),
            ))),
            t => Err(self.err_prev(format!("expected {what}, found {t}"))),
        }
    }

    fn make_literal(
        &self,
        lexical: String,
        lang: Option<String>,
        datatype: Option<DatatypeRef>,
    ) -> Result<Term, ParseError> {
        if let Some(lang) = lang {
            return Ok(Term::lang_literal(lexical, lang));
        }
        match datatype {
            None => Ok(Term::literal(lexical)),
            Some(DatatypeRef::Iri(i)) => Ok(Term::typed_literal(lexical, i)),
            Some(DatatypeRef::PName(p, l)) => {
                Ok(Term::typed_literal(lexical, self.resolve_pname(&p, &l)?))
            }
        }
    }

    // ---- Expression parsing (precedence climbing) ----

    fn parse_expression(&mut self) -> Result<Expression, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.pos += 1;
            let right = self.parse_and()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_relational()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.pos += 1;
            let right = self.parse_relational()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expression, ParseError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Expression::Eq as fn(_, _) -> _,
            Some(Token::Ne) => Expression::Ne,
            Some(Token::Lt) => Expression::Lt,
            Some(Token::Le) => Expression::Le,
            Some(Token::Gt) => Expression::Gt,
            Some(Token::Ge) => Expression::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        Ok(op(Box::new(left), Box::new(right)))
    }

    fn parse_additive(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => Expression::Add as fn(_, _) -> _,
                Some(Token::Minus) => Expression::Sub,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = op(Box::new(left), Box::new(right));
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => Expression::Mul as fn(_, _) -> _,
                Some(Token::Slash) => Expression::Div,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = op(Box::new(left), Box::new(right));
        }
    }

    fn parse_unary(&mut self) -> Result<Expression, ParseError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(Expression::Not(Box::new(self.parse_unary()?)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.parse_unary()?;
                Ok(Expression::Sub(
                    Box::new(Expression::Const(Term::integer(0))),
                    Box::new(inner),
                ))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expression, ParseError> {
        match self.next()? {
            Token::LParen => {
                let e = self.parse_expression()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Var(v) => Ok(Expression::Var(v)),
            Token::IriRef(i) => Ok(Expression::Const(Term::iri(i))),
            Token::PName(p, l) => Ok(Expression::Const(Term::iri(self.resolve_pname(&p, &l)?))),
            Token::Integer(n) => Ok(Expression::Const(Term::integer(n))),
            Token::Decimal(d) => Ok(Expression::Const(Term::typed_literal(
                d,
                format!("{XSD}decimal"),
            ))),
            Token::StringLit {
                lexical,
                lang,
                datatype,
            } => Ok(Expression::Const(
                self.make_literal(lexical, lang, datatype)?,
            )),
            Token::Word(w) => self.parse_builtin(&w),
            t => Err(self.err_prev(format!("expected expression, found {t}"))),
        }
    }

    fn parse_builtin(&mut self, name: &str) -> Result<Expression, ParseError> {
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "TRUE" => {
                return Ok(Expression::Const(Term::typed_literal(
                    "true",
                    format!("{XSD}boolean"),
                )))
            }
            "FALSE" => {
                return Ok(Expression::Const(Term::typed_literal(
                    "false",
                    format!("{XSD}boolean"),
                )))
            }
            _ => {}
        }
        self.expect(&Token::LParen)?;
        let expr = match upper.as_str() {
            "BOUND" => match self.next()? {
                Token::Var(v) => Expression::Bound(v),
                t => return Err(self.err_prev(format!("BOUND needs a variable, found {t}"))),
            },
            "ISIRI" | "ISURI" => Expression::IsIri(Box::new(self.parse_expression()?)),
            "ISLITERAL" => Expression::IsLiteral(Box::new(self.parse_expression()?)),
            "ISBLANK" => Expression::IsBlank(Box::new(self.parse_expression()?)),
            "STR" => Expression::Str(Box::new(self.parse_expression()?)),
            "LANG" => Expression::Lang(Box::new(self.parse_expression()?)),
            other => return Err(self.err_prev(format!("unsupported function {other}()"))),
        };
        self.expect(&Token::RParen)?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example query Q1.
    const Q1: &str = "SELECT * WHERE {
        ?x <likes> ?w . ?x <follows> ?y .
        ?y <follows> ?z . ?z <likes> ?w
    }";

    #[test]
    fn parse_q1() {
        let q = parse_query(Q1).unwrap();
        assert_eq!(q.selection, Selection::All);
        assert_eq!(q.form, QueryForm::Select);
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps.len(), 4);
                assert_eq!(tps[0].s, TermPattern::Var("x".into()));
                assert_eq!(tps[0].p, TermPattern::Term(Term::iri("likes")));
            }
            other => panic!("expected BGP, got {other:?}"),
        }
        assert_eq!(q.projected_vars(), vec!["x", "w", "y", "z"]);
    }

    #[test]
    fn parse_prefixes_and_a() {
        let q = parse_query(
            "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
             PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
             SELECT ?v0 WHERE { ?v0 a wsdbm:Role2 . ?v0 rdf:type wsdbm:Role2 }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps[0].p, TermPattern::Term(Term::iri(RDF_TYPE)));
                assert_eq!(tps[0].p, tps[1].p);
                assert_eq!(
                    tps[0].o,
                    TermPattern::Term(Term::iri("http://db.uwaterloo.ca/~galuc/wsdbm/Role2"))
                );
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        assert!(parse_query("SELECT * WHERE { ?x wsdbm:likes ?y }").is_err());
    }

    #[test]
    fn parse_filter() {
        let q =
            parse_query("SELECT ?x WHERE { ?x <age> ?a . FILTER(?a >= 18 && ?a < 65) }").unwrap();
        match &q.pattern {
            GraphPattern::Filter { expr, inner } => {
                assert!(matches!(**inner, GraphPattern::Bgp(_)));
                assert!(matches!(expr, Expression::And(_, _)));
            }
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn parse_optional_and_union() {
        let q = parse_query(
            "SELECT * WHERE {
                ?x <p> ?y .
                OPTIONAL { ?y <q> ?z }
                { ?x <r> ?w } UNION { ?x <s> ?w }
            }",
        )
        .unwrap();
        // Shape: Join(LeftJoin(Bgp, Bgp), Union(Bgp, Bgp))
        match &q.pattern {
            GraphPattern::Join(l, r) => {
                assert!(matches!(**l, GraphPattern::LeftJoin(_, _)));
                assert!(matches!(**r, GraphPattern::Union(_, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn parse_modifiers() {
        let q = parse_query(
            "SELECT DISTINCT ?x WHERE { ?x <p> ?y } ORDER BY ?y DESC(?x) LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].descending);
        assert!(q.order_by[1].descending);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn parse_semicolon_and_comma_abbreviations() {
        let q = parse_query("SELECT * WHERE { ?x <p> ?a , ?b ; <q> ?c . }").unwrap();
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps.len(), 3);
                assert!(tps.iter().all(|tp| tp.s == TermPattern::Var("x".into())));
                assert_eq!(tps[2].p, TermPattern::Term(Term::iri("q")));
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn parse_literals_in_patterns() {
        let q = parse_query("SELECT * WHERE { ?x <age> 42 . ?x <name> \"Ann\"@en }").unwrap();
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps[0].o, TermPattern::Term(Term::integer(42)));
                assert_eq!(tps[1].o, TermPattern::Term(Term::lang_literal("Ann", "en")));
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let q =
            parse_query("SELECT * WHERE { ?x <p> ?y FILTER(?y + 1 * 2 = 3 || ?y > 9) }").unwrap();
        let GraphPattern::Filter { expr, .. } = &q.pattern else {
            panic!("expected filter")
        };
        // Top must be Or; its left an Eq whose left is Add(y, Mul(1,2)).
        let Expression::Or(l, _) = expr else {
            panic!("expected Or, got {expr:?}")
        };
        let Expression::Eq(ll, _) = &**l else {
            panic!("expected Eq")
        };
        assert!(matches!(&**ll, Expression::Add(_, m) if matches!(&**m, Expression::Mul(_, _))));
    }

    #[test]
    fn parse_property_paths() {
        let q = parse_query("SELECT * WHERE { ?x <knows>+ ?y }").unwrap();
        let GraphPattern::Path { path, .. } = &q.pattern else {
            panic!("expected Path, got {:?}", q.pattern)
        };
        assert_eq!(
            *path,
            PropertyPath::OneOrMore(Box::new(PropertyPath::Iri(Term::iri("knows"))))
        );

        // A single-IRI path is a plain triple pattern.
        let q = parse_query("SELECT * WHERE { ?x <knows> ?y }").unwrap();
        assert!(matches!(q.pattern, GraphPattern::Bgp(_)));

        // Precedence: '|' binds loosest, then '/', then modifiers.
        let q = parse_query("SELECT * WHERE { ?x <a>/<b>|^<c>* ?y }").unwrap();
        let GraphPattern::Path { path, .. } = &q.pattern else {
            panic!("expected Path")
        };
        let PropertyPath::Alternative(l, r) = path else {
            panic!("expected Alternative at top, got {path:?}")
        };
        assert!(matches!(**l, PropertyPath::Sequence(_, _)));
        let PropertyPath::Inverse(inv) = &**r else {
            panic!("expected Inverse, got {r:?}")
        };
        assert!(matches!(**inv, PropertyPath::ZeroOrMore(_)));

        // Grouping and zero-or-one.
        let q = parse_query("SELECT * WHERE { ?x (<a>|<b>)? ?y }").unwrap();
        let GraphPattern::Path { path, .. } = &q.pattern else {
            panic!("expected Path")
        };
        assert!(matches!(path, PropertyPath::ZeroOrOne(p)
            if matches!(**p, PropertyPath::Alternative(_, _))));
    }

    #[test]
    fn parse_bind_and_values() {
        let q = parse_query("SELECT * WHERE { ?x <p> ?y . BIND(?y + 1 AS ?z) }").unwrap();
        let GraphPattern::Bind { var, inner, .. } = &q.pattern else {
            panic!("expected Bind, got {:?}", q.pattern)
        };
        assert_eq!(var, "z");
        assert!(matches!(**inner, GraphPattern::Bgp(_)));

        let q = parse_query("SELECT * WHERE { VALUES (?x ?y) { (<a> 1) (<b> UNDEF) } }").unwrap();
        let GraphPattern::Values { vars, rows } = &q.pattern else {
            panic!("expected Values, got {:?}", q.pattern)
        };
        assert_eq!(vars, &["x", "y"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Some(Term::iri("a")));
        assert_eq!(rows[1][1], None);

        // Single-variable form.
        let q = parse_query("SELECT * WHERE { ?x <p> ?y . VALUES ?x { <a> <b> } }").unwrap();
        assert!(matches!(q.pattern, GraphPattern::Join(_, _)));
    }

    #[test]
    fn parse_ask_construct_describe() {
        let q = parse_query("ASK { ?x <p> ?y }").unwrap();
        assert_eq!(q.form, QueryForm::Ask);

        let q = parse_query("CONSTRUCT { ?x <q> ?y . } WHERE { ?x <p> ?y }").unwrap();
        let QueryForm::Construct(template) = &q.form else {
            panic!("expected Construct, got {:?}", q.form)
        };
        assert_eq!(template.len(), 1);
        assert_eq!(template[0].p, TermPattern::Term(Term::iri("q")));

        let q = parse_query("DESCRIBE ?x <who> WHERE { ?x <p> ?y }").unwrap();
        let QueryForm::Describe(targets) = &q.form else {
            panic!("expected Describe, got {:?}", q.form)
        };
        assert_eq!(targets.len(), 2);

        // DESCRIBE with no WHERE clause.
        let q = parse_query("DESCRIBE <who>").unwrap();
        assert_eq!(q.pattern, GraphPattern::Bgp(vec![]));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("SELECT WHERE { ?x <p> ?y }").is_err()); // no vars
        assert!(parse_query("SELECT * { ?x <p> }").is_err()); // missing object
        assert!(parse_query("SELECT * { ?x <p> ?y ").is_err()); // unterminated
        assert!(parse_query("SELECT * { ?x <p> ?y } LIMIT ?x").is_err());
        assert!(parse_query("FOO { ?x <p> ?y }").is_err()); // unknown form
    }

    #[test]
    fn errors_carry_line_and_column() {
        // Malformed PREFIX: the bad token is at line 2, column 8.
        let err = parse_query("PREFIX a: <http://a/>\nPREFIX broken <http://b/>\nSELECT * { }")
            .unwrap_err();
        assert!(
            err.0.contains("line 2, column 8"),
            "bad position in {err:?}"
        );

        // Unterminated string: reported by the lexer with its position.
        let err = parse_query("SELECT * {\n  ?x <p> \"oops\n}").unwrap_err();
        assert!(
            err.0.contains("line 2, column 10"),
            "bad position in {err:?}"
        );

        // Bad path syntax: dangling '/' with no following element.
        let err = parse_query("SELECT * {\n  ?x <a>/ ?y\n}").unwrap_err();
        assert!(
            err.0.contains("line 2, column 11"),
            "bad position in {err:?}"
        );

        // Errors at end of input say so.
        let err = parse_query("SELECT * { ?x <p> ?y ").unwrap_err();
        assert!(err.0.contains("end of query"), "bad position in {err:?}");
    }

    #[test]
    fn empty_group_is_ok() {
        let q = parse_query("SELECT * WHERE { }").unwrap();
        assert_eq!(q.pattern, GraphPattern::Bgp(vec![]));
    }
}
