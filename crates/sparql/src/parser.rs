//! Recursive-descent parser producing [`Query`] values.

use std::collections::HashMap;
use std::fmt;

use s2rdf_model::Term;

use crate::ast::{
    AggFunc, GraphPattern, OrderCondition, Query, SelectItem, Selection, TermPattern, TriplePattern,
};
use crate::expr::Expression;
use crate::lexer::{tokenize, DatatypeRef, LexError, Token};

/// The `rdf:type` IRI (the meaning of the keyword `a`).
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
const XSD: &str = "http://www.w3.org/2001/XMLSchema#";

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPARQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError(e.to_string())
    }
}

/// Parses a SELECT query from its textual form.
///
/// ```
/// use s2rdf_sparql::{parse_query, GraphPattern};
///
/// let q = parse_query("SELECT ?x WHERE { ?x <likes> ?y . ?y <likes> ?z }").unwrap();
/// assert_eq!(q.projected_vars(), vec!["x"]);
/// assert!(matches!(q.pattern, GraphPattern::Bgp(ref tps) if tps.len() == 2));
/// ```
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    };
    let q = p.parse_query()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError(format!(
            "unexpected trailing token {}",
            p.tokens[p.pos]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        let t = self.next()?;
        if &t != expected {
            return Err(ParseError(format!("expected {expected}, found {t}")));
        }
        Ok(())
    }

    /// Consumes a keyword case-insensitively; returns whether it was there.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            match self.peek() {
                Some(t) => Err(ParseError(format!("expected {kw}, found {t}"))),
                None => Err(ParseError(format!("expected {kw}, found end of query"))),
            }
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        let base = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| ParseError(format!("undeclared prefix '{prefix}:'")))?;
        Ok(format!("{base}{local}"))
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        // Prologue: PREFIX declarations.
        while self.eat_keyword("PREFIX") {
            let (prefix, local) = match self.next()? {
                Token::PName(p, l) => (p, l),
                t => return Err(ParseError(format!("expected prefix name, found {t}"))),
            };
            if !local.is_empty() {
                return Err(ParseError(format!(
                    "prefix declaration must end with ':', got {prefix}:{local}"
                )));
            }
            let iri = match self.next()? {
                Token::IriRef(i) => i,
                t => return Err(ParseError(format!("expected IRI, found {t}"))),
            };
            self.prefixes.insert(prefix, iri);
        }

        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        if !distinct {
            // REDUCED is accepted and treated as plain (allowed by spec).
            self.eat_keyword("REDUCED");
        }

        let selection = if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            Selection::All
        } else {
            let mut items: Vec<SelectItem> = Vec::new();
            let mut has_aggregate = false;
            loop {
                match self.peek() {
                    Some(Token::Var(v)) => {
                        items.push(SelectItem::Var(v.clone()));
                        self.pos += 1;
                    }
                    Some(Token::LParen) => {
                        self.pos += 1;
                        items.push(self.parse_aggregate_item()?);
                        has_aggregate = true;
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return Err(ParseError("SELECT needs '*' or variables".into()));
            }
            if has_aggregate {
                Selection::Items(items)
            } else {
                Selection::Vars(
                    items
                        .into_iter()
                        .map(|i| match i {
                            SelectItem::Var(v) => v,
                            SelectItem::Aggregate { .. } => unreachable!(),
                        })
                        .collect(),
                )
            }
        };

        // WHERE is optional in the grammar.
        self.eat_keyword("WHERE");
        let pattern = self.parse_group()?;

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let Some(Token::Var(v)) = self.peek() {
                group_by.push(v.clone());
                self.pos += 1;
            }
            if group_by.is_empty() {
                return Err(ParseError("GROUP BY needs at least one variable".into()));
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    Some(Token::Var(v)) => {
                        order_by.push(OrderCondition {
                            expr: Expression::Var(v.clone()),
                            descending: false,
                        });
                        self.pos += 1;
                    }
                    Some(Token::Word(w))
                        if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                    {
                        let descending = w.eq_ignore_ascii_case("DESC");
                        self.pos += 1;
                        self.expect(&Token::LParen)?;
                        let expr = self.parse_expression()?;
                        self.expect(&Token::RParen)?;
                        order_by.push(OrderCondition { expr, descending });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(ParseError("ORDER BY needs at least one condition".into()));
            }
        }

        let mut limit = None;
        let mut offset = None;
        // LIMIT and OFFSET may come in either order.
        for _ in 0..2 {
            if self.eat_keyword("LIMIT") {
                match self.next()? {
                    Token::Integer(n) if n >= 0 => limit = Some(n as usize),
                    t => return Err(ParseError(format!("bad LIMIT {t}"))),
                }
            } else if self.eat_keyword("OFFSET") {
                match self.next()? {
                    Token::Integer(n) if n >= 0 => offset = Some(n as usize),
                    t => return Err(ParseError(format!("bad OFFSET {t}"))),
                }
            }
        }

        Ok(Query {
            selection,
            distinct,
            pattern,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    /// `(<FUNC>([DISTINCT] <expr>|*) AS ?alias)` — the leading '(' is
    /// already consumed.
    fn parse_aggregate_item(&mut self) -> Result<SelectItem, ParseError> {
        let func = match self.next()? {
            Token::Word(w) => match w.to_ascii_uppercase().as_str() {
                "COUNT" => AggFunc::Count,
                "SUM" => AggFunc::Sum,
                "AVG" => AggFunc::Avg,
                "MIN" => AggFunc::Min,
                "MAX" => AggFunc::Max,
                other => return Err(ParseError(format!("unsupported aggregate {other}()"))),
            },
            t => {
                return Err(ParseError(format!(
                    "expected aggregate function, found {t}"
                )))
            }
        };
        self.expect(&Token::LParen)?;
        let distinct = self.eat_keyword("DISTINCT");
        let arg = if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            if func != AggFunc::Count {
                return Err(ParseError(format!("{}(*) is not valid", func.keyword())));
            }
            None
        } else {
            Some(self.parse_expression()?)
        };
        self.expect(&Token::RParen)?;
        self.expect_keyword("AS")?;
        let alias = match self.next()? {
            Token::Var(v) => v,
            t => return Err(ParseError(format!("expected ?alias after AS, found {t}"))),
        };
        self.expect(&Token::RParen)?;
        Ok(SelectItem::Aggregate {
            func,
            arg,
            distinct,
            alias,
        })
    }

    /// GroupGraphPattern := '{' … '}' with SPARQL's left-to-right algebra
    /// translation: group elements fold with Join, OPTIONAL folds with
    /// LeftJoin, and the group's FILTERs apply to the whole group.
    fn parse_group(&mut self) -> Result<GraphPattern, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut current: Option<GraphPattern> = None;
        let mut bgp: Vec<TriplePattern> = Vec::new();
        let mut filters: Vec<Expression> = Vec::new();

        fn flush(current: &mut Option<GraphPattern>, bgp: &mut Vec<TriplePattern>) {
            if !bgp.is_empty() {
                let pat = GraphPattern::Bgp(std::mem::take(bgp));
                *current = Some(match current.take() {
                    None => pat,
                    Some(prev) => GraphPattern::Join(Box::new(prev), Box::new(pat)),
                });
            }
        }

        loop {
            match self.peek() {
                None => return Err(ParseError("unterminated group".into())),
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Dot) => {
                    self.pos += 1;
                }
                Some(Token::LBrace) => {
                    flush(&mut current, &mut bgp);
                    let sub = self.parse_group_or_union()?;
                    current = Some(match current.take() {
                        None => sub,
                        Some(prev) => GraphPattern::Join(Box::new(prev), Box::new(sub)),
                    });
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    self.pos += 1;
                    self.expect(&Token::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect(&Token::RParen)?;
                    filters.push(expr);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.pos += 1;
                    flush(&mut current, &mut bgp);
                    let right = self.parse_group()?;
                    let left = current.take().unwrap_or(GraphPattern::Bgp(Vec::new()));
                    current = Some(GraphPattern::LeftJoin(Box::new(left), Box::new(right)));
                }
                Some(_) => {
                    // Triples block.
                    self.parse_triples_same_subject(&mut bgp)?;
                }
            }
        }
        flush(&mut current, &mut bgp);
        let mut pattern = current.unwrap_or(GraphPattern::Bgp(Vec::new()));
        for expr in filters {
            pattern = GraphPattern::Filter {
                expr,
                inner: Box::new(pattern),
            };
        }
        Ok(pattern)
    }

    /// GroupOrUnion := GroupGraphPattern ('UNION' GroupGraphPattern)*
    fn parse_group_or_union(&mut self) -> Result<GraphPattern, ParseError> {
        let mut pattern = self.parse_group()?;
        while self.eat_keyword("UNION") {
            let right = self.parse_group()?;
            pattern = GraphPattern::Union(Box::new(pattern), Box::new(right));
        }
        Ok(pattern)
    }

    /// TriplesSameSubject := Subject (Verb ObjectList (';' Verb ObjectList)*)
    fn parse_triples_same_subject(
        &mut self,
        bgp: &mut Vec<TriplePattern>,
    ) -> Result<(), ParseError> {
        let subject = self.parse_term_pattern("subject")?;
        loop {
            let predicate = self.parse_verb()?;
            loop {
                let object = self.parse_term_pattern("object")?;
                bgp.push(TriplePattern::new(
                    subject.clone(),
                    predicate.clone(),
                    object,
                ));
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if matches!(self.peek(), Some(Token::Semicolon)) {
                self.pos += 1;
                // Allow a dangling ';' before '.' or '}'.
                if matches!(self.peek(), Some(Token::Dot) | Some(Token::RBrace)) {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(())
    }

    fn parse_verb(&mut self) -> Result<TermPattern, ParseError> {
        if let Some(Token::Word(w)) = self.peek() {
            if w == "a" {
                self.pos += 1;
                return Ok(TermPattern::Term(Term::iri(RDF_TYPE)));
            }
        }
        self.parse_term_pattern("predicate")
    }

    fn parse_term_pattern(&mut self, what: &str) -> Result<TermPattern, ParseError> {
        match self.next()? {
            Token::Var(v) => Ok(TermPattern::Var(v)),
            Token::IriRef(i) => Ok(TermPattern::Term(Term::iri(i))),
            Token::PName(p, l) => Ok(TermPattern::Term(Term::iri(self.resolve_pname(&p, &l)?))),
            Token::StringLit {
                lexical,
                lang,
                datatype,
            } => Ok(TermPattern::Term(
                self.make_literal(lexical, lang, datatype)?,
            )),
            Token::Integer(n) => Ok(TermPattern::Term(Term::integer(n))),
            Token::Decimal(d) => Ok(TermPattern::Term(Term::typed_literal(
                d,
                format!("{XSD}decimal"),
            ))),
            t => Err(ParseError(format!("expected {what}, found {t}"))),
        }
    }

    fn make_literal(
        &self,
        lexical: String,
        lang: Option<String>,
        datatype: Option<DatatypeRef>,
    ) -> Result<Term, ParseError> {
        if let Some(lang) = lang {
            return Ok(Term::lang_literal(lexical, lang));
        }
        match datatype {
            None => Ok(Term::literal(lexical)),
            Some(DatatypeRef::Iri(i)) => Ok(Term::typed_literal(lexical, i)),
            Some(DatatypeRef::PName(p, l)) => {
                Ok(Term::typed_literal(lexical, self.resolve_pname(&p, &l)?))
            }
        }
    }

    // ---- Expression parsing (precedence climbing) ----

    fn parse_expression(&mut self) -> Result<Expression, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.pos += 1;
            let right = self.parse_and()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_relational()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.pos += 1;
            let right = self.parse_relational()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expression, ParseError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Expression::Eq as fn(_, _) -> _,
            Some(Token::Ne) => Expression::Ne,
            Some(Token::Lt) => Expression::Lt,
            Some(Token::Le) => Expression::Le,
            Some(Token::Gt) => Expression::Gt,
            Some(Token::Ge) => Expression::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        Ok(op(Box::new(left), Box::new(right)))
    }

    fn parse_additive(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => Expression::Add as fn(_, _) -> _,
                Some(Token::Minus) => Expression::Sub,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = op(Box::new(left), Box::new(right));
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => Expression::Mul as fn(_, _) -> _,
                Some(Token::Slash) => Expression::Div,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = op(Box::new(left), Box::new(right));
        }
    }

    fn parse_unary(&mut self) -> Result<Expression, ParseError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(Expression::Not(Box::new(self.parse_unary()?)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.parse_unary()?;
                Ok(Expression::Sub(
                    Box::new(Expression::Const(Term::integer(0))),
                    Box::new(inner),
                ))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expression, ParseError> {
        match self.next()? {
            Token::LParen => {
                let e = self.parse_expression()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Var(v) => Ok(Expression::Var(v)),
            Token::IriRef(i) => Ok(Expression::Const(Term::iri(i))),
            Token::PName(p, l) => Ok(Expression::Const(Term::iri(self.resolve_pname(&p, &l)?))),
            Token::Integer(n) => Ok(Expression::Const(Term::integer(n))),
            Token::Decimal(d) => Ok(Expression::Const(Term::typed_literal(
                d,
                format!("{XSD}decimal"),
            ))),
            Token::StringLit {
                lexical,
                lang,
                datatype,
            } => Ok(Expression::Const(
                self.make_literal(lexical, lang, datatype)?,
            )),
            Token::Word(w) => self.parse_builtin(&w),
            t => Err(ParseError(format!("expected expression, found {t}"))),
        }
    }

    fn parse_builtin(&mut self, name: &str) -> Result<Expression, ParseError> {
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "TRUE" => {
                return Ok(Expression::Const(Term::typed_literal(
                    "true",
                    format!("{XSD}boolean"),
                )))
            }
            "FALSE" => {
                return Ok(Expression::Const(Term::typed_literal(
                    "false",
                    format!("{XSD}boolean"),
                )))
            }
            _ => {}
        }
        self.expect(&Token::LParen)?;
        let expr = match upper.as_str() {
            "BOUND" => match self.next()? {
                Token::Var(v) => Expression::Bound(v),
                t => return Err(ParseError(format!("BOUND needs a variable, found {t}"))),
            },
            "ISIRI" | "ISURI" => Expression::IsIri(Box::new(self.parse_expression()?)),
            "ISLITERAL" => Expression::IsLiteral(Box::new(self.parse_expression()?)),
            "ISBLANK" => Expression::IsBlank(Box::new(self.parse_expression()?)),
            "STR" => Expression::Str(Box::new(self.parse_expression()?)),
            "LANG" => Expression::Lang(Box::new(self.parse_expression()?)),
            other => return Err(ParseError(format!("unsupported function {other}()"))),
        };
        self.expect(&Token::RParen)?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example query Q1.
    const Q1: &str = "SELECT * WHERE {
        ?x <likes> ?w . ?x <follows> ?y .
        ?y <follows> ?z . ?z <likes> ?w
    }";

    #[test]
    fn parse_q1() {
        let q = parse_query(Q1).unwrap();
        assert_eq!(q.selection, Selection::All);
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps.len(), 4);
                assert_eq!(tps[0].s, TermPattern::Var("x".into()));
                assert_eq!(tps[0].p, TermPattern::Term(Term::iri("likes")));
            }
            other => panic!("expected BGP, got {other:?}"),
        }
        assert_eq!(q.projected_vars(), vec!["x", "w", "y", "z"]);
    }

    #[test]
    fn parse_prefixes_and_a() {
        let q = parse_query(
            "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
             PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
             SELECT ?v0 WHERE { ?v0 a wsdbm:Role2 . ?v0 rdf:type wsdbm:Role2 }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps[0].p, TermPattern::Term(Term::iri(RDF_TYPE)));
                assert_eq!(tps[0].p, tps[1].p);
                assert_eq!(
                    tps[0].o,
                    TermPattern::Term(Term::iri("http://db.uwaterloo.ca/~galuc/wsdbm/Role2"))
                );
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        assert!(parse_query("SELECT * WHERE { ?x wsdbm:likes ?y }").is_err());
    }

    #[test]
    fn parse_filter() {
        let q =
            parse_query("SELECT ?x WHERE { ?x <age> ?a . FILTER(?a >= 18 && ?a < 65) }").unwrap();
        match &q.pattern {
            GraphPattern::Filter { expr, inner } => {
                assert!(matches!(**inner, GraphPattern::Bgp(_)));
                assert!(matches!(expr, Expression::And(_, _)));
            }
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn parse_optional_and_union() {
        let q = parse_query(
            "SELECT * WHERE {
                ?x <p> ?y .
                OPTIONAL { ?y <q> ?z }
                { ?x <r> ?w } UNION { ?x <s> ?w }
            }",
        )
        .unwrap();
        // Shape: Join(LeftJoin(Bgp, Bgp), Union(Bgp, Bgp))
        match &q.pattern {
            GraphPattern::Join(l, r) => {
                assert!(matches!(**l, GraphPattern::LeftJoin(_, _)));
                assert!(matches!(**r, GraphPattern::Union(_, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn parse_modifiers() {
        let q = parse_query(
            "SELECT DISTINCT ?x WHERE { ?x <p> ?y } ORDER BY ?y DESC(?x) LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].descending);
        assert!(q.order_by[1].descending);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn parse_semicolon_and_comma_abbreviations() {
        let q = parse_query("SELECT * WHERE { ?x <p> ?a , ?b ; <q> ?c . }").unwrap();
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps.len(), 3);
                assert!(tps.iter().all(|tp| tp.s == TermPattern::Var("x".into())));
                assert_eq!(tps[2].p, TermPattern::Term(Term::iri("q")));
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn parse_literals_in_patterns() {
        let q = parse_query("SELECT * WHERE { ?x <age> 42 . ?x <name> \"Ann\"@en }").unwrap();
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps[0].o, TermPattern::Term(Term::integer(42)));
                assert_eq!(tps[1].o, TermPattern::Term(Term::lang_literal("Ann", "en")));
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let q =
            parse_query("SELECT * WHERE { ?x <p> ?y FILTER(?y + 1 * 2 = 3 || ?y > 9) }").unwrap();
        let GraphPattern::Filter { expr, .. } = &q.pattern else {
            panic!("expected filter")
        };
        // Top must be Or; its left an Eq whose left is Add(y, Mul(1,2)).
        let Expression::Or(l, _) = expr else {
            panic!("expected Or, got {expr:?}")
        };
        let Expression::Eq(ll, _) = &**l else {
            panic!("expected Eq")
        };
        assert!(matches!(&**ll, Expression::Add(_, m) if matches!(&**m, Expression::Mul(_, _))));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("SELECT WHERE { ?x <p> ?y }").is_err()); // no vars
        assert!(parse_query("SELECT * { ?x <p> }").is_err()); // missing object
        assert!(parse_query("SELECT * { ?x <p> ?y ").is_err()); // unterminated
        assert!(parse_query("SELECT * { ?x <p> ?y } LIMIT ?x").is_err());
        assert!(parse_query("ASK { ?x <p> ?y }").is_err()); // unsupported form
    }

    #[test]
    fn empty_group_is_ok() {
        let q = parse_query("SELECT * WHERE { }").unwrap();
        assert_eq!(q.pattern, GraphPattern::Bgp(vec![]));
    }
}
