//! Query-shape analysis (paper §2.1, Fig. 3).
//!
//! The paper distinguishes **star**, **linear**, **snowflake** and
//! **complex** BGPs and defines the *diameter* as the longest connected
//! sequence of triple patterns, ignoring edge direction. The shape drives
//! the workload taxonomy of the evaluation (§7) and motivates ExtVP's
//! shape-independence claim.
//!
//! The query graph has one node per distinct subject/object position
//! (variable or term) and one undirected edge per triple pattern;
//! predicates label the edges. The diameter is the longest *simple path*
//! in that multigraph (exact DFS — BGPs are tiny).

use rustc_hash::FxHashMap;

use crate::ast::{TermPattern, TriplePattern};

/// The BGP shape taxonomy of the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Single triple pattern.
    Single,
    /// All patterns share one subject (subject-subject joins only),
    /// diameter 1.
    Star,
    /// The query graph is a simple path: object-subject chains.
    Linear,
    /// A tree combining at least one star with paths.
    Snowflake,
    /// Cyclic or disconnected pattern combinations.
    Complex,
}

impl Shape {
    /// The paper's one-letter category label.
    pub fn label(self) -> &'static str {
        match self {
            Shape::Single => "1",
            Shape::Star => "S",
            Shape::Linear => "L",
            Shape::Snowflake => "F",
            Shape::Complex => "C",
        }
    }
}

/// Structural summary of a BGP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeReport {
    /// The classified shape.
    pub shape: Shape,
    /// Longest simple path in the query graph, in triple patterns. The
    /// paper's star diameter of 1 corresponds to counting from the hub:
    /// we report the hub-to-leaf convention (a pure star has diameter 1).
    pub diameter: usize,
    /// Number of triple patterns.
    pub patterns: usize,
    /// True if the query graph is connected (disconnected BGPs imply
    /// cross joins).
    pub connected: bool,
}

fn has_self_loop(edges: &[(usize, usize)]) -> bool {
    edges.iter().any(|&(a, b)| a == b)
}

/// Node key: a variable name or a rendered term (subject/object position).
fn node_key(tp: &TermPattern) -> String {
    match tp {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Term(t) => t.to_string(),
    }
}

/// Analyzes a BGP's query graph.
///
/// ```
/// use s2rdf_sparql::{parse_query, GraphPattern};
/// use s2rdf_sparql::shape::{analyze, Shape};
///
/// let q = parse_query("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . ?z <r> ?w }").unwrap();
/// let GraphPattern::Bgp(tps) = q.pattern else { unreachable!() };
/// let report = analyze(&tps);
/// assert_eq!(report.shape, Shape::Linear);
/// assert_eq!(report.diameter, 3);
/// ```
pub fn analyze(bgp: &[TriplePattern]) -> ShapeReport {
    if bgp.is_empty() {
        return ShapeReport {
            shape: Shape::Single,
            diameter: 0,
            patterns: 0,
            connected: true,
        };
    }
    if bgp.len() == 1 {
        return ShapeReport {
            shape: Shape::Single,
            diameter: 1,
            patterns: 1,
            connected: true,
        };
    }

    // Build the undirected multigraph: nodes = s/o positions.
    let mut ids: FxHashMap<String, usize> = FxHashMap::default();
    let mut id_of = |key: String| {
        let next = ids.len();
        *ids.entry(key).or_insert(next)
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for tp in bgp {
        let s = id_of(node_key(&tp.s));
        let o = id_of(node_key(&tp.o));
        edges.push((s, o));
    }
    let n = ids.len();
    let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (neighbor, edge idx)
    for (ei, &(a, b)) in edges.iter().enumerate() {
        adjacency[a].push((b, ei));
        if a != b {
            adjacency[b].push((a, ei));
        }
    }

    // Connectivity over edges.
    let connected = {
        let mut seen = vec![false; n];
        let mut stack = vec![edges[0].0];
        seen[edges[0].0] = true;
        while let Some(v) = stack.pop() {
            for &(w, _) in &adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen.into_iter().all(|s| s)
    };

    // Longest simple path (edge count) by DFS over edges; BGPs have ≤ ~10
    // patterns so the exponential worst case is irrelevant.
    let mut used = vec![false; edges.len()];
    let mut best = 0usize;
    fn dfs(
        v: usize,
        depth: usize,
        adjacency: &[Vec<(usize, usize)>],
        used: &mut [bool],
        best: &mut usize,
    ) {
        *best = (*best).max(depth);
        for &(w, ei) in &adjacency[v] {
            if !used[ei] {
                used[ei] = true;
                dfs(w, depth + 1, adjacency, used, best);
                used[ei] = false;
            }
        }
    }
    for v in 0..n {
        dfs(v, 0, &adjacency, &mut used, &mut best);
    }

    // Star: every pattern shares the hub as *subject* (the classic
    // subject-subject star), or — for three or more patterns — every
    // pattern is at least *incident* to one hub (the paper's S queries
    // include patterns pointing into the hub, e.g. S1's `%retailer%
    // gr:offers ?v0`). Two-pattern chains that merely share an object
    // stay Linear. No self-loops. Diameter convention: 1.
    let subject_star = {
        let first_subject = node_key(&bgp[0].s);
        bgp.iter()
            .all(|tp| node_key(&tp.s) == first_subject && node_key(&tp.o) != first_subject)
    };
    let incident_star = bgp.len() >= 3
        && !has_self_loop(&edges)
        && (0..n).any(|hub| edges.iter().all(|&(a, b)| a == hub || b == hub));
    let star = subject_star || incident_star;
    if star {
        return ShapeReport {
            shape: Shape::Star,
            diameter: 1,
            patterns: bgp.len(),
            connected,
        };
    }

    // Cycle detection: a connected graph with E ≥ N edges has a cycle
    // (self-loops count as cycles).
    let cyclic = has_self_loop(&edges) || edges.len() >= n;

    let degrees: Vec<usize> = adjacency.iter().map(Vec::len).collect();
    let shape = if !connected || cyclic {
        Shape::Complex
    } else if degrees.iter().all(|&d| d <= 2) {
        Shape::Linear
    } else {
        Shape::Snowflake
    };
    ShapeReport {
        shape,
        diameter: best,
        patterns: bgp.len(),
        connected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2rdf_model::Term;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let part = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Term(Term::iri(x))
            }
        };
        TriplePattern::new(part(s), part(p), part(o))
    }

    /// The three BGPs of the paper's Fig. 3.
    #[test]
    fn fig3_shapes() {
        // Star: ?x likes ?y1 . ?x likes ?y2 . ?x follows ?y3
        let star = vec![
            tp("?x", "likes", "?y1"),
            tp("?x", "likes", "?y2"),
            tp("?x", "follows", "?y3"),
        ];
        let r = analyze(&star);
        assert_eq!(r.shape, Shape::Star);
        assert_eq!(r.diameter, 1);

        // Linear: ?x follows ?y . ?y follows ?z . ?z likes ?w
        let linear = vec![
            tp("?x", "follows", "?y"),
            tp("?y", "follows", "?z"),
            tp("?z", "likes", "?w"),
        ];
        let r = analyze(&linear);
        assert_eq!(r.shape, Shape::Linear);
        assert_eq!(r.diameter, 3); // "diameter corresponds to the number of
                                   // triple patterns" (§2.1)

        // Snowflake: two stars bridged by follows.
        let snowflake = vec![
            tp("?x", "likes", "?z1"),
            tp("?x", "likes", "?z2"),
            tp("?x", "follows", "?y"),
            tp("?y", "likes", "?z3"),
            tp("?y", "likes", "?z4"),
        ];
        let r = analyze(&snowflake);
        assert_eq!(r.shape, Shape::Snowflake);
        assert_eq!(r.diameter, 3); // z1 — x — y — z3
    }

    /// The paper's Q1 is cyclic → complex.
    #[test]
    fn q1_is_complex() {
        let q1 = vec![
            tp("?x", "likes", "?w"),
            tp("?x", "follows", "?y"),
            tp("?y", "follows", "?z"),
            tp("?z", "likes", "?w"),
        ];
        let r = analyze(&q1);
        assert_eq!(r.shape, Shape::Complex);
        assert!(r.connected);
        assert_eq!(r.diameter, 4); // the full cycle opened at one node
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(analyze(&[]).shape, Shape::Single);
        let r = analyze(&[tp("?a", "p", "?b")]);
        assert_eq!(r.shape, Shape::Single);
        assert_eq!(r.diameter, 1);
    }

    #[test]
    fn disconnected_is_complex() {
        let bgp = vec![tp("?a", "p", "?b"), tp("?c", "q", "?d")];
        let r = analyze(&bgp);
        assert_eq!(r.shape, Shape::Complex);
        assert!(!r.connected);
    }

    #[test]
    fn self_loop_is_complex() {
        let bgp = vec![tp("?a", "p", "?a"), tp("?a", "q", "?b")];
        assert_eq!(analyze(&bgp).shape, Shape::Complex);
    }

    #[test]
    fn shared_constants_join_patterns() {
        // Two patterns meeting in a constant object form a 2-path, not a
        // disconnected pair.
        let bgp = vec![tp("?a", "p", "c0"), tp("?b", "q", "c0")];
        let r = analyze(&bgp);
        assert!(r.connected);
        assert_eq!(r.shape, Shape::Linear);
        assert_eq!(r.diameter, 2);
    }
}
