//! Rendering queries back to SPARQL text.
//!
//! The output is fully parenthesized/braced, so `parse(render(q))`
//! reproduces the algebra exactly (round-trip tested). Used for debugging
//! optimized queries and for tooling that needs to ship a query onward.

use std::fmt;

use crate::ast::{
    GraphPattern, PropertyPath, Query, QueryForm, SelectItem, Selection, TermPattern, TriplePattern,
};
use crate::expr::Expression;

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermPattern::Var(v) => write!(f, "?{v}"),
            TermPattern::Term(t) => write!(f, "{t}"),
        }
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

impl fmt::Display for PropertyPath {
    /// Fully parenthesized rendering: every composite operand is wrapped in
    /// `(…)` so precedence never shifts on re-parse, and composite paths
    /// stay composite (a bare IRI would collapse back to a plain triple
    /// pattern).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyPath::Iri(t) => write!(f, "{t}"),
            PropertyPath::Inverse(p) => write!(f, "^({p})"),
            PropertyPath::Sequence(a, b) => write!(f, "({a})/({b})"),
            PropertyPath::Alternative(a, b) => write!(f, "({a})|({b})"),
            PropertyPath::ZeroOrMore(p) => write!(f, "({p})*"),
            PropertyPath::OneOrMore(p) => write!(f, "({p})+"),
            PropertyPath::ZeroOrOne(p) => write!(f, "({p})?"),
        }
    }
}

impl fmt::Display for GraphPattern {
    /// Renders the pattern as a group graph pattern (always braced).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphPattern::Bgp(tps) => {
                write!(f, "{{ ")?;
                for tp in tps {
                    write!(f, "{tp} ")?;
                }
                write!(f, "}}")
            }
            GraphPattern::Path {
                subject,
                path,
                object,
            } => write!(f, "{{ {subject} {path} {object} . }}"),
            GraphPattern::Filter { expr, inner } => {
                write!(f, "{{ {inner} FILTER({expr}) }}")
            }
            GraphPattern::Bind { expr, var, inner } => {
                write!(f, "{{ {inner} BIND({expr} AS ?{var}) }}")
            }
            GraphPattern::Values { vars, rows } => {
                write!(f, "{{ VALUES (")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "?{v}")?;
                }
                write!(f, ") {{ ")?;
                for row in rows {
                    write!(f, "(")?;
                    for (i, cell) in row.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        match cell {
                            Some(t) => write!(f, "{t}")?,
                            None => write!(f, "UNDEF")?,
                        }
                    }
                    write!(f, ") ")?;
                }
                write!(f, "}} }}")
            }
            GraphPattern::Join(l, r) => write!(f, "{{ {l} {r} }}"),
            GraphPattern::LeftJoin(l, r) => write!(f, "{{ {l} OPTIONAL {r} }}"),
            GraphPattern::Union(l, r) => write!(f, "{{ {l} UNION {r} }}"),
        }
    }
}

impl fmt::Display for Expression {
    /// Fully parenthesized rendering (precedence-free round-trips).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bin = |f: &mut fmt::Formatter<'_>, a: &Expression, op: &str, b: &Expression| {
            write!(f, "({a} {op} {b})")
        };
        match self {
            Expression::Var(v) => write!(f, "?{v}"),
            Expression::Const(t) => write!(f, "{t}"),
            Expression::And(a, b) => bin(f, a, "&&", b),
            Expression::Or(a, b) => bin(f, a, "||", b),
            Expression::Not(e) => write!(f, "(!{e})"),
            Expression::Eq(a, b) => bin(f, a, "=", b),
            Expression::Ne(a, b) => bin(f, a, "!=", b),
            Expression::Lt(a, b) => bin(f, a, "<", b),
            Expression::Le(a, b) => bin(f, a, "<=", b),
            Expression::Gt(a, b) => bin(f, a, ">", b),
            Expression::Ge(a, b) => bin(f, a, ">=", b),
            Expression::Add(a, b) => bin(f, a, "+", b),
            Expression::Sub(a, b) => bin(f, a, "-", b),
            Expression::Mul(a, b) => bin(f, a, "*", b),
            Expression::Div(a, b) => bin(f, a, "/", b),
            Expression::Bound(v) => write!(f, "BOUND(?{v})"),
            Expression::IsIri(e) => write!(f, "isIRI({e})"),
            Expression::IsLiteral(e) => write!(f, "isLITERAL({e})"),
            Expression::IsBlank(e) => write!(f, "isBLANK({e})"),
            Expression::Str(e) => write!(f, "STR({e})"),
            Expression::Lang(e) => write!(f, "LANG({e})"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.form {
            QueryForm::Select => {}
            QueryForm::Ask => {
                write!(f, "ASK {}", self.pattern)?;
                return self.fmt_modifiers(f);
            }
            QueryForm::Construct(template) => {
                write!(f, "CONSTRUCT {{ ")?;
                for tp in template {
                    write!(f, "{tp} ")?;
                }
                write!(f, "}} WHERE {}", self.pattern)?;
                return self.fmt_modifiers(f);
            }
            QueryForm::Describe(targets) => {
                write!(f, "DESCRIBE")?;
                for t in targets {
                    write!(f, " {t}")?;
                }
                write!(f, " WHERE {}", self.pattern)?;
                return self.fmt_modifiers(f);
            }
        }
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.selection {
            Selection::All => write!(f, "*")?,
            Selection::Vars(vars) => {
                let rendered: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
                write!(f, "{}", rendered.join(" "))?;
            }
            Selection::Items(items) => {
                let rendered: Vec<String> = items
                    .iter()
                    .map(|item| match item {
                        SelectItem::Var(v) => format!("?{v}"),
                        SelectItem::Aggregate {
                            func,
                            arg,
                            distinct,
                            alias,
                        } => {
                            let inner = match arg {
                                None => "*".to_string(),
                                Some(e) => e.to_string(),
                            };
                            format!(
                                "({}({}{}) AS ?{alias})",
                                func.keyword(),
                                if *distinct { "DISTINCT " } else { "" },
                                inner
                            )
                        }
                    })
                    .collect();
                write!(f, "{}", rendered.join(" "))?;
            }
        }
        write!(f, " WHERE {}", self.pattern)?;
        self.fmt_modifiers(f)
    }
}

impl Query {
    /// Renders the solution modifiers shared by all query forms.
    fn fmt_modifiers(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.group_by.is_empty() {
            let keys: Vec<String> = self.group_by.iter().map(|v| format!("?{v}")).collect();
            write!(f, " GROUP BY {}", keys.join(" "))?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY")?;
            for cond in &self.order_by {
                if cond.descending {
                    write!(f, " DESC({})", cond.expr)?;
                } else {
                    write!(f, " ASC({})", cond.expr)?;
                }
            }
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if let Some(offset) = self.offset {
            write!(f, " OFFSET {offset}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;

    fn roundtrip(q: &str) {
        let parsed = parse_query(q).unwrap_or_else(|e| panic!("{e}\n{q}"));
        let rendered = parsed.to_string();
        let reparsed = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered text unparseable: {e}\n{rendered}"));
        assert_eq!(reparsed, parsed, "round-trip drift via\n{rendered}");
    }

    #[test]
    fn roundtrip_bgp() {
        roundtrip("SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y . ?y <follows> ?z }");
    }

    #[test]
    fn roundtrip_modifiers() {
        roundtrip(
            "SELECT DISTINCT ?x ?y WHERE { ?x <p> ?y } ORDER BY ?y DESC(?x) LIMIT 5 OFFSET 2",
        );
    }

    #[test]
    fn roundtrip_operators() {
        roundtrip(
            "SELECT ?x WHERE {
                ?x <age> ?a . ?x <name> ?n
                OPTIONAL { ?x <email> ?e }
                FILTER(?a * 2 >= 18 && (!BOUND(?e) || isIRI(?x)))
            }",
        );
    }

    #[test]
    fn roundtrip_union_and_literals() {
        roundtrip(
            "SELECT * WHERE {
                { ?x <p> \"plain\" } UNION { ?x <q> \"tagged\"@en }
                ?x <r> 42 .
            }",
        );
    }

    #[test]
    fn roundtrip_bound_terms_and_a() {
        roundtrip("SELECT ?t WHERE { <s> a ?t . <s> <p> <o> }");
    }

    #[test]
    fn roundtrip_property_paths() {
        roundtrip("SELECT * WHERE { ?x <knows>+ ?y }");
        roundtrip("SELECT * WHERE { ?x <a>/<b>|^<c>* ?y }");
        roundtrip("SELECT * WHERE { ?x (<a>|<b>)? ?y . ?y ^(<c>/<d>)+ <end> }");
        roundtrip("SELECT * WHERE { ?x (a/<sub>*)|^<e> ?y }");
    }

    #[test]
    fn roundtrip_bind_and_values() {
        roundtrip("SELECT * WHERE { ?x <p> ?y . BIND(?y + 1 AS ?z) }");
        roundtrip("SELECT * WHERE { BIND(<c> AS ?k) }");
        roundtrip("SELECT * WHERE { VALUES (?x ?y) { (<a> 1) (<b> UNDEF) } ?x <p> ?z }");
        roundtrip("SELECT * WHERE { VALUES ?x { <a> \"lit\"@en 2.5 } }");
    }

    #[test]
    fn roundtrip_query_forms() {
        roundtrip("ASK { ?x <p> ?y . FILTER(?y > 3) }");
        roundtrip("CONSTRUCT { ?x <q> ?y . ?y a <T> . } WHERE { ?x <p> ?y } LIMIT 4");
        roundtrip("DESCRIBE <who>");
        roundtrip("DESCRIBE ?x <other> WHERE { ?x <p> ?y }");
    }

    #[test]
    fn roundtrip_aggregates() {
        roundtrip(
            "SELECT ?a (COUNT(DISTINCT ?b) AS ?n) (SUM(?v + 1) AS ?s)
             WHERE { ?a <p> ?b . ?a <v> ?v } GROUP BY ?a ORDER BY DESC(?n) LIMIT 3",
        );
        roundtrip("SELECT (COUNT(*) AS ?n) WHERE { ?a <p> ?b }");
    }
}
