//! Property test: rendering a random query AST to SPARQL text and parsing
//! it back yields the same AST (modulo the identity normalizations the
//! parser applies).

use proptest::prelude::*;

use s2rdf_model::Term;
use s2rdf_sparql::{parse_query, GraphPattern, Query, Selection, TermPattern, TriplePattern};

fn arb_term_pattern() -> impl Strategy<Value = TermPattern> {
    prop_oneof![
        (0u8..6).prop_map(|v| TermPattern::Var(format!("v{v}"))),
        (0u8..8).prop_map(|c| TermPattern::Term(Term::iri(format!("http://x/e{c}")))),
        (0i64..100).prop_map(|n| TermPattern::Term(Term::integer(n))),
        "[a-z]{1,8}".prop_map(|s| TermPattern::Term(Term::literal(s))),
    ]
}

fn arb_tp() -> impl Strategy<Value = TriplePattern> {
    (
        arb_term_pattern(),
        prop_oneof![
            3 => (0u8..4).prop_map(|p| TermPattern::Term(Term::iri(format!("http://x/p{p}")))),
            1 => (0u8..6).prop_map(|v| TermPattern::Var(format!("v{v}"))),
        ],
        arb_term_pattern(),
    )
        .prop_map(|(s, p, o)| TriplePattern::new(s, p, o))
}

fn arb_bgp() -> impl Strategy<Value = Vec<TriplePattern>> {
    proptest::collection::vec(arb_tp(), 1..5)
}

fn render_term_pattern(tp: &TermPattern) -> String {
    match tp {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Term(t) => t.to_string(),
    }
}

fn render(bgp: &[TriplePattern], distinct: bool, limit: Option<usize>) -> String {
    let mut body = String::new();
    for tp in bgp {
        body.push_str(&format!(
            "{} {} {} . ",
            render_term_pattern(&tp.s),
            render_term_pattern(&tp.p),
            render_term_pattern(&tp.o)
        ));
    }
    let mut q = format!(
        "SELECT {}* WHERE {{ {body}}}",
        if distinct { "DISTINCT " } else { "" }
    );
    if let Some(l) = limit {
        q.push_str(&format!(" LIMIT {l}"));
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bgp_roundtrip(bgp in arb_bgp(), distinct in any::<bool>(), limit in proptest::option::of(0usize..50)) {
        let text = render(&bgp, distinct, limit);
        let parsed: Query = parse_query(&text)
            .unwrap_or_else(|e| panic!("render produced unparseable text: {e}\n{text}"));
        prop_assert_eq!(parsed.selection, Selection::All);
        prop_assert_eq!(parsed.distinct, distinct);
        prop_assert_eq!(parsed.limit, limit);
        match parsed.pattern {
            GraphPattern::Bgp(parsed_tps) => prop_assert_eq!(parsed_tps, bgp),
            other => prop_assert!(false, "expected BGP, got {:?}", other),
        }
    }

    #[test]
    fn filter_expression_numbers_roundtrip(a in -50i64..50, b in 1i64..50) {
        let text = format!(
            "SELECT * WHERE {{ ?x <http://x/p> ?y FILTER(?y > {a} && ?y < {b} * 2) }}"
        );
        let parsed = parse_query(&text).unwrap();
        let GraphPattern::Filter { expr, .. } = parsed.pattern else {
            panic!("expected filter");
        };
        // The filter evaluates consistently with direct arithmetic.
        let y = Term::integer(a + 1);
        let lookup = |v: &str| (v == "y").then_some(&y);
        let expected = (a + 1) > a && (a + 1) < b * 2;
        let got = expr.eval(&lookup).unwrap().ebv().unwrap();
        prop_assert_eq!(got, expected);
    }
}
