//! Criterion bench for paper Table 6 / Fig. 16: Basic Testing runtime as a
//! function of the SF threshold the store was built with.

use criterion::{criterion_group, criterion_main, Criterion};

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::dataset;
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

fn bench_threshold(c: &mut Criterion) {
    let data = dataset(1);
    let basic = Workload::basic_testing();
    let mut group = c.benchmark_group("table6_threshold");
    group.sample_size(10);

    for threshold in [0.0, 0.25, 1.0] {
        let store = S2rdfStore::build(
            &data.graph,
            &BuildOptions {
                threshold,
                build_extvp: true,
                ..Default::default()
            },
        );
        let engine = store.engine(true);
        // One representative query per category.
        for name in ["L2", "S3", "F5", "C3"] {
            let template = basic.get(name).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            let query = template.instantiate(&data, &mut rng);
            group.bench_function(format!("th_{threshold:.2}/{name}"), |b| {
                b.iter(|| engine.query(&query).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
