//! Micro/ablation benches for the design choices DESIGN.md calls out:
//! join-order optimization on/off (paper Fig. 12), parallel vs serial
//! hash joins, ExtVP construction, and SPARQL parsing.

use criterion::{criterion_group, criterion_main, Criterion};

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::dataset;
use s2rdf_columnar::exec::par_natural_join;
use s2rdf_columnar::ops::natural_join;
use s2rdf_columnar::{Schema, Table};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

fn bench_join_order_ablation(c: &mut Criterion) {
    let data = dataset(1);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let engine = store.engine(true);
    let mut rng = StdRng::seed_from_u64(3);
    let query = Workload::basic_testing()
        .get("C2")
        .unwrap()
        .instantiate(&data, &mut rng);

    let mut group = c.benchmark_group("micro_join_order");
    group.sample_size(10);
    group.bench_function("optimized", |b| {
        let opts = QueryOptions {
            optimize_join_order: true,
            ..Default::default()
        };
        b.iter(|| engine.query_opt(&query, &opts).unwrap())
    });
    group.bench_function("as_written", |b| {
        let opts = QueryOptions {
            optimize_join_order: false,
            ..Default::default()
        };
        b.iter(|| engine.query_opt(&query, &opts).unwrap())
    });
    group.finish();
}

fn bench_parallel_join(c: &mut Criterion) {
    // Two synthetic 200k-row tables with join keys of cardinality 50k.
    let mut rng_state = 0x12345u64;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((rng_state >> 33) as u32) % 50_000
    };
    let n = 200_000;
    let left = Table::from_columns(
        Schema::new(["a", "k"]),
        vec![(0..n).collect(), (0..n).map(|_| next()).collect()],
    );
    let right = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![(0..n).map(|_| next()).collect(), (0..n).collect()],
    );

    let mut group = c.benchmark_group("micro_parallel_join");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| natural_join(&left, &right)));
    for parts in [2, 4, 8] {
        group.bench_function(format!("parallel_{parts}"), |b| {
            b.iter(|| par_natural_join(&left, &right, parts))
        });
    }
    group.finish();
}

fn bench_extvp_build(c: &mut Criterion) {
    let data = dataset(1);
    let mut group = c.benchmark_group("micro_extvp_build");
    group.sample_size(10);
    group.bench_function("build_extvp_sf1", |b| {
        b.iter(|| S2rdfStore::build(&data.graph, &BuildOptions::default()))
    });
    group.finish();
}

fn bench_parser(c: &mut Criterion) {
    let data = dataset(1);
    let mut rng = StdRng::seed_from_u64(9);
    let query = Workload::basic_testing()
        .get("C2")
        .unwrap()
        .instantiate(&data, &mut rng);
    c.bench_function("micro_parse_c2", |b| {
        b.iter(|| s2rdf_sparql::parse_query(&query).unwrap())
    });
}

fn bench_extvp_modes(c: &mut Criterion) {
    // Ablation of the ExtVP physical representation: materialized tables
    // (the paper's scheme) vs bitmaps (§8 future work) vs lazy
    // materialization (§7 "pay as you go") — build cost and query cost.
    use s2rdf_core::layout::extvp::ExtVpMode;
    let data = dataset(1);
    let mut rng = StdRng::seed_from_u64(13);
    let query = Workload::basic_testing()
        .get("F5")
        .unwrap()
        .instantiate(&data, &mut rng);

    let mut group = c.benchmark_group("micro_extvp_modes");
    group.sample_size(10);
    for mode in [
        ExtVpMode::Materialized,
        ExtVpMode::BitVector,
        ExtVpMode::Lazy,
    ] {
        group.bench_function(format!("build/{mode:?}"), |b| {
            b.iter(|| {
                S2rdfStore::build(
                    &data.graph,
                    &BuildOptions {
                        mode,
                        ..Default::default()
                    },
                )
            })
        });
        let store = S2rdfStore::build(
            &data.graph,
            &BuildOptions {
                mode,
                ..Default::default()
            },
        );
        let engine = store.engine(true);
        engine.query(&query).unwrap(); // warm the lazy cache once
        group.bench_function(format!("query_f5/{mode:?}"), |b| {
            b.iter(|| engine.query(&query).unwrap())
        });
    }
    group.finish();
}

fn bench_intersection_ablation(c: &mut Criterion) {
    // The §8 future-work correlation-intersection optimization: tighter
    // scans bought with query-time hash-set intersection.
    let data = dataset(1);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let engine = store.engine(true);
    let mut rng = StdRng::seed_from_u64(17);
    let query = Workload::basic_testing()
        .get("F3")
        .unwrap()
        .instantiate(&data, &mut rng);
    let mut group = c.benchmark_group("micro_intersect_correlations");
    group.sample_size(10);
    for (label, on) in [("best_table_only", false), ("intersect_all", true)] {
        let opts = QueryOptions {
            intersect_correlations: on,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| engine.query_opt(&query, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_join_order_ablation,
    bench_intersection_ablation,
    bench_parallel_join,
    bench_extvp_build,
    bench_extvp_modes,
    bench_parser
);
criterion_main!(benches);
