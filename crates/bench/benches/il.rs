//! Criterion bench for paper Table 5 / Fig. 15: Incremental Linear
//! Testing — runtime vs query diameter for ExtVP and VP.

use criterion::{criterion_group, criterion_main, Criterion};

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::dataset;
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

fn bench_il(c: &mut Criterion) {
    let data = dataset(1);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let extvp = store.engine(true);
    let vp = store.engine(false);
    let mut rng = StdRng::seed_from_u64(11);

    let mut group = c.benchmark_group("table5_il");
    group.sample_size(10);
    for template in &Workload::incremental_linear().templates {
        let query = template.instantiate(&data, &mut rng);
        group.bench_function(format!("{}/extvp", template.name), |b| {
            b.iter(|| extvp.query(&query).unwrap())
        });
        group.bench_function(format!("{}/vp", template.name), |b| {
            b.iter(|| vp.query(&query).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_il);
criterion_main!(benches);
