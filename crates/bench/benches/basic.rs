//! Criterion bench for paper Table 4 / Fig. 14: Basic Testing queries on
//! the in-process engines (the batch engines are excluded here — their
//! simulated job latency would drown the measurement; the repro binary
//! covers them).

use criterion::{criterion_group, criterion_main, Criterion};

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::dataset;
use s2rdf_core::engines::centralized::CentralizedEngine;
use s2rdf_core::engines::property_table::PropertyTableEngine;
use s2rdf_core::engines::triples_table::TriplesTableEngine;
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

fn bench_basic(c: &mut Criterion) {
    let data = dataset(1);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let extvp = store.engine(true);
    let vp = store.engine(false);
    let tt = TriplesTableEngine::new(&data.graph);
    let pt = PropertyTableEngine::new(&data.graph);
    let central = CentralizedEngine::new(&data.graph);
    let mut rng = StdRng::seed_from_u64(7);

    let mut group = c.benchmark_group("table4_basic");
    group.sample_size(10);
    for template in &Workload::basic_testing().templates {
        let query = template.instantiate(&data, &mut rng);
        let engines: [(&str, &dyn SparqlEngine); 5] = [
            ("extvp", &extvp),
            ("vp", &vp),
            ("pt", &pt),
            ("tt", &tt),
            ("central", &central),
        ];
        for (label, engine) in engines {
            group.bench_function(format!("{}/{label}", template.name), |b| {
                b.iter(|| engine.query(&query).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_basic);
criterion_main!(benches);
