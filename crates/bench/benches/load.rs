//! Criterion bench for paper Table 2: data-load (layout construction)
//! costs — VP build, ExtVP build, and competitor layout builds.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use s2rdf_bench::dataset;
use s2rdf_core::engines::centralized::CentralizedEngine;
use s2rdf_core::engines::property_table::PropertyTableEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};

fn bench_load(c: &mut Criterion) {
    let data = dataset(1);
    let mut group = c.benchmark_group("table2_load");
    group.sample_size(10);

    group.bench_function("vp_only", |b| {
        b.iter(|| {
            S2rdfStore::build(
                &data.graph,
                &BuildOptions {
                    threshold: 1.0,
                    build_extvp: false,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("extvp_full", |b| {
        b.iter(|| S2rdfStore::build(&data.graph, &BuildOptions::default()))
    });
    group.bench_function("extvp_threshold_0_25", |b| {
        b.iter(|| {
            S2rdfStore::build(
                &data.graph,
                &BuildOptions {
                    threshold: 0.25,
                    build_extvp: true,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("property_table", |b| {
        b.iter(|| PropertyTableEngine::new(&data.graph))
    });
    group.bench_function("centralized_six_indexes", |b| {
        b.iter(|| CentralizedEngine::new(&data.graph))
    });
    group.bench_function("save_to_disk", |b| {
        let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
        let dir = std::env::temp_dir().join(format!("s2rdf-bench-save-{}", std::process::id()));
        b.iter_batched(
            || (),
            |_| store.save(&dir).unwrap(),
            BatchSize::PerIteration,
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

criterion_group!(benches, bench_load);
criterion_main!(benches);
