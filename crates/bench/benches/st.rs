//! Criterion bench for paper Table 3 / Fig. 13: Selectivity Testing,
//! ExtVP vs VP per query.

use criterion::{criterion_group, criterion_main, Criterion};

use s2rdf_bench::dataset;
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

fn bench_st(c: &mut Criterion) {
    let data = dataset(1);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let extvp = store.engine(true);
    let vp = store.engine(false);
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);

    let mut group = c.benchmark_group("table3_st");
    group.sample_size(10);
    for template in &Workload::selectivity_testing().templates {
        let query = template.instantiate(&data, &mut rng);
        group.bench_function(format!("{}/extvp", template.name), |b| {
            b.iter(|| extvp.query(&query).unwrap())
        });
        group.bench_function(format!("{}/vp", template.name), |b| {
            b.iter(|| vp.query(&query).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_st);
criterion_main!(benches);
