//! Writes `BENCH_pr3.json` — the demand-driven-storage + partition-native-
//! join artifact for the lazy-loading PR.
//!
//! Usage: `bench_pr3 [--scale 1] [--out BENCH_pr3.json]`
//!
//! Three scenarios, each with a before/after pair:
//!
//! 1. **Lazy loading** — an eager loader decodes every table body at open;
//!    the demand-driven `S2rdfStore::load` decodes manifest + TT only, and
//!    a two-predicate query then touches exactly the tables its plan
//!    selects. Recorded as `io.tables_read` before (= total table count,
//!    what eager decoding cost) vs. after load and after the query.
//! 2. **Partition-native join** — `columnar.concat.bytes_copied` must be 0
//!    across a parallel join: workers write disjoint slices of one
//!    pre-sized output instead of concatenating per-worker tables.
//! 3. **Skew-aware splitting** — the crafted 90 %-hot-key join; gauges
//!    `par_join.presplit_skew_pct` (before mitigation) vs.
//!    `par_join.{max_skew_pct,straggler_pct}` (after the hot-key
//!    broadcast), with the straggler ≤ 1.5× the median partition.
//!
//! Row/byte/table counters are deterministic; wall times directional.

use std::fmt::Write as _;
use std::time::Instant;

use s2rdf_bench::{dataset, Args};
use s2rdf_columnar::exec::{par_natural_join, row_multiset};
use s2rdf_columnar::ops::natural_join;
use s2rdf_columnar::{metrics, Schema, Table, TableStore};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::{BuildOptions, S2rdfStore};

const WSDBM: &str = "http://db.uwaterloo.ca/~galuc/wsdbm/";

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get("scale", 1);
    let out_path: String = args.get("out", "BENCH_pr3.json".to_string());
    metrics::set_enabled(true);

    // ---- Scenario 1: demand-driven loading --------------------------------
    eprintln!("generating SF{scale}, building and saving the store…");
    let data = dataset(scale);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let dir = std::env::temp_dir().join(format!("s2rdf-bench-pr3-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    store.save(&dir).expect("save store");

    // What an eager loader would decode at open time: every table body.
    let total_tables = TableStore::open(dir.join("tables"))
        .expect("open saved tables")
        .names()
        .len();

    metrics::reset();
    let load_start = Instant::now();
    let loaded = S2rdfStore::load(&dir).expect("load store");
    let load_ms = load_start.elapsed().as_secs_f64() * 1e3;
    let reads_after_load = metrics::counter("columnar.io.tables_read").get();

    let query = format!("SELECT * WHERE {{ ?x <{WSDBM}follows> ?y . ?y <{WSDBM}likes> ?z }}");
    let engine = loaded.engine(true);
    let options = QueryOptions {
        profile: true,
        ..Default::default()
    };
    let query_start = Instant::now();
    let (solutions, explain) = engine
        .query_opt(&query, &options)
        .expect("2-predicate query");
    let query_ms = query_start.elapsed().as_secs_f64() * 1e3;
    let reads_after_query = metrics::counter("columnar.io.tables_read").get();
    let planned: Vec<String> = explain.bgp_steps.iter().map(|s| s.table.clone()).collect();
    // Bound: TT (decoded at load) + one body per compiler-selected table.
    let bound = reads_after_load + planned.len() as u64;
    assert!(
        reads_after_query <= bound,
        "lazy load read {reads_after_query} bodies, plan only names {bound}"
    );
    eprintln!(
        "lazy load: {total_tables} tables on disk, {reads_after_load} decoded at load, \
         {reads_after_query} after the 2-predicate query ({} rows)",
        solutions.len()
    );
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Scenario 2: zero-copy partition-native join ----------------------
    const ROWS: u32 = 200_000;
    let left = Table::from_columns(
        Schema::new(["k", "a"]),
        vec![(0..ROWS).map(|x| x % 4096).collect(), (0..ROWS).collect()],
    );
    let right = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![(0..ROWS).collect(), (0..ROWS).map(|x| x ^ 1).collect()],
    );
    metrics::reset();
    let join_start = Instant::now();
    let joined = par_natural_join(&left, &right, 8);
    let par_join_ms = join_start.elapsed().as_secs_f64() * 1e3;
    let concat_bytes = metrics::counter("columnar.concat.bytes_copied").get();
    assert_eq!(
        concat_bytes, 0,
        "partition-native join path copied bytes via concat"
    );
    eprintln!(
        "par join: {} rows out in {par_join_ms:.1} ms, concat.bytes_copied = {concat_bytes}",
        joined.num_rows()
    );

    // ---- Scenario 3: 90 %-hot-key skew ------------------------------------
    // 90 % of the 20k probe rows and 90 % of the 2k build rows share one
    // key: ~32M output rows concentrated in a single hash bucket.
    let skew_left = Table::from_columns(
        Schema::new(["k", "a"]),
        cols2(&skewed_rows(20_000, 42, 90, 0x5EED)),
    );
    let skew_right = Table::from_columns(
        Schema::new(["k", "b"]),
        cols2(&skewed_rows(2_000, 42, 90, 0xF00D)),
    );
    metrics::reset();
    let skew_start = Instant::now();
    let skew_joined = par_natural_join(&skew_left, &skew_right, 8);
    let skew_ms = skew_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        row_multiset(&skew_joined),
        row_multiset(&natural_join(&skew_left, &skew_right)),
        "skewed parallel join diverged from the serial join"
    );
    let presplit = metrics::gauge("columnar.par_join.presplit_skew_pct").get();
    let max_skew = metrics::gauge("columnar.par_join.max_skew_pct").get();
    let straggler = metrics::gauge("columnar.par_join.straggler_pct").get();
    assert!(
        straggler <= 150,
        "straggler partition at {straggler}% of median exceeds the 1.5x bound"
    );
    eprintln!(
        "skew join: presplit {presplit}% -> max_skew {max_skew}%, straggler {straggler}% \
         of median ({} rows in {skew_ms:.1} ms)",
        skew_joined.num_rows()
    );
    let registry = metrics::snapshot().to_json();

    // ---- Artifact ---------------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(doc, "  \"artifact\": \"BENCH_pr3\",");
    let _ = writeln!(doc, "  \"scale\": {scale},");
    let _ = writeln!(doc, "  \"triples\": {},", data.graph.len());
    let _ = writeln!(doc, "  \"lazy_loading\": {{");
    let _ = writeln!(doc, "    \"query\": \"{}\",", metrics::json_escape(&query));
    let _ = writeln!(doc, "    \"tables_on_disk\": {total_tables},");
    let _ = writeln!(doc, "    \"eager_tables_read_before\": {total_tables},");
    let _ = writeln!(doc, "    \"tables_read_after_load\": {reads_after_load},");
    let _ = writeln!(doc, "    \"tables_read_after_query\": {reads_after_query},");
    let _ = writeln!(
        doc,
        "    \"planned_tables\": [{}],",
        planned
            .iter()
            .map(|t| format!("\"{}\"", metrics::json_escape(t)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(doc, "    \"result_rows\": {},", solutions.len());
    let _ = writeln!(doc, "    \"load_ms\": {load_ms:.3},");
    let _ = writeln!(doc, "    \"query_ms\": {query_ms:.3}");
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"par_join\": {{");
    let _ = writeln!(
        doc,
        "    \"rows_left\": {ROWS}, \"rows_right\": {ROWS}, \"partitions\": 8,"
    );
    let _ = writeln!(doc, "    \"rows_out\": {},", joined.num_rows());
    let _ = writeln!(doc, "    \"concat_bytes_copied\": {concat_bytes},");
    let _ = writeln!(doc, "    \"wall_ms\": {par_join_ms:.3}");
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"skew_join\": {{");
    let _ = writeln!(doc, "    \"hot_key_pct\": 90, \"partitions\": 8,");
    let _ = writeln!(doc, "    \"presplit_skew_pct_before\": {presplit},");
    let _ = writeln!(doc, "    \"max_skew_pct_after\": {max_skew},");
    let _ = writeln!(doc, "    \"straggler_pct_of_median\": {straggler},");
    let _ = writeln!(doc, "    \"straggler_bound_pct\": 150,");
    let _ = writeln!(doc, "    \"rows_out\": {},", skew_joined.num_rows());
    let _ = writeln!(doc, "    \"wall_ms\": {skew_ms:.3}");
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"operator_metrics\": {registry}");
    doc.push_str("}\n");

    std::fs::write(&out_path, doc).expect("write BENCH_pr3 artifact");
    eprintln!("wrote {out_path}");
}

/// Deterministic xorshift rows with `skew_pct`% of keys pinned to
/// `hot_key` — the straggler shape a hash splitter alone cannot balance.
fn skewed_rows(n: usize, hot_key: u32, skew_pct: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = if (state >> 33) as u32 % 100 < skew_pct {
                hot_key
            } else {
                (state >> 11) as u32 % 64
            };
            (key, i as u32)
        })
        .collect()
}

fn cols2(rows: &[(u32, u32)]) -> Vec<Vec<u32>> {
    vec![
        rows.iter().map(|r| r.0).collect(),
        rows.iter().map(|r| r.1).collect(),
    ]
}
