//! Writes `BENCH_pr2.json` — the operator-level benchmark baseline that the
//! perf trajectory is measured against.
//!
//! Usage: `bench_baseline [--scale 1] [--instances 2] [--out BENCH_pr2.json]`
//!
//! The artifact records, for a fixed-seed WatDiv Basic Testing workload on
//! the S2RDF (ExtVP) engine:
//!
//! * per-query wall time, result cardinality, join-comparison count and
//!   per-step scan breakdown (table, rows, SF, wall µs, selection
//!   rationale),
//! * the global operator-metrics registry after the workload (join/scan
//!   row counters, I/O bytes, latency histograms),
//! * a join micro-benchmark run twice — metrics disabled and enabled — so
//!   the overhead of the observability layer itself is part of the record.
//!
//! Everything is deterministic except wall times; comparisons across PRs
//! should look at row/byte counters first and at times only directionally.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::{dataset, Args};
use s2rdf_columnar::exec::natural_join_auto;
use s2rdf_columnar::{metrics, Schema, Table};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get("scale", 1);
    let instances: usize = args.get("instances", 2);
    let out_path: String = args.get("out", "BENCH_pr2.json".to_string());

    eprintln!("generating SF{scale} and building the S2RDF store…");
    let data = dataset(scale);

    metrics::set_enabled(true);
    metrics::reset();
    let build_start = Instant::now();
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let engine = store.engine(true);

    let mut rng = StdRng::seed_from_u64(7);
    let mut query_entries: Vec<String> = Vec::new();
    for template in &Workload::basic_testing().templates {
        for instance in 0..instances {
            let q = template.instantiate(&data, &mut rng);
            // Untimed warm-up absorbs first-touch allocator noise.
            let _ = engine.query_opt(&q, &QueryOptions::default());
            let options = QueryOptions {
                profile: true,
                ..Default::default()
            };
            let start = Instant::now();
            let entry = match engine.query_opt(&q, &options) {
                Ok((solutions, explain)) => {
                    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                    let mut steps = String::new();
                    for (i, s) in explain.bgp_steps.iter().enumerate() {
                        if i > 0 {
                            steps.push_str(", ");
                        }
                        let _ = write!(
                            steps,
                            "{{\"table\": \"{}\", \"rows\": {}, \"sf\": {:.4}, \
                             \"wall_micros\": {}, \"rationale\": \"{}\"}}",
                            metrics::json_escape(&s.table),
                            s.rows,
                            s.sf,
                            s.wall_micros,
                            metrics::json_escape(&s.rationale)
                        );
                    }
                    format!(
                        "{{\"query\": \"{}\", \"instance\": {instance}, \
                         \"wall_ms\": {wall_ms:.3}, \"rows\": {}, \
                         \"join_comparisons\": {}, \"steps\": [{steps}]}}",
                        template.name,
                        solutions.len(),
                        explain.naive_join_comparisons
                    )
                }
                Err(e) => format!(
                    "{{\"query\": \"{}\", \"instance\": {instance}, \
                     \"error\": \"{}\"}}",
                    template.name,
                    metrics::json_escape(&e.to_string())
                ),
            };
            query_entries.push(entry);
        }
    }
    let registry = metrics::snapshot().to_json();

    // Join micro-benchmark: the same hash join with the metrics gate off
    // and on. The disabled run is the number the <5%-overhead acceptance
    // bar applies to; the ratio documents the cost of enabling.
    let disabled_ms = join_microbench(false);
    let enabled_ms = join_microbench(true);
    let overhead_pct = (enabled_ms / disabled_ms - 1.0) * 100.0;
    eprintln!(
        "join microbench: disabled {disabled_ms:.2} ms, enabled {enabled_ms:.2} ms \
         ({overhead_pct:+.1}% with metrics on)"
    );

    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(doc, "  \"artifact\": \"BENCH_pr2\",");
    let _ = writeln!(doc, "  \"workload\": \"watdiv-basic-testing\",");
    let _ = writeln!(doc, "  \"scale\": {scale},");
    let _ = writeln!(doc, "  \"instances\": {instances},");
    let _ = writeln!(
        doc,
        "  \"engine\": \"{}\",",
        metrics::json_escape(&engine.name())
    );
    let _ = writeln!(doc, "  \"triples\": {},", data.graph.len());
    let _ = writeln!(doc, "  \"store_build_ms\": {build_ms:.1},");
    let _ = writeln!(doc, "  \"extvp_partitions\": {},", store.num_extvp_tables());
    let _ = writeln!(
        doc,
        "  \"join_microbench\": {{\"metrics_disabled_ms\": {disabled_ms:.3}, \
         \"metrics_enabled_ms\": {enabled_ms:.3}, \"overhead_pct\": {overhead_pct:.2}}},"
    );
    let _ = writeln!(doc, "  \"queries\": [");
    for (i, entry) in query_entries.iter().enumerate() {
        let comma = if i + 1 < query_entries.len() { "," } else { "" };
        let _ = writeln!(doc, "    {entry}{comma}");
    }
    let _ = writeln!(doc, "  ],");
    let _ = writeln!(doc, "  \"operator_metrics\": {registry}");
    doc.push_str("}\n");

    std::fs::write(&out_path, doc).expect("write baseline artifact");
    eprintln!("wrote {out_path}");
}

/// Times a fixed synthetic hash join (1 iteration warm-up + 5 timed) with
/// the metrics gate set as given; returns the mean per-join milliseconds.
fn join_microbench(enable_metrics: bool) -> f64 {
    const ROWS: u32 = 200_000;
    let left = Table::from_columns(
        Schema::new(["k", "a"]),
        vec![(0..ROWS).collect(), (0..ROWS).map(|x| x ^ 1).collect()],
    );
    let right = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![(0..ROWS).map(|x| x / 2).collect(), (0..ROWS).collect()],
    );
    metrics::set_enabled(enable_metrics);
    let mut total = 0.0;
    let mut rows = 0usize;
    for i in 0..6 {
        let start = Instant::now();
        let joined = natural_join_auto(&left, &right);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        rows = joined.num_rows();
        if i > 0 {
            total += elapsed;
        }
    }
    metrics::set_enabled(true);
    // Keys 0..ROWS/2 appear twice on the right, once on the left.
    assert_eq!(rows, ROWS as usize);
    total / 5.0
}
