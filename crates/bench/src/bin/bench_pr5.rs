//! Writes `BENCH_pr5.json` — the adaptive-join-planner artifact.
//!
//! Usage: `bench_pr5 [--scale 1] [--out BENCH_pr5.json] [--baseline BENCH_pr3.json]`
//!
//! Four scenarios:
//!
//! 1. **Broadcast vs partitioned** — a small build side joined against a
//!    large probe side; the broadcast-hash path must beat the partitioned
//!    path (it skips the hash split of both inputs entirely), and the
//!    planner must pick it from the default thresholds.
//! 2. **Adaptive partition count** — sweep fixed partition counts, then
//!    run the cardinality-derived count from [`adaptive_partitions`]; the
//!    derived count must land within tolerance of the best fixed count.
//! 3. **Skew** — the 90 %-hot-key join from BENCH_pr3, now through the
//!    adaptive planner with runtime re-splitting; the post-mitigation
//!    straggler must stay ≤ 1.5× the median partition.
//! 4. **PR-3 comparable** — the exact BENCH_pr3 `par_join` workload, old
//!    fixed-count path vs the adaptive planner. With `--baseline`, the new
//!    medians are diffed against the committed BENCH_pr3 wall times and the
//!    run fails on a >20 % regression (plus a 25 ms absolute floor, so
//!    micro-workload jitter cannot fail the gate).
//!
//! Wall times are medians of 3 runs; counters are deterministic.

use std::fmt::Write as _;
use std::time::Instant;

use s2rdf_bench::{dataset, Args};
use s2rdf_columnar::exec::{
    adaptive_partitions, broadcast_natural_join, default_parallelism, natural_join_adaptive,
    par_natural_join, partitioned_natural_join, JoinConfig, JoinStrategy,
};
use s2rdf_columnar::{metrics, Schema, Table};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};

const WSDBM: &str = "http://db.uwaterloo.ca/~galuc/wsdbm/";

/// Regression tolerance against the committed baseline: 20 % relative plus
/// a 25 ms absolute floor.
const BASELINE_REL_PCT: f64 = 20.0;
const BASELINE_ABS_FLOOR_MS: f64 = 25.0;

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get("scale", 1);
    let out_path: String = args.get("out", "BENCH_pr5.json".to_string());
    let baseline_path: String = args.get("baseline", String::new());
    metrics::set_enabled(true);

    // ---- Scenario 1: broadcast vs partitioned on a small build side ------
    const BUILD_ROWS: u32 = 4_096;
    const PROBE_ROWS: u32 = 600_000;
    let build = Table::from_columns(
        Schema::new(["k", "a"]),
        vec![(0..BUILD_ROWS).collect(), (0..BUILD_ROWS).collect()],
    );
    let probe = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![
            (0..PROBE_ROWS).map(|x| x % BUILD_ROWS).collect(),
            (0..PROBE_ROWS).collect(),
        ],
    );
    let parts = default_parallelism().clamp(2, 8);
    let cfg = JoinConfig::default();
    let (bcast_ms, bcast_rows) =
        median3(|| broadcast_natural_join(&build, &probe, parts).num_rows());
    let (parted_ms, parted_rows) = median3(|| {
        partitioned_natural_join(&build, &probe, parts, &cfg)
            .0
            .num_rows()
    });
    assert_eq!(
        bcast_rows, parted_rows,
        "broadcast and partitioned joins disagree"
    );
    let (_, planner) = natural_join_adaptive(&build, &probe, &cfg);
    assert_eq!(
        planner.strategy,
        JoinStrategy::Broadcast,
        "planner must broadcast a {BUILD_ROWS}-row build side under default thresholds"
    );
    // Directional bound with slack for CI timer noise.
    assert!(
        bcast_ms <= parted_ms * 1.2,
        "broadcast ({bcast_ms:.1} ms) not faster than partitioned ({parted_ms:.1} ms) \
         on a small build side"
    );
    eprintln!(
        "broadcast vs partitioned: {bcast_ms:.1} ms vs {parted_ms:.1} ms \
         ({bcast_rows} rows, {parts} parts, planner chose {})",
        planner.strategy
    );

    // ---- Scenario 2: cardinality-derived partition count ------------------
    const SWEEP_PROBE: u32 = 786_432; // 48 × 16384-row targets
    const SWEEP_KEYS: u32 = 65_536; // build side too big to broadcast
    let sweep_build = Table::from_columns(
        Schema::new(["k", "a"]),
        vec![(0..SWEEP_KEYS).collect(), (0..SWEEP_KEYS).collect()],
    );
    let sweep_probe = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![
            (0..SWEEP_PROBE).map(|x| x % SWEEP_KEYS).collect(),
            (0..SWEEP_PROBE).collect(),
        ],
    );
    // Benches pin the executor width (as BENCH_pr3 pinned 8 partitions) so
    // wall times stay comparable across runners; the CLI default instead
    // caps at the local core count.
    let pinned_cfg = JoinConfig {
        max_partitions: 8,
        ..cfg
    };
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    for fixed in [1usize, 2, 4, 8, 16] {
        let (ms, _) = median3(|| {
            partitioned_natural_join(&sweep_build, &sweep_probe, fixed, &cfg)
                .0
                .num_rows()
        });
        sweep.push((fixed, ms));
    }
    let derived = adaptive_partitions(sweep_probe.num_rows(), &pinned_cfg);
    let (adaptive_ms, _) = median3(|| {
        partitioned_natural_join(&sweep_build, &sweep_probe, derived, &cfg)
            .0
            .num_rows()
    });
    let &(best_parts, best_ms) = sweep
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
        .expect("non-empty sweep");
    let ratio_pct = adaptive_ms / best_ms * 100.0;
    // Target is within 10 % of the best fixed count; asserted with extra
    // headroom (plus a 5 ms floor) so shared-runner jitter cannot flake.
    assert!(
        adaptive_ms <= best_ms * 1.25 + 5.0,
        "adaptive partition count {derived} ({adaptive_ms:.1} ms) too far from best \
         fixed count {best_parts} ({best_ms:.1} ms)"
    );
    eprintln!(
        "partition sweep: best fixed {best_parts} parts at {best_ms:.1} ms; \
         adaptive picked {derived} parts at {adaptive_ms:.1} ms ({ratio_pct:.0}% of best)"
    );

    // ---- Scenario 3: 90 %-hot-key skew through the adaptive planner -------
    let skew_left = Table::from_columns(
        Schema::new(["k", "a"]),
        cols2(&skewed_rows(20_000, 42, 90, 0x5EED)),
    );
    let skew_right = Table::from_columns(
        Schema::new(["k", "b"]),
        cols2(&skewed_rows(2_000, 42, 90, 0xF00D)),
    );
    let skew_cfg = JoinConfig {
        serial_row_threshold: 0,
        broadcast_rows: 0,
        broadcast_bytes: 0,
        target_partition_rows: 2_500, // 20k probe rows → 8 partitions
        max_partitions: 8,
        ..JoinConfig::default()
    };
    metrics::reset();
    let mut skew_decision = None;
    let (skew_ms, skew_out_rows) = median3(|| {
        let (out, decision) = natural_join_adaptive(&skew_left, &skew_right, &skew_cfg);
        skew_decision = Some(decision);
        out.num_rows()
    });
    let skew_decision = skew_decision.expect("median3 ran");
    let presplit = metrics::gauge("columnar.par_join.presplit_skew_pct").get();
    let straggler = metrics::gauge("columnar.par_join.straggler_pct").get();
    assert!(
        straggler <= 150,
        "straggler partition at {straggler}% of median exceeds the 1.5x bound"
    );
    eprintln!(
        "skew join: presplit {presplit}% -> straggler {straggler}% of median, \
         {} resplits [{}] in {skew_ms:.1} ms",
        skew_decision.resplits,
        skew_decision.summary()
    );

    // ---- Scenario 4: the BENCH_pr3 par_join workload, old vs adaptive -----
    const ROWS: u32 = 200_000;
    let left = Table::from_columns(
        Schema::new(["k", "a"]),
        vec![(0..ROWS).map(|x| x % 4096).collect(), (0..ROWS).collect()],
    );
    let right = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![(0..ROWS).collect(), (0..ROWS).map(|x| x ^ 1).collect()],
    );
    let (fixed8_ms, _) = median3(|| par_natural_join(&left, &right, 8).num_rows());
    let pr3_cfg = JoinConfig {
        max_partitions: 8,
        ..cfg
    };
    let (planned_ms, _) = median3(|| natural_join_adaptive(&left, &right, &pr3_cfg).0.num_rows());
    eprintln!("pr3 workload: fixed-8 {fixed8_ms:.1} ms, adaptive planner {planned_ms:.1} ms");

    // ---- End-to-end: planner decisions surfaced through Explain -----------
    eprintln!("generating SF{scale} and querying through the engine…");
    let data = dataset(scale);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let engine = store.engine(true);
    // Multi-condition ORDER BY so the composite-key radix path shows up in
    // the artifact's sort metrics (`columnar.sort.{radix_calls,wall_micros}`).
    let query = format!(
        "SELECT * WHERE {{ ?x <{WSDBM}follows> ?y . ?y <{WSDBM}likes> ?z }} \
         ORDER BY ?y DESC(?x)"
    );
    let (solutions, explain) = engine
        .query_opt(&query, &Default::default())
        .expect("query");
    let decisions: Vec<String> = explain
        .join_steps
        .iter()
        .map(|j| format!("{}: {}", j.context, j.decision.summary()))
        .collect();
    assert!(
        !decisions.is_empty(),
        "engine query produced no join decisions in Explain"
    );
    let radix_calls = metrics::counter("columnar.sort.radix_calls").get();
    assert!(
        radix_calls >= 1,
        "multi-key ORDER BY did not take the radix fast path"
    );
    eprintln!(
        "query ({} rows, {radix_calls} radix sort calls): {}",
        solutions.len(),
        decisions.join("; ")
    );
    let registry = metrics::snapshot().to_json();

    // ---- Baseline diff -----------------------------------------------------
    let mut baseline_json = String::new();
    if !baseline_path.is_empty() {
        let doc = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let base_par =
            extract_wall_ms(&doc, "\"par_join\"").expect("baseline has no par_join.wall_ms");
        let base_skew =
            extract_wall_ms(&doc, "\"skew_join\"").expect("baseline has no skew_join.wall_ms");
        check_regression("par_join", planned_ms, base_par);
        check_regression("skew_join", skew_ms, base_skew);
        let _ = write!(
            baseline_json,
            "  \"baseline\": {{\n    \"path\": \"{}\",\n    \
             \"par_join_base_ms\": {base_par:.3}, \"par_join_new_ms\": {planned_ms:.3},\n    \
             \"skew_join_base_ms\": {base_skew:.3}, \"skew_join_new_ms\": {skew_ms:.3},\n    \
             \"rel_tolerance_pct\": {BASELINE_REL_PCT}, \"abs_floor_ms\": {BASELINE_ABS_FLOOR_MS}\n  }},\n",
            metrics::json_escape(&baseline_path)
        );
    }

    // ---- Artifact ----------------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(doc, "  \"artifact\": \"BENCH_pr5\",");
    let _ = writeln!(doc, "  \"scale\": {scale},");
    let _ = writeln!(doc, "  \"broadcast_vs_partitioned\": {{");
    let _ = writeln!(
        doc,
        "    \"build_rows\": {BUILD_ROWS}, \"probe_rows\": {PROBE_ROWS},"
    );
    let _ = writeln!(doc, "    \"partitions\": {parts},");
    let _ = writeln!(doc, "    \"broadcast_ms\": {bcast_ms:.3},");
    let _ = writeln!(doc, "    \"partitioned_ms\": {parted_ms:.3},");
    let _ = writeln!(doc, "    \"rows_out\": {bcast_rows},");
    let _ = writeln!(doc, "    \"planner_strategy\": \"{}\"", planner.strategy);
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"adaptive_partitions\": {{");
    let _ = writeln!(
        doc,
        "    \"probe_rows\": {SWEEP_PROBE}, \"build_rows\": {SWEEP_KEYS},"
    );
    let _ = writeln!(
        doc,
        "    \"fixed_sweep\": [{}],",
        sweep
            .iter()
            .map(|(p, ms)| format!("{{\"parts\": {p}, \"ms\": {ms:.3}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        doc,
        "    \"best_fixed_parts\": {best_parts}, \"best_fixed_ms\": {best_ms:.3},"
    );
    let _ = writeln!(
        doc,
        "    \"adaptive_parts\": {derived}, \"adaptive_ms\": {adaptive_ms:.3},"
    );
    let _ = writeln!(doc, "    \"pct_of_best\": {ratio_pct:.1}");
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"skew_join\": {{");
    let _ = writeln!(
        doc,
        "    \"hot_key_pct\": 90, \"partitions\": {},",
        skew_decision.partitions
    );
    let _ = writeln!(doc, "    \"presplit_skew_pct_before\": {presplit},");
    let _ = writeln!(doc, "    \"straggler_pct_of_median\": {straggler},");
    let _ = writeln!(doc, "    \"straggler_bound_pct\": 150,");
    let _ = writeln!(doc, "    \"resplits\": {},", skew_decision.resplits);
    let _ = writeln!(doc, "    \"rows_out\": {skew_out_rows},");
    let _ = writeln!(doc, "    \"wall_ms\": {skew_ms:.3}");
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"par_join\": {{");
    let _ = writeln!(doc, "    \"rows_left\": {ROWS}, \"rows_right\": {ROWS},");
    let _ = writeln!(doc, "    \"fixed8_ms\": {fixed8_ms:.3},");
    let _ = writeln!(doc, "    \"wall_ms\": {planned_ms:.3}");
    let _ = writeln!(doc, "  }},");
    doc.push_str(&baseline_json);
    let _ = writeln!(
        doc,
        "  \"query_decisions\": [{}],",
        decisions
            .iter()
            .map(|d| format!("\"{}\"", metrics::json_escape(d)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(doc, "  \"operator_metrics\": {registry}");
    doc.push_str("}\n");

    std::fs::write(&out_path, doc).expect("write BENCH_pr5 artifact");
    eprintln!("wrote {out_path}");
}

/// Fails the run when `new_ms` regresses past the relative tolerance plus
/// the absolute floor.
fn check_regression(name: &str, new_ms: f64, base_ms: f64) {
    let bound = base_ms * (1.0 + BASELINE_REL_PCT / 100.0) + BASELINE_ABS_FLOOR_MS;
    assert!(
        new_ms <= bound,
        "{name} regressed: {new_ms:.1} ms vs baseline {base_ms:.1} ms \
         (bound {bound:.1} ms = +{BASELINE_REL_PCT}% +{BASELINE_ABS_FLOOR_MS} ms)"
    );
    eprintln!("baseline {name}: {new_ms:.1} ms vs {base_ms:.1} ms (bound {bound:.1} ms) — ok");
}

/// Extracts `"wall_ms": <number>` from the named JSON section of a
/// BENCH_pr3-style artifact (both artifacts are written by this crate, so
/// a positional scan is reliable).
fn extract_wall_ms(doc: &str, section: &str) -> Option<f64> {
    let start = doc.find(section)?;
    let tail = &doc[start..];
    let key = tail.find("\"wall_ms\": ")?;
    let num = &tail[key + "\"wall_ms\": ".len()..];
    let end = num.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    num[..end].parse().ok()
}

/// Median-of-3 wall time in milliseconds; returns the last run's row count.
fn median3(mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(3);
    let mut rows = 0;
    for _ in 0..3 {
        let start = Instant::now();
        rows = run();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[1], rows)
}

/// Deterministic xorshift rows with `skew_pct`% of keys pinned to
/// `hot_key` — identical to the BENCH_pr3 generator so the skew scenarios
/// stay comparable.
fn skewed_rows(n: usize, hot_key: u32, skew_pct: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = if (state >> 33) as u32 % 100 < skew_pct {
                hot_key
            } else {
                (state >> 11) as u32 % 64
            };
            (key, i as u32)
        })
        .collect()
}

fn cols2(rows: &[(u32, u32)]) -> Vec<Vec<u32>> {
    vec![
        rows.iter().map(|r| r.0).collect(),
        rows.iter().map(|r| r.1).collect(),
    ]
}
