//! Reproduces **Table 3 / Fig. 13**: the Selectivity Testing workload,
//! comparing S2RDF on ExtVP against S2RDF on VP.
//!
//! Usage: `repro_table3_st [--scale 2] [--runs 3]`

use std::time::Duration;

use s2rdf_bench::{aggregate, cell, dataset, print_row, time_query, Args, Measurement};
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get("scale", 2);
    let runs: usize = args.get("runs", 3);
    let timeout = Duration::from_secs(args.get("timeout-s", 120));

    eprintln!("generating SF{scale} and building the store…");
    let data = dataset(scale);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let extvp = store.engine(true);
    let vp = store.engine(false);

    println!(
        "== Table 3 / Fig. 13: WatDiv Selectivity Testing (SF{scale}, AM of {runs} runs) ==\n"
    );
    let widths = [8usize, 12, 12, 10, 10];
    print_row(
        &[
            "query".into(),
            "ExtVP ms".into(),
            "VP ms".into(),
            "speedup".into(),
            "rows".into(),
        ],
        &widths,
    );

    let mut quicker = 0usize;
    let mut total = 0usize;
    for template in &Workload::selectivity_testing().templates {
        // ST queries take no mappings; instantiate just adds prefixes.
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let query = template.instantiate(&data, &mut rng);

        // One untimed warm-up per engine: the preceding query may leave
        // the allocator digesting multi-million-row results, which would
        // otherwise be billed to whichever engine runs first.
        let _ = time_query(&extvp, &query, timeout);
        let _ = time_query(&vp, &query, timeout);
        let ext: Vec<Measurement> = (0..runs)
            .map(|_| time_query(&extvp, &query, timeout))
            .collect();
        let base: Vec<Measurement> = (0..runs)
            .map(|_| time_query(&vp, &query, timeout))
            .collect();
        let rows = match ext[0] {
            Measurement::Ok(_, n) => n.to_string(),
            _ => "-".into(),
        };
        let (e, b) = (aggregate(&ext), aggregate(&base));
        let speedup = match (e, b) {
            (Some(e), Some(b)) if e > 0.0 => format!("{:.2}x", b / e),
            _ => "-".into(),
        };
        if let (Some(e), Some(b)) = (e, b) {
            total += 1;
            if e <= b {
                quicker += 1;
            }
        }
        print_row(
            &[template.name.into(), cell(e), cell(b), speedup, rows],
            &widths,
        );
    }
    println!("\nExtVP was at least as fast as VP on {quicker}/{total} ST queries.");
    println!("Expected shape (paper §7.1): speedups grow as the ExtVP table's SF");
    println!("shrinks (ST-x-3 > ST-x-2 > ST-x-1), and ST-8-x answers from statistics");
    println!("alone (ExtVP ≈ 0 ms regardless of the VP-side join cost).");
}
