//! Reproduces **Table 2**: WatDiv load times and store sizes for S2RDF
//! VP/ExtVP and the competitor layouts, across scale factors.
//!
//! Usage: `repro_table2 [--scales 1,2,3]`

use std::time::Instant;

use s2rdf_bench::{dataset, print_row, Args};
use s2rdf_core::engines::centralized::CentralizedEngine;
use s2rdf_core::engines::property_table::PropertyTableEngine;
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_model::ntriples;

fn main() {
    let args = Args::parse();
    let scales: Vec<u32> = args
        .get("scales", "1,2,3".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    println!("== Table 2: load times and store sizes (laptop-scaled) ==");
    println!("paper: SF10..SF10000 on a 10-node cluster; here: SF{scales:?} on one machine\n");

    let header: Vec<String> = std::iter::once("metric".to_string())
        .chain(scales.iter().map(|s| format!("SF{s}")))
        .collect();
    let widths: Vec<usize> = std::iter::once(34usize)
        .chain(scales.iter().map(|_| 14usize))
        .collect();

    let mut rows: Vec<Vec<String>> = vec![
        vec!["tuples: original (|G|)".into()],
        vec!["tuples: VP".into()],
        vec!["tuples: ExtVP (0<SF<1)".into()],
        vec!["size: original N-Triples".into()],
        vec!["size: VP".into()],
        vec!["size: ExtVP".into()],
        vec!["size: TT (batch engines)".into()],
        vec!["size: Centralized (6 indexes)".into()],
        vec!["load: VP".into()],
        vec!["load: ExtVP (incl. VP)".into()],
        vec!["load: PropertyTable".into()],
        vec!["load: Centralized".into()],
        vec!["tables: VP".into()],
        vec!["tables: ExtVP".into()],
        vec!["tables: total".into()],
        vec!["ExtVP tables SF=1 (not stored)".into()],
        vec!["ExtVP empty pairs (stats only)".into()],
    ];

    for &scale in &scales {
        eprintln!("generating SF{scale}…");
        let data = dataset(scale);
        let n = data.graph.len();

        // Original N-Triples size.
        let mut nt = Vec::new();
        ntriples::write_graph(&data.graph, &mut nt).expect("serialize N-Triples");

        // VP-only build (paper's "load VP" row).
        let vp_start = Instant::now();
        let vp_store = S2rdfStore::build(
            &data.graph,
            &BuildOptions {
                threshold: 1.0,
                build_extvp: false,
                ..Default::default()
            },
        );
        let vp_time = vp_start.elapsed();

        // Full ExtVP build.
        let ext_start = Instant::now();
        let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
        let ext_time = ext_start.elapsed();

        // Competitor layouts.
        let pt_start = Instant::now();
        let _pt = PropertyTableEngine::new(&data.graph);
        let pt_time = pt_start.elapsed();
        let cz_start = Instant::now();
        let central = CentralizedEngine::new(&data.graph);
        let cz_time = cz_start.elapsed();

        // Persisted sizes.
        let dir = std::env::temp_dir().join(format!("s2rdf-table2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store.save(&dir).expect("save store");
        let (tt_size, vp_size, extvp_size) = S2rdfStore::disk_sizes(&dir).expect("disk sizes");
        let _ = std::fs::remove_dir_all(&dir);

        let summary = store.catalog().extvp_summary();
        let num_preds = store.catalog().num_predicates();
        // Empty pairs = all possible SS/OS/SO pairs minus recorded ones.
        let possible = num_preds * (num_preds - 1) + 2 * num_preds * num_preds;
        let recorded = store.catalog().extvp_stats().count();

        let mb = |bytes: u64| format!("{:.1} MB", bytes as f64 / 1e6);
        let secs = |d: std::time::Duration| format!("{:.2} s", d.as_secs_f64());
        let cells = [
            format!("{n}"),
            format!("{}", store.vp_tuples()),
            format!("{}", store.extvp_tuples()),
            mb(nt.len() as u64),
            mb(vp_size),
            mb(extvp_size + vp_size),
            mb(tt_size),
            format!("{} entries", central.index_entries()),
            secs(vp_time),
            secs(ext_time),
            secs(pt_time),
            secs(cz_time),
            format!("{num_preds}"),
            format!("{}", store.num_extvp_tables()),
            format!("{}", num_preds + store.num_extvp_tables()),
            format!("{}", summary.sf_one_tables),
            format!("{}", possible - recorded),
        ];
        for (row, cell) in rows.iter_mut().zip(cells) {
            row.push(cell);
        }
        let _ = vp_store; // built only for its load time
    }

    print_row(&header, &widths);
    for row in &rows {
        let mut cells = row.clone();
        let name = cells.remove(0);
        let mut all = vec![name];
        all.extend(cells);
        print_row(&all, &widths);
    }
    println!("\nExtVP/VP tuple ratio should sit near the paper's ~11x (no threshold),");
    println!("and >90% of possible ExtVP tables should be empty or SF=1 (paper §5.3).");
}
