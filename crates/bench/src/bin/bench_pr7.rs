//! Writes `BENCH_pr7.json` — the cost-based join-order planner artifact.
//!
//! Usage: `bench_pr7 [--scale 1] [--out BENCH_pr7.json] [--baseline BENCH_pr5.json]`
//!
//! Four scenarios:
//!
//! 1. **Join-order workload** — every Incremental Linear template (Fig. 12
//!    / §7.3 shape) instantiated once, plus crafted queries whose greedy
//!    order is provably suboptimal, each run through the ExtVP engine with
//!    greedy ordering (`--dp-max-patterns 0`) and with the DP planner
//!    (default). Results must agree; DP must differ from greedy on at
//!    least one query without doing more naive join comparisons on it,
//!    and must not do more total comparisons across the workload.
//! 2. **Mid-query re-planning** — a star query whose bound-constant first
//!    scan is underestimated 10× by the `size × 0.1` heuristic; with an
//!    aggressive threshold the AQE loop must fire and preserve the result
//!    multiset against a run with re-planning disabled.
//! 3. **Cost-model calibration** — the `(build, probe, out, wall)` samples
//!    collected from every join of scenario 1 are fed to
//!    [`CostModel::calibrate`]; the fitted per-row constants are reported
//!    in the artifact.
//! 4. **PR-5 comparable** — the exact BENCH_pr5 `par_join` workload
//!    through the adaptive planner. With `--baseline`, the new median is
//!    diffed against the committed BENCH_pr5 wall time and the run fails
//!    on a >20 % regression (plus a 25 ms absolute floor).
//!
//! Wall times are medians of 3 runs; comparison counters are deterministic.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::{dataset, Args};
use s2rdf_columnar::exec::{natural_join_adaptive, JoinConfig};
use s2rdf_columnar::{metrics, Schema, Table};
use s2rdf_core::compiler::cost::{CostModel, JoinSample};
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::{Explain, QueryOptions};
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

const WSDBM: &str = "http://db.uwaterloo.ca/~galuc/wsdbm/";

/// Regression tolerance against the committed baseline: 20 % relative plus
/// a 25 ms absolute floor.
const BASELINE_REL_PCT: f64 = 20.0;
const BASELINE_ABS_FLOOR_MS: f64 = 25.0;

struct QueryResult {
    name: String,
    comparisons_greedy: u64,
    comparisons_dp: u64,
    wall_greedy_ms: f64,
    wall_dp_ms: f64,
    order_differs: bool,
}

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get("scale", 1);
    let out_path: String = args.get("out", "BENCH_pr7.json".to_string());
    let baseline_path: String = args.get("baseline", String::new());
    metrics::set_enabled(true);

    eprintln!("generating SF{scale} and building the ExtVP store…");
    let data = dataset(scale);
    let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let engine = store.engine(true);

    // ---- Scenario 1: greedy vs DP over the IL workload --------------------
    let mut rng = StdRng::seed_from_u64(11);
    let mut queries: Vec<(String, String)> = Workload::incremental_linear()
        .templates
        .iter()
        .map(|t| (t.name.to_string(), t.instantiate(&data, &mut rng)))
        .collect();
    // Crafted shapes where Algorithm 4's most-bound-first start is a trap:
    // the bound pattern sits on the biggest predicate (friendOf), while an
    // unbound chain over small predicates is far more selective.
    queries.push((
        "crafted-bound-big".to_string(),
        format!(
            "SELECT * WHERE {{ ?x <{WSDBM}friendOf> <{WSDBM}User0> . \
             ?x <{WSDBM}likes> ?p . ?q <{WSDBM}likes> ?p }}"
        ),
    ));
    queries.push((
        "crafted-bound-chain".to_string(),
        format!(
            "SELECT * WHERE {{ ?x <{WSDBM}friendOf> <{WSDBM}User3> . \
             ?x <{WSDBM}subscribes> ?w . ?v <{WSDBM}subscribes> ?w . \
             ?v <{WSDBM}likes> ?p }}"
        ),
    ));

    let greedy_opts = QueryOptions {
        dp_max_patterns: 0,
        replan_threshold: 0.0,
        ..Default::default()
    };
    let dp_opts = QueryOptions {
        replan_threshold: 0.0,
        ..Default::default()
    };
    let scan_order = |ex: &Explain| {
        ex.bgp_steps
            .iter()
            .map(|s| s.table.clone())
            .collect::<Vec<_>>()
    };

    let mut results: Vec<QueryResult> = Vec::new();
    let mut samples: Vec<JoinSample> = Vec::new();
    for (name, sparql) in &queries {
        let (wall_greedy_ms, greedy) = median3_query(&engine, sparql, &greedy_opts);
        let (wall_dp_ms, dp) = median3_query(&engine, sparql, &dp_opts);
        let (g_sol, g_ex) = greedy;
        let (d_sol, d_ex) = dp;
        assert_eq!(
            g_sol.canonical(),
            d_sol.canonical(),
            "{name}: greedy and DP orders disagree on results"
        );
        assert_eq!(g_ex.join_order_method, "greedy", "{name}");
        if !d_ex.statically_empty {
            assert_eq!(d_ex.join_order_method, "dp", "{name}");
        }
        samples.extend(d_ex.join_steps.iter().map(|j| JoinSample {
            build_rows: j.decision.build_rows,
            probe_rows: j.decision.probe_rows,
            out_rows: j.decision.out_rows,
            wall_micros: j.wall_micros,
        }));
        results.push(QueryResult {
            name: name.clone(),
            comparisons_greedy: g_ex.naive_join_comparisons,
            comparisons_dp: d_ex.naive_join_comparisons,
            wall_greedy_ms,
            wall_dp_ms,
            order_differs: scan_order(&g_ex) != scan_order(&d_ex),
        });
    }
    let orders_differ = results.iter().filter(|r| r.order_differs).count();
    let dp_wins = results
        .iter()
        .filter(|r| r.order_differs && r.comparisons_dp <= r.comparisons_greedy)
        .count();
    let total_greedy: u64 = results.iter().map(|r| r.comparisons_greedy).sum();
    let total_dp: u64 = results.iter().map(|r| r.comparisons_dp).sum();
    assert!(
        dp_wins >= 1,
        "DP never chose a different no-slower order than greedy \
         ({orders_differ} orders differ)"
    );
    assert!(
        total_dp <= total_greedy,
        "DP did more naive comparisons than greedy across the workload: \
         {total_dp} vs {total_greedy}"
    );
    eprintln!(
        "join order: {}/{} queries re-ordered by DP ({dp_wins} no-slower), \
         comparisons {total_dp} vs greedy {total_greedy}",
        orders_differ,
        results.len()
    );

    // ---- Scenario 2: AQE re-planning fires and preserves results ----------
    // The bound-constant heuristic estimates `size × 0.1` for the first
    // scan, but a single user's likes are a far smaller slice of VP_likes
    // — the observed cardinality diverges well past the threshold.
    let replan_query = format!(
        "SELECT * WHERE {{ <{WSDBM}User125> <{WSDBM}likes> ?a . \
         ?b <{WSDBM}likes> ?a . ?b <{WSDBM}follows> ?c }}"
    );
    let replan_opts = QueryOptions {
        replan_threshold: 1.5,
        ..Default::default()
    };
    let (r_sol, r_ex) = engine
        .query_opt(&replan_query, &replan_opts)
        .expect("query");
    let (r0_sol, r0_ex) = engine
        .query_opt(
            &replan_query,
            &QueryOptions {
                replan_threshold: 0.0,
                ..Default::default()
            },
        )
        .expect("query");
    assert_eq!(
        r_sol.canonical(),
        r0_sol.canonical(),
        "re-planning changed the result multiset"
    );
    assert!(r0_ex.replans.is_empty());
    assert!(
        !r_ex.replans.is_empty(),
        "the seeded mis-estimate did not trigger a re-plan at threshold {}",
        replan_opts.replan_threshold
    );
    eprintln!(
        "replan: {} re-plan(s) fired at threshold {}, {} rows unchanged",
        r_ex.replans.len(),
        replan_opts.replan_threshold,
        r_sol.len()
    );

    // ---- Scenario 3: cost-model calibration from observed joins -----------
    let fitted = CostModel::calibrate(&samples);
    eprintln!(
        "cost model: calibrated from {} joins → build {:.4}, probe {:.4}, out {:.4} µs/row",
        samples.len(),
        fitted.build_micros_per_row,
        fitted.probe_micros_per_row,
        fitted.out_micros_per_row
    );

    // ---- Scenario 4: the BENCH_pr5 par_join workload -----------------------
    const ROWS: u32 = 200_000;
    let left = Table::from_columns(
        Schema::new(["k", "a"]),
        vec![(0..ROWS).map(|x| x % 4096).collect(), (0..ROWS).collect()],
    );
    let right = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![(0..ROWS).collect(), (0..ROWS).map(|x| x ^ 1).collect()],
    );
    let pr5_cfg = JoinConfig {
        max_partitions: 8,
        ..JoinConfig::default()
    };
    let (par_ms, _) = median3(|| natural_join_adaptive(&left, &right, &pr5_cfg).0.num_rows());
    eprintln!("pr5 workload: adaptive planner {par_ms:.1} ms");

    // ---- Baseline diff -----------------------------------------------------
    let mut baseline_json = String::new();
    if !baseline_path.is_empty() {
        let doc = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let base_par =
            extract_wall_ms(&doc, "\"par_join\"").expect("baseline has no par_join.wall_ms");
        check_regression("par_join", par_ms, base_par);
        let _ = write!(
            baseline_json,
            "  \"baseline\": {{\n    \"path\": \"{}\",\n    \
             \"par_join_base_ms\": {base_par:.3}, \"par_join_new_ms\": {par_ms:.3},\n    \
             \"rel_tolerance_pct\": {BASELINE_REL_PCT}, \"abs_floor_ms\": {BASELINE_ABS_FLOOR_MS}\n  }},\n",
            metrics::json_escape(&baseline_path)
        );
    }

    // ---- Artifact ----------------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(doc, "  \"artifact\": \"BENCH_pr7\",");
    let _ = writeln!(doc, "  \"scale\": {scale},");
    let _ = writeln!(doc, "  \"join_order\": {{");
    let _ = writeln!(doc, "    \"queries\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            doc,
            "      {{\"name\": \"{}\", \"comparisons_greedy\": {}, \"comparisons_dp\": {}, \
             \"wall_greedy_ms\": {:.3}, \"wall_dp_ms\": {:.3}, \"order_differs\": {}}}{}",
            metrics::json_escape(&r.name),
            r.comparisons_greedy,
            r.comparisons_dp,
            r.wall_greedy_ms,
            r.wall_dp_ms,
            r.order_differs,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(doc, "    ],");
    let _ = writeln!(doc, "    \"orders_differ\": {orders_differ},");
    let _ = writeln!(doc, "    \"dp_no_slower_wins\": {dp_wins},");
    let _ = writeln!(
        doc,
        "    \"total_comparisons_greedy\": {total_greedy}, \"total_comparisons_dp\": {total_dp}"
    );
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"replan\": {{");
    let _ = writeln!(
        doc,
        "    \"threshold\": {}, \"replans\": {}, \"rows\": {},",
        replan_opts.replan_threshold,
        r_ex.replans.len(),
        r_sol.len()
    );
    let _ = writeln!(
        doc,
        "    \"results_unchanged\": true, \"replans_disabled_fired\": {}",
        !r0_ex.replans.is_empty()
    );
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"cost_model\": {{");
    let _ = writeln!(doc, "    \"samples\": {},", samples.len());
    let _ = writeln!(
        doc,
        "    \"build_micros_per_row\": {:.6},",
        fitted.build_micros_per_row
    );
    let _ = writeln!(
        doc,
        "    \"probe_micros_per_row\": {:.6},",
        fitted.probe_micros_per_row
    );
    let _ = writeln!(
        doc,
        "    \"out_micros_per_row\": {:.6}",
        fitted.out_micros_per_row
    );
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"par_join\": {{");
    let _ = writeln!(doc, "    \"rows_left\": {ROWS}, \"rows_right\": {ROWS},");
    let _ = writeln!(doc, "    \"wall_ms\": {par_ms:.3}");
    let _ = writeln!(doc, "  }},");
    doc.push_str(&baseline_json);
    let _ = writeln!(
        doc,
        "  \"operator_metrics\": {}",
        metrics::snapshot().to_json()
    );
    doc.push_str("}\n");

    std::fs::write(&out_path, doc).expect("write BENCH_pr7 artifact");
    eprintln!("wrote {out_path}");
}

/// Median-of-3 wall time in milliseconds for one query/options pair; the
/// solutions and explain of the last run are returned for the
/// deterministic checks.
fn median3_query(
    engine: &dyn SparqlEngine,
    sparql: &str,
    options: &QueryOptions,
) -> (
    f64,
    (s2rdf_core::exec::Solutions, s2rdf_core::exec::Explain),
) {
    let mut times = Vec::with_capacity(3);
    let mut last = None;
    for _ in 0..3 {
        let start = Instant::now();
        let out = engine.query_opt(sparql, options).expect("query");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[1], last.expect("ran"))
}

/// Fails the run when `new_ms` regresses past the relative tolerance plus
/// the absolute floor.
fn check_regression(name: &str, new_ms: f64, base_ms: f64) {
    let bound = base_ms * (1.0 + BASELINE_REL_PCT / 100.0) + BASELINE_ABS_FLOOR_MS;
    assert!(
        new_ms <= bound,
        "{name} regressed: {new_ms:.1} ms vs baseline {base_ms:.1} ms \
         (bound {bound:.1} ms = +{BASELINE_REL_PCT}% +{BASELINE_ABS_FLOOR_MS} ms)"
    );
    eprintln!("baseline {name}: {new_ms:.1} ms vs {base_ms:.1} ms (bound {bound:.1} ms) — ok");
}

/// Extracts `"wall_ms": <number>` from the named JSON section of a
/// BENCH_pr5-style artifact (both artifacts are written by this crate, so
/// a positional scan is reliable).
fn extract_wall_ms(doc: &str, section: &str) -> Option<f64> {
    let start = doc.find(section)?;
    let tail = &doc[start..];
    let key = tail.find("\"wall_ms\": ")?;
    let num = &tail[key + "\"wall_ms\": ".len()..];
    let end = num.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    num[..end].parse().ok()
}

/// Median-of-3 wall time in milliseconds; returns the last run's row count.
fn median3(mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(3);
    let mut rows = 0;
    for _ in 0..3 {
        let start = Instant::now();
        rows = run();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[1], rows)
}
