//! Reproduces **Table 4 / Fig. 14**: the WatDiv Basic Testing use case
//! across the full engine lineup, with per-category arithmetic means.
//!
//! Usage: `repro_table4_basic [--scale 1] [--instances 3] [--overhead-ms 150]
//!         [--timeout-s 60]`
//!
//! `--overhead-ms` is the simulated MapReduce job-startup latency of the
//! SHARD/PigSPARQL engines (laptop-scaled stand-in for ~30 s Hadoop jobs).

use std::collections::BTreeMap;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::{aggregate, cell, dataset, print_row, time_query, Args, Engines, Measurement};
use s2rdf_watdiv::{QueryCategory, Workload};

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get("scale", 1);
    let instances: usize = args.get("instances", 3);
    let overhead = Duration::from_millis(args.get("overhead-ms", 150));
    let timeout = Duration::from_secs(args.get("timeout-s", 60));

    eprintln!("generating SF{scale} and building all engines…");
    let data = dataset(scale);
    let engines = Engines::build(&data, overhead);
    let labels = Engines::labels();

    println!(
        "== Table 4 / Fig. 14: WatDiv Basic Testing (SF{scale}, AM over {instances} instantiations) =="
    );
    println!("(ms; F = timeout after {timeout:?})\n");

    let mut widths = vec![7usize];
    widths.extend(labels.iter().map(|l| l.len().max(9)));
    let mut header = vec!["query".to_string()];
    header.extend(labels.iter().map(|l| l.to_string()));
    print_row(&header, &widths);

    // Per (engine, category) aggregation for the AM-X rows.
    let mut per_category: BTreeMap<(usize, &'static str), Vec<f64>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(7);

    for template in &Workload::basic_testing().templates {
        let queries: Vec<String> = (0..instances)
            .map(|_| template.instantiate(&data, &mut rng))
            .collect();
        let mut row = vec![template.name.to_string()];
        let mut engine_idx = 0;
        engines.for_each(|_, engine| {
            // Untimed warm-up: the first large-output query after another
            // engine's run pays for allocator churn that is not the
            // engine's own cost.
            let _ = time_query(engine, &queries[0], timeout);
            let runs: Vec<Measurement> = queries
                .iter()
                .map(|q| time_query(engine, q, timeout))
                .collect();
            let am = aggregate(&runs);
            if let Some(ms) = am {
                per_category
                    .entry((engine_idx, category_label(template.category)))
                    .or_default()
                    .push(ms);
            }
            row.push(cell(am));
            engine_idx += 1;
        });
        print_row(&row, &widths);
    }

    println!();
    for cat in ["L", "S", "F", "C"] {
        let mut row = vec![format!("AM-{cat}")];
        for (idx, _) in labels.iter().enumerate() {
            let cell_value = per_category
                .get(&(idx, cat))
                .map(|v| v.iter().sum::<f64>() / v.len() as f64);
            row.push(cell(cell_value));
        }
        print_row(&row, &widths);
    }
    println!("\nExpected shape (paper §7.2): S2RDF ExtVP leads every category;");
    println!("Sempala-sim is closest on stars (S); the batch engines trail by the");
    println!("job latency; Virtuoso-sim wins only on highly selective lookups.");
}

fn category_label(c: QueryCategory) -> &'static str {
    c.label()
}
