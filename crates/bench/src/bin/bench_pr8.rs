//! Writes `BENCH_pr8.json` — the morsel-driven executor artifact.
//!
//! Usage: `bench_pr8 [--out BENCH_pr8.json] [--baseline BENCH_pr7.json]`
//!
//! Four scenarios:
//!
//! 1. **PR-7 comparable** — the exact BENCH_pr7 `par_join` workload
//!    (200 k × 200 k adaptive join, 8 partitions) now running on the
//!    persistent worker pool. With `--baseline`, the new median is diffed
//!    against the committed BENCH_pr7 wall time — which was produced by
//!    the scoped-thread executor — and the run fails on a >20 % regression
//!    (plus a 25 ms absolute floor). This is the pool-vs-scoped gate.
//! 2. **Morsel-size sweep** — the same join at `--morsel-rows`
//!    1 k / 4 k / 16 k / 64 k; all sizes must agree on the output count.
//! 3. **Pool vs scoped-thread microbench** — many batches of small tasks
//!    through the shared pool versus a fresh `std::thread::scope` spawn
//!    per batch, isolating the per-join thread-creation overhead the pool
//!    amortizes away.
//! 4. **Fused pipeline** — a filter→join→join chain through
//!    [`fused_filter_join`] versus the materializing plan
//!    (`select_eq` chain + serial joins). Results must agree as multisets;
//!    the fused run must elide intermediate materialization
//!    (`columnar.pipeline.bytes_elided` > 0) without copying concat bytes.
//!
//! Wall times are medians of 3 runs. Parallel speedups are NOT asserted —
//! CI and small containers may expose a single core, where the pool runs
//! inline; the correctness and materialization properties hold regardless.

use std::fmt::Write as _;
use std::time::Instant;

use s2rdf_bench::Args;
use s2rdf_columnar::exec::{natural_join_adaptive, row_multiset, JoinConfig};
use s2rdf_columnar::ops::{natural_join, select_eq};
use s2rdf_columnar::pipeline::{fused_filter_join, EqFilter};
use s2rdf_columnar::{metrics, pool, Schema, Table};

/// Regression tolerance against the committed baseline: 20 % relative plus
/// a 25 ms absolute floor.
const BASELINE_REL_PCT: f64 = 20.0;
const BASELINE_ABS_FLOOR_MS: f64 = 25.0;

fn main() {
    let args = Args::parse();
    let out_path: String = args.get("out", "BENCH_pr8.json".to_string());
    let baseline_path: String = args.get("baseline", String::new());
    metrics::set_enabled(true);

    // ---- Scenario 1: the BENCH_pr7 par_join workload on the pool ----------
    const ROWS: u32 = 200_000;
    let left = Table::from_columns(
        Schema::new(["k", "a"]),
        vec![(0..ROWS).map(|x| x % 4096).collect(), (0..ROWS).collect()],
    );
    let right = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![(0..ROWS).collect(), (0..ROWS).map(|x| x ^ 1).collect()],
    );
    let pr7_cfg = JoinConfig {
        max_partitions: 8,
        ..JoinConfig::default()
    };
    let before = pool::current().stats();
    let (par_ms, par_rows) =
        median3(|| natural_join_adaptive(&left, &right, &pr7_cfg).0.num_rows());
    let after = pool::current().stats();
    eprintln!(
        "pr7 workload: {par_ms:.1} ms on the pool ({} workers, {} tasks, {} steals)",
        after.workers,
        after.tasks.saturating_sub(before.tasks),
        after.steals.saturating_sub(before.steals),
    );

    // ---- Scenario 2: morsel-size sweep ------------------------------------
    let sweep_sizes = [1usize << 10, 1 << 12, 1 << 14, 1 << 16];
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    for &morsel_rows in &sweep_sizes {
        let cfg = JoinConfig {
            max_partitions: 8,
            morsel_rows,
            ..JoinConfig::default()
        };
        let (ms, rows) = median3(|| natural_join_adaptive(&left, &right, &cfg).0.num_rows());
        assert_eq!(
            rows, par_rows,
            "morsel size {morsel_rows} changed the output"
        );
        eprintln!("morsel sweep: {morsel_rows:>6} rows/morsel → {ms:.1} ms");
        sweep.push((morsel_rows, ms));
    }

    // ---- Scenario 3: pool vs scoped-thread spawn --------------------------
    // 200 batches × 8 small tasks: the shape of a query stream, where each
    // join used to pay thread spawn+join. The pool reuses its workers; the
    // scoped baseline pays OS thread creation per batch.
    const BATCHES: usize = 200;
    const TASKS: usize = 8;
    let work = |seed: usize| {
        let mut acc = seed as u64 | 1;
        for i in 0..2_000u64 {
            acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i;
        }
        acc
    };
    let (pool_ms, pool_sum) = median3(|| {
        let mut total = 0u64;
        for b in 0..BATCHES {
            let tasks: Vec<_> = (0..TASKS)
                .map(|t| move |_w: usize| work(b * TASKS + t))
                .collect();
            total = total.wrapping_add(pool::current().run(tasks).into_iter().sum::<u64>());
        }
        total as usize
    });
    let (scoped_ms, scoped_sum) = median3(|| {
        let mut total = 0u64;
        for b in 0..BATCHES {
            let sum: u64 = std::thread::scope(|s| {
                let handles: Vec<_> = (0..TASKS)
                    .map(|t| s.spawn(move || work(b * TASKS + t)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("task")).sum()
            });
            total = total.wrapping_add(sum);
        }
        total as usize
    });
    assert_eq!(pool_sum, scoped_sum, "pool and scoped runs disagree");
    eprintln!(
        "microbench: {BATCHES}×{TASKS} tasks — pool {pool_ms:.1} ms, \
         scoped threads {scoped_ms:.1} ms"
    );

    // ---- Scenario 4: fused filter→join→join pipeline ----------------------
    // probe(k, a, f) ⋈ dim1(k, b) ⋈ dim2(b, c) with the selection f = 3
    // pushed into the first probe.
    const P: u32 = 150_000;
    let probe = Table::from_columns(
        Schema::new(["k", "a", "f"]),
        vec![
            (0..P).map(|x| x % 1024).collect(),
            (0..P).collect(),
            (0..P).map(|x| x % 8).collect(),
        ],
    );
    let dim1 = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![
            (0..1024).collect(),
            (0..1024).map(|x| (x * 2) % 512).collect(),
        ],
    );
    let dim2 = Table::from_columns(
        Schema::new(["b", "c"]),
        vec![(0..512).collect(), (0..512).map(|x| x + 7).collect()],
    );
    let filters = [EqFilter { col: 2, value: 3 }];
    let fuse_cfg = JoinConfig::default();

    let elided_before = metrics::counter("columnar.pipeline.bytes_elided").get();
    let concat_before = metrics::counter("columnar.concat.bytes_copied").get();
    let (fused_ms, fused_rows) = median3(|| {
        let t1 = fused_filter_join(&probe, &filters, &dim1, &fuse_cfg);
        natural_join_adaptive(&t1, &dim2, &fuse_cfg).0.num_rows()
    });
    let elided = metrics::counter("columnar.pipeline.bytes_elided").get() - elided_before;
    let concat_copied = metrics::counter("columnar.concat.bytes_copied").get() - concat_before;

    let (mat_ms, mat_rows) = median3(|| {
        let filtered = select_eq(&probe, 2, 3);
        let t1 = natural_join(&filtered, &dim1);
        natural_join(&t1, &dim2).num_rows()
    });
    assert_eq!(fused_rows, mat_rows, "fused pipeline changed the row count");
    // Full multiset check once (outside timing).
    let fused_t = {
        let t1 = fused_filter_join(&probe, &filters, &dim1, &fuse_cfg);
        natural_join_adaptive(&t1, &dim2, &fuse_cfg).0
    };
    let mat_t = {
        let t1 = natural_join(&select_eq(&probe, 2, 3), &dim1);
        natural_join(&t1, &dim2)
    };
    assert_eq!(
        row_multiset(&fused_t),
        row_multiset(&mat_t),
        "fused pipeline changed the result multiset"
    );
    assert!(
        elided > 0,
        "fused pipeline elided no intermediate bytes (counter did not move)"
    );
    assert_eq!(
        concat_copied, 0,
        "fused pipeline copied {concat_copied} concat bytes; the sink must \
         write result columns in place"
    );
    eprintln!(
        "fused pipeline: {fused_ms:.1} ms vs materializing {mat_ms:.1} ms \
         ({fused_rows} rows, {elided} intermediate bytes elided)"
    );

    // ---- Baseline diff -----------------------------------------------------
    let mut baseline_json = String::new();
    if !baseline_path.is_empty() {
        let doc = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let base_par =
            extract_wall_ms(&doc, "\"par_join\"").expect("baseline has no par_join.wall_ms");
        check_regression("par_join", par_ms, base_par);
        let _ = write!(
            baseline_json,
            "  \"baseline\": {{\n    \"path\": \"{}\",\n    \
             \"par_join_base_ms\": {base_par:.3}, \"par_join_new_ms\": {par_ms:.3},\n    \
             \"rel_tolerance_pct\": {BASELINE_REL_PCT}, \"abs_floor_ms\": {BASELINE_ABS_FLOOR_MS}\n  }},\n",
            metrics::json_escape(&baseline_path)
        );
    }

    // ---- Artifact ----------------------------------------------------------
    let pool_stats = pool::current().stats();
    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(doc, "  \"artifact\": \"BENCH_pr8\",");
    let _ = writeln!(doc, "  \"par_join\": {{");
    let _ = writeln!(doc, "    \"rows_left\": {ROWS}, \"rows_right\": {ROWS},");
    let _ = writeln!(doc, "    \"wall_ms\": {par_ms:.3}");
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"morsel_sweep\": [");
    for (i, (size, ms)) in sweep.iter().enumerate() {
        let _ = writeln!(
            doc,
            "    {{\"morsel_rows\": {size}, \"wall_ms\": {ms:.3}}}{}",
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    let _ = writeln!(doc, "  ],");
    let _ = writeln!(doc, "  \"pool_vs_scoped\": {{");
    let _ = writeln!(
        doc,
        "    \"batches\": {BATCHES}, \"tasks_per_batch\": {TASKS},"
    );
    let _ = writeln!(
        doc,
        "    \"pool_wall_ms\": {pool_ms:.3}, \"scoped_wall_ms\": {scoped_ms:.3}"
    );
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"fused_pipeline\": {{");
    let _ = writeln!(doc, "    \"rows\": {fused_rows},");
    let _ = writeln!(
        doc,
        "    \"fused_wall_ms\": {fused_ms:.3}, \"materializing_wall_ms\": {mat_ms:.3},"
    );
    let _ = writeln!(
        doc,
        "    \"bytes_elided\": {elided}, \"concat_bytes_copied\": {concat_copied}"
    );
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"pool\": {{");
    let _ = writeln!(
        doc,
        "    \"workers\": {}, \"tasks\": {}, \"steals\": {}, \"max_queue_depth\": {}",
        pool_stats.workers, pool_stats.tasks, pool_stats.steals, pool_stats.max_queue_depth
    );
    let _ = writeln!(doc, "  }},");
    doc.push_str(&baseline_json);
    let _ = writeln!(
        doc,
        "  \"operator_metrics\": {}",
        metrics::snapshot().to_json()
    );
    doc.push_str("}\n");

    std::fs::write(&out_path, doc).expect("write BENCH_pr8 artifact");
    eprintln!("wrote {out_path}");
}

/// Fails the run when `new_ms` regresses past the relative tolerance plus
/// the absolute floor.
fn check_regression(name: &str, new_ms: f64, base_ms: f64) {
    let bound = base_ms * (1.0 + BASELINE_REL_PCT / 100.0) + BASELINE_ABS_FLOOR_MS;
    assert!(
        new_ms <= bound,
        "{name} regressed: {new_ms:.1} ms vs baseline {base_ms:.1} ms \
         (bound {bound:.1} ms = +{BASELINE_REL_PCT}% +{BASELINE_ABS_FLOOR_MS} ms)"
    );
    eprintln!("baseline {name}: {new_ms:.1} ms vs {base_ms:.1} ms (bound {bound:.1} ms) — ok");
}

/// Extracts `"wall_ms": <number>` from the named JSON section of a
/// BENCH_pr7-style artifact (both artifacts are written by this crate, so
/// a positional scan is reliable).
fn extract_wall_ms(doc: &str, section: &str) -> Option<f64> {
    let start = doc.find(section)?;
    let tail = &doc[start..];
    let key = tail.find("\"wall_ms\": ")?;
    let num = &tail[key + "\"wall_ms\": ".len()..];
    let end = num.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    num[..end].parse().ok()
}

/// Median-of-3 wall time in milliseconds; returns the last run's count.
fn median3(mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(3);
    let mut rows = 0;
    for _ in 0..3 {
        let start = Instant::now();
        rows = run();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[1], rows)
}
