//! Reproduces **Table 5 / Fig. 15**: the Incremental Linear Testing
//! workload (diameter 5–10, user-/retailer-bound and unbound) across the
//! engine lineup, with AM per query type and per diameter.
//!
//! Usage: `repro_table5_il [--scale 1] [--instances 3] [--overhead-ms 150]
//!         [--timeout-s 60]`

use std::collections::BTreeMap;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::{aggregate, cell, dataset, print_row, time_query, Args, Engines, Measurement};
use s2rdf_watdiv::Workload;

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get("scale", 1);
    let instances: usize = args.get("instances", 3);
    let overhead = Duration::from_millis(args.get("overhead-ms", 150));
    let timeout = Duration::from_secs(args.get("timeout-s", 60));

    eprintln!("generating SF{scale} and building all engines…");
    let data = dataset(scale);
    let engines = Engines::build(&data, overhead);
    let labels = Engines::labels();

    println!(
        "== Table 5 / Fig. 15: WatDiv Incremental Linear Testing (SF{scale}, AM over {instances} instantiations) =="
    );
    println!("(ms; F = timeout after {timeout:?})\n");

    let mut widths = vec![9usize];
    widths.extend(labels.iter().map(|l| l.len().max(9)));
    let mut header = vec!["query".to_string()];
    header.extend(labels.iter().map(|l| l.to_string()));
    print_row(&header, &widths);

    // (engine, group) -> values; group = "IL-1" | len "5" etc.
    let mut by_type: BTreeMap<(usize, String), Vec<Option<f64>>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(11);

    for template in &Workload::incremental_linear().templates {
        let queries: Vec<String> = (0..instances.max(1))
            .map(|_| template.instantiate(&data, &mut rng))
            .collect();
        // Name format IL-<type>-<len>.
        let mut parts = template.name.splitn(3, '-');
        let _ = parts.next();
        let ty = format!("IL-{}", parts.next().unwrap());
        let len = parts.next().unwrap().to_string();

        let mut row = vec![template.name.to_string()];
        let mut engine_idx = 0;
        engines.for_each(|_, engine| {
            // Untimed warm-up: the first large-output query after another
            // engine's run pays for allocator churn that is not the
            // engine's own cost.
            let _ = time_query(engine, &queries[0], timeout);
            let runs: Vec<Measurement> = queries
                .iter()
                .map(|q| time_query(engine, q, timeout))
                .collect();
            let am = aggregate(&runs);
            by_type
                .entry((engine_idx, ty.clone()))
                .or_default()
                .push(am);
            by_type
                .entry((engine_idx, format!("len-{len}")))
                .or_default()
                .push(am);
            row.push(cell(am));
            engine_idx += 1;
        });
        print_row(&row, &widths);
    }

    println!();
    let mut groups: Vec<String> = vec!["IL-1".into(), "IL-2".into(), "IL-3".into()];
    groups.extend((5..=10).map(|l| format!("len-{l}")));
    for group in groups {
        let mut row = vec![format!("AM {group}")];
        for (idx, _) in labels.iter().enumerate() {
            let values = by_type.get(&(idx, group.clone()));
            let am = values.and_then(|vs| {
                // N/A if any member failed, like the paper's AM columns.
                let mut total = 0.0;
                for v in vs {
                    total += (*v)?;
                }
                Some(total / vs.len() as f64)
            });
            row.push(cell(am));
        }
        print_row(&row, &widths);
    }
    println!("\nExpected shape (paper §7.3): S2RDF stays flat as the diameter grows;");
    println!("batch engines grow linearly with the pattern count (one job per hop);");
    println!("Virtuoso-sim degrades on the unbound IL-3 chains (the paper's 'F').");
}
