//! Writes `BENCH_pr10.json` — the chunked columnar format v3 artifact.
//!
//! Usage: `bench_pr10 [--out BENCH_pr10.json] [--baseline BENCH_pr8.json]`
//!
//! Four scenarios:
//!
//! 1. **Pruned vs full scan** — a 2 M-row table with clustered keys,
//!    point lookup on the key column: `scan_chunks` (zone maps consulted
//!    before any decode) against decode-everything + `select_eq`. The two
//!    must agree on the output; the pruned scan must actually skip chunks
//!    (`chunks_pruned > 0`).
//! 2. **Compression table** — representative column shapes (constant,
//!    monotone ids, clustered, pseudorandom) serialized in the legacy v2
//!    whole-column format vs v3, plus the full WatDiv SF1 store saved both
//!    ways. The v3 store must be ≥2× smaller than the raw columnar image
//!    (4 bytes per value, the uncompressed layout v2 started from) and
//!    strictly smaller than the varint/RLE v2 files it replaces — v2 had
//!    already grown whole-column entropy coding, so the honest ratio
//!    against it is also recorded (WatDiv ids carry ~8 bits/value of
//!    unordered entropy; no chunk encoder doubles up on varints).
//! 3. **End-to-end pruning** — the most selective kind of SPARQL step, a
//!    bound-subject lookup against the largest predicate of a loaded
//!    WatDiv store; `columnar.io.chunks_pruned` must advance.
//! 4. **PR-8 comparable** — the exact BENCH_pr8 `par_join` workload
//!    (200 k × 200 k adaptive join, 8 partitions), unchanged by this PR's
//!    storage work. With `--baseline`, the new median is gated against the
//!    committed BENCH_pr8 wall time (>20 % + 25 ms fails).
//!
//! Wall times are medians of 3 runs.

use std::fmt::Write as _;
use std::time::Instant;

use s2rdf_bench::Args;
use s2rdf_columnar::chunk::scan_chunks;
use s2rdf_columnar::exec::{natural_join_adaptive, JoinConfig};
use s2rdf_columnar::io::{serialize_table, serialize_table_v2};
use s2rdf_columnar::ops::select_eq;
use s2rdf_columnar::{metrics, CompressedTable, Schema, Table, TableStore, WriteOptions};
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::{generate, Config};

/// Regression tolerance against the committed baseline: 20 % relative plus
/// a 25 ms absolute floor.
const BASELINE_REL_PCT: f64 = 20.0;
const BASELINE_ABS_FLOOR_MS: f64 = 25.0;

fn main() {
    let args = Args::parse();
    let out_path: String = args.get("out", "BENCH_pr10.json".to_string());
    let baseline_path: String = args.get("baseline", String::new());
    metrics::set_enabled(true);

    // ---- Scenario 1: pruned vs full point-lookup scan ---------------------
    // Clustered keys (64 rows per key, ascending) mirror a subject-sorted VP
    // table: zone maps separate cleanly, so a point lookup touches one chunk.
    const N: u32 = 1 << 21;
    let table = Table::from_columns(
        Schema::new(["s", "o"]),
        vec![(0..N).map(|i| i / 64).collect(), lcg_column(N as usize)],
    );
    let ct = CompressedTable::from_table(
        &table,
        &WriteOptions {
            chunk_rows: 4096,
            bloom: true,
        },
    );
    let needle = (N / 64) / 2; // present, interior chunk
    let (pruned_ms, pruned_rows) = median3(|| {
        let (_, rows, stats) = scan_chunks(&ct, &[(0, needle)], &[], &[1], None).expect("scan");
        assert!(stats.chunks_pruned > 0, "point lookup pruned no chunks");
        rows
    });
    let full = ct.materialize().expect("materialize");
    let (full_ms, full_rows) = median3(|| select_eq(&full, 0, needle).num_rows());
    assert_eq!(pruned_rows, full_rows, "pruned scan changed the output");
    let (_, _, stats) = scan_chunks(&ct, &[(0, needle)], &[], &[1], None).expect("scan");
    eprintln!(
        "point lookup over {N} rows: pruned {pruned_ms:.2} ms vs full {full_ms:.2} ms \
         ({}/{} chunks skipped, {pruned_rows} rows)",
        stats.chunks_pruned,
        ct.num_chunks(),
    );

    // ---- Scenario 2: compression table ------------------------------------
    const C: usize = 1 << 20;
    let shapes: [(&str, Vec<u32>); 4] = [
        ("constant", vec![7; C]),
        ("monotone_ids", (0..C as u32).collect()),
        ("clustered", (0..C as u32).map(|i| i / 256).collect()),
        ("pseudorandom", lcg_column(C)),
    ];
    let mut compression: Vec<(&str, usize, usize)> = Vec::new();
    for (name, col) in &shapes {
        let t = Table::from_columns(Schema::new(["c"]), vec![col.clone()]);
        let v2 = serialize_table_v2(&t).len();
        let v3 = serialize_table(&t).len();
        eprintln!(
            "compression {name:>13}: v2 {v2:>8} B → v3 {v3:>8} B ({:.2}x)",
            v2 as f64 / v3 as f64
        );
        compression.push((name, v2, v3));
    }

    // The acceptance target: the whole WatDiv store, both formats on disk.
    eprintln!("generating WatDiv SF1 and building the store…");
    let data = generate(&Config { scale: 1, seed: 42 });
    let mut store = S2rdfStore::build(&data.graph, &BuildOptions::default());
    let tmp = std::env::temp_dir().join(format!("s2rdf-bench-pr10-{}", std::process::id()));
    let (dir_v2, dir_v3) = (tmp.join("v2"), tmp.join("v3"));
    let _ = std::fs::remove_dir_all(&tmp);
    store.set_legacy_v2_writes(true);
    store.save(&dir_v2).expect("save v2");
    store.set_legacy_v2_writes(false);
    store.save(&dir_v3).expect("save v3");
    let bytes_v2 = TableStore::open(dir_v2.join("tables"))
        .and_then(|t| t.total_size())
        .expect("v2 size");
    let bytes_v3 = TableStore::open(dir_v3.join("tables"))
        .and_then(|t| t.total_size())
        .expect("v3 size");
    // Logical (uncompressed) image: every stored table at 4 B/value.
    let v3_tables = TableStore::open(dir_v3.join("tables")).expect("open v3");
    let mut bytes_raw = 0u64;
    for name in v3_tables.names() {
        let ct = v3_tables.load_compressed(&name).expect("parse v3");
        bytes_raw += ct.logical_bytes() as u64;
    }
    let raw_ratio = bytes_raw as f64 / bytes_v3 as f64;
    let v2_ratio = bytes_v2 as f64 / bytes_v3 as f64;
    eprintln!(
        "WatDiv SF1 store: raw {bytes_raw} B, v2 {bytes_v2} B, v3 {bytes_v3} B \
         ({raw_ratio:.2}x vs raw, {v2_ratio:.2}x vs v2)"
    );
    assert!(
        bytes_raw >= 2 * bytes_v3,
        "v3 WatDiv store must be ≥2x smaller than the raw columnar image \
         ({bytes_raw} vs {bytes_v3})"
    );
    assert!(
        bytes_v3 < bytes_v2,
        "v3 WatDiv store must beat the varint/RLE v2 files ({bytes_v2} vs {bytes_v3})"
    );

    // ---- Scenario 3: end-to-end pruning on a loaded store -----------------
    // Small chunks so even SF1's predicates span several zone-map entries.
    let dir_q = tmp.join("q");
    store.set_write_options(WriteOptions {
        chunk_rows: 512,
        bloom: true,
    });
    store.save(&dir_q).expect("save query store");
    drop(store);
    let loaded = S2rdfStore::load(&dir_q).expect("load");
    let (subject, predicate) = most_frequent_predicate_example(&data.graph);
    let query = format!("SELECT * WHERE {{ {subject} {predicate} ?o }}");
    let pruned_before = metrics::counter("columnar.io.chunks_pruned").get();
    let (e2e_ms, e2e_rows) = median3(|| loaded.query(&query).expect("query").len());
    let e2e_pruned = metrics::counter("columnar.io.chunks_pruned").get() - pruned_before;
    assert!(e2e_rows > 0, "bound-subject lookup found nothing");
    assert!(
        e2e_pruned > 0,
        "end-to-end bound-subject query pruned no chunks"
    );
    eprintln!("end-to-end {query}: {e2e_ms:.2} ms, {e2e_rows} row(s), {e2e_pruned} chunks pruned");
    let _ = std::fs::remove_dir_all(&tmp);

    // ---- Scenario 4: the BENCH_pr8 par_join workload ----------------------
    const ROWS: u32 = 200_000;
    let left = Table::from_columns(
        Schema::new(["k", "a"]),
        vec![(0..ROWS).map(|x| x % 4096).collect(), (0..ROWS).collect()],
    );
    let right = Table::from_columns(
        Schema::new(["k", "b"]),
        vec![(0..ROWS).collect(), (0..ROWS).map(|x| x ^ 1).collect()],
    );
    let pr8_cfg = JoinConfig {
        max_partitions: 8,
        ..JoinConfig::default()
    };
    let (par_ms, par_rows) =
        median3(|| natural_join_adaptive(&left, &right, &pr8_cfg).0.num_rows());
    eprintln!("pr8 workload: {par_ms:.1} ms ({par_rows} rows)");

    // ---- Baseline diff -----------------------------------------------------
    let mut baseline_json = String::new();
    if !baseline_path.is_empty() {
        let doc = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let base_par =
            extract_wall_ms(&doc, "\"par_join\"").expect("baseline has no par_join.wall_ms");
        check_regression("par_join", par_ms, base_par);
        let _ = write!(
            baseline_json,
            "  \"baseline\": {{\n    \"path\": \"{}\",\n    \
             \"par_join_base_ms\": {base_par:.3}, \"par_join_new_ms\": {par_ms:.3},\n    \
             \"rel_tolerance_pct\": {BASELINE_REL_PCT}, \"abs_floor_ms\": {BASELINE_ABS_FLOOR_MS}\n  }},\n",
            metrics::json_escape(&baseline_path)
        );
    }

    // ---- Artifact ----------------------------------------------------------
    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(doc, "  \"artifact\": \"BENCH_pr10\",");
    let _ = writeln!(doc, "  \"pruned_scan\": {{");
    let _ = writeln!(
        doc,
        "    \"rows\": {N}, \"chunk_rows\": 4096, \"out_rows\": {pruned_rows},"
    );
    let _ = writeln!(
        doc,
        "    \"chunks_pruned\": {}, \"chunks_total\": {},",
        stats.chunks_pruned,
        ct.num_chunks()
    );
    let _ = writeln!(
        doc,
        "    \"pruned_wall_ms\": {pruned_ms:.3}, \"full_wall_ms\": {full_ms:.3}"
    );
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"compression\": [");
    for (i, (name, v2, v3)) in compression.iter().enumerate() {
        let _ = writeln!(
            doc,
            "    {{\"column\": \"{name}\", \"v2_bytes\": {v2}, \"v3_bytes\": {v3}, \
             \"ratio\": {:.3}}}{}",
            *v2 as f64 / *v3 as f64,
            if i + 1 < compression.len() { "," } else { "" }
        );
    }
    let _ = writeln!(doc, "  ],");
    let _ = writeln!(doc, "  \"watdiv_store\": {{");
    let _ = writeln!(
        doc,
        "    \"raw_bytes\": {bytes_raw}, \"v2_bytes\": {bytes_v2}, \"v3_bytes\": {bytes_v3},"
    );
    let _ = writeln!(
        doc,
        "    \"ratio_vs_raw\": {raw_ratio:.3}, \"ratio_vs_v2\": {v2_ratio:.3}"
    );
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"end_to_end\": {{");
    let _ = writeln!(
        doc,
        "    \"rows\": {e2e_rows}, \"chunks_pruned\": {e2e_pruned}, \"wall_ms\": {e2e_ms:.3}"
    );
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"par_join\": {{");
    let _ = writeln!(doc, "    \"rows_left\": {ROWS}, \"rows_right\": {ROWS},");
    let _ = writeln!(doc, "    \"wall_ms\": {par_ms:.3}");
    let _ = writeln!(doc, "  }},");
    doc.push_str(&baseline_json);
    let _ = writeln!(
        doc,
        "  \"operator_metrics\": {}",
        metrics::snapshot().to_json()
    );
    doc.push_str("}\n");

    std::fs::write(&out_path, doc).expect("write BENCH_pr10 artifact");
    eprintln!("wrote {out_path}");
}

/// The most frequent predicate in the graph plus one subject under it, both
/// rendered as SPARQL terms — the shape of the most selective scan a store
/// serves (bound subject, largest VP table).
fn most_frequent_predicate_example(graph: &s2rdf_model::Graph) -> (String, String) {
    use std::collections::HashMap;
    let mut counts: HashMap<String, (usize, String)> = HashMap::new();
    for triple in graph.iter_decoded() {
        let entry = counts
            .entry(triple.p.to_string())
            .or_insert_with(|| (0, triple.s.to_string()));
        entry.0 += 1;
    }
    let (pred, (_, subj)) = counts
        .into_iter()
        .max_by_key(|(_, (n, _))| *n)
        .expect("non-empty graph");
    (subj, pred)
}

/// Deterministic pseudorandom column (same LCG the columnar tests use).
fn lcg_column(n: usize) -> Vec<u32> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        })
        .collect()
}

/// Fails the run when `new_ms` regresses past the relative tolerance plus
/// the absolute floor.
fn check_regression(name: &str, new_ms: f64, base_ms: f64) {
    let bound = base_ms * (1.0 + BASELINE_REL_PCT / 100.0) + BASELINE_ABS_FLOOR_MS;
    assert!(
        new_ms <= bound,
        "{name} regressed: {new_ms:.1} ms vs baseline {base_ms:.1} ms \
         (bound {bound:.1} ms = +{BASELINE_REL_PCT}% +{BASELINE_ABS_FLOOR_MS} ms)"
    );
    eprintln!("baseline {name}: {new_ms:.1} ms vs {base_ms:.1} ms (bound {bound:.1} ms) — ok");
}

/// Extracts `"wall_ms": <number>` from the named JSON section of a
/// BENCH_pr8-style artifact (both artifacts are written by this crate, so
/// a positional scan is reliable).
fn extract_wall_ms(doc: &str, section: &str) -> Option<f64> {
    let start = doc.find(section)?;
    let tail = &doc[start..];
    let key = tail.find("\"wall_ms\": ")?;
    let num = &tail[key + "\"wall_ms\": ".len()..];
    let end = num.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    num[..end].parse().ok()
}

/// Median-of-3 wall time in milliseconds; returns the last run's count.
fn median3(mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(3);
    let mut rows = 0;
    for _ in 0..3 {
        let start = Instant::now();
        rows = run();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[1], rows)
}
