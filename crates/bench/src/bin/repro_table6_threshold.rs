//! Reproduces **Table 6 / Fig. 16**: the effect of the SF threshold on
//! store size and on Basic Testing runtimes per query category.
//!
//! Usage: `repro_table6_threshold [--scale 1] [--instances 2] [--timeout-s 60]`

use std::collections::BTreeMap;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use s2rdf_bench::{aggregate, dataset, print_row, time_query, Args, Measurement};
use s2rdf_core::{BuildOptions, S2rdfStore};
use s2rdf_watdiv::Workload;

const THRESHOLDS: [f64; 7] = [0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 1.0];

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get("scale", 1);
    let instances: usize = args.get("instances", 2);
    let timeout = Duration::from_secs(args.get("timeout-s", 60));

    eprintln!("generating SF{scale}…");
    let data = dataset(scale);
    let basic = Workload::basic_testing();

    println!("== Table 6 / Fig. 16: SF threshold sweep (SF{scale}) ==\n");
    let widths = [8usize, 10, 12, 12, 11, 11, 11, 11, 11];
    print_row(
        &[
            "SF_TH".into(),
            "#tables".into(),
            "#tuples".into(),
            "size MB".into(),
            "rel-L".into(),
            "rel-S".into(),
            "rel-F".into(),
            "rel-C".into(),
            "rel-total".into(),
        ],
        &widths,
    );

    // Baseline (threshold 0 = pure VP) runtimes normalize the rel-columns.
    let mut baseline: BTreeMap<&'static str, f64> = BTreeMap::new();
    let mut rows: Vec<[String; 9]> = Vec::new();

    for &threshold in &THRESHOLDS {
        eprintln!("building store with SF_TH = {threshold}…");
        let store = S2rdfStore::build(
            &data.graph,
            &BuildOptions {
                threshold,
                build_extvp: true,
                ..Default::default()
            },
        );
        let engine = store.engine(true);

        // Sizes: tuples over VP + materialized ExtVP; bytes via save.
        let tuples = store.vp_tuples() + store.extvp_tuples();
        let tables = store.catalog().num_predicates() + store.num_extvp_tables();
        let dir = std::env::temp_dir().join(format!(
            "s2rdf-table6-{}-{}",
            std::process::id(),
            (threshold * 100.0) as u32
        ));
        let _ = std::fs::remove_dir_all(&dir);
        store.save(&dir).expect("save");
        let (_, vp_b, ext_b) = S2rdfStore::disk_sizes(&dir).expect("sizes");
        let _ = std::fs::remove_dir_all(&dir);

        // Category runtimes.
        let mut per_cat: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(5);
        for template in &basic.templates {
            let runs: Vec<Measurement> = (0..instances)
                .map(|_| {
                    let q = template.instantiate(&data, &mut rng);
                    time_query(&engine, &q, timeout)
                })
                .collect();
            if let Some(ms) = aggregate(&runs) {
                per_cat
                    .entry(template.category.label())
                    .or_default()
                    .push(ms);
                per_cat.entry("T").or_default().push(ms);
            }
        }
        let mut rel = [
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ];
        for (i, cat) in ["L", "S", "F", "C", "T"].iter().enumerate() {
            let am = per_cat
                .get(cat)
                .map(|v| v.iter().sum::<f64>() / v.len() as f64)
                .unwrap_or(f64::NAN);
            if threshold == 0.0 {
                baseline.insert(cat, am);
            }
            rel[i] = format!("{:.0}%", 100.0 * am / baseline[cat]);
        }
        rows.push([
            format!("{threshold:.2}"),
            format!("{tables}"),
            format!("{tuples}"),
            format!("{:.1}", (vp_b + ext_b) as f64 / 1e6),
            rel[0].clone(),
            rel[1].clone(),
            rel[2].clone(),
            rel[3].clone(),
            rel[4].clone(),
        ]);
    }

    for row in &rows {
        print_row(row.as_slice(), &widths);
    }
    println!("\nExpected shape (paper §7.4): SF_TH = 0.25 already captures ~95% of the");
    println!("runtime benefit of SF_TH = 1.0 while storing a small fraction of the");
    println!("ExtVP tuples; categories L/S/C barely improve past 0.25.");
}
