//! Benchmark harness for regenerating the paper's evaluation (§7).
//!
//! The `repro_*` binaries in `src/bin/` print paper-style tables:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `repro_table2` | Table 2 (load times and store sizes) |
//! | `repro_table3_st` | Table 3 / Fig. 13 (Selectivity Testing, ExtVP vs VP) |
//! | `repro_table4_basic` | Table 4 / Fig. 14 (Basic Testing across engines) |
//! | `repro_table5_il` | Table 5 / Fig. 15 (Incremental Linear across engines) |
//! | `repro_table6_threshold` | Table 6 / Fig. 16 (SF-threshold sweep) |
//!
//! Criterion benches under `benches/` track the same artifacts as
//! regression benchmarks plus micro/ablation benches (join-order on/off,
//! parallel vs serial joins, ExtVP construction).

use std::time::{Duration, Instant};

use s2rdf_core::engines::adaptive::AdaptiveEngine;
use s2rdf_core::engines::batch::{BatchEngine, JobGranularity};
use s2rdf_core::engines::centralized::CentralizedEngine;
use s2rdf_core::engines::property_table::PropertyTableEngine;
use s2rdf_core::engines::triples_table::TriplesTableEngine;
use s2rdf_core::engines::SparqlEngine;
use s2rdf_core::exec::QueryOptions;
use s2rdf_core::{BuildOptions, CoreError, S2rdfStore};
use s2rdf_watdiv::{generate, Config, Dataset};

/// A measured query run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measurement {
    /// Completed in the given time with the given result cardinality.
    Ok(Duration, usize),
    /// Hit the deadline (the paper's "F" entries).
    Timeout,
    /// Failed with an error (reported, should not happen).
    Error,
}

impl Measurement {
    /// Milliseconds for table cells; `None` for timeouts/errors.
    pub fn millis(&self) -> Option<f64> {
        match self {
            Measurement::Ok(d, _) => Some(d.as_secs_f64() * 1e3),
            _ => None,
        }
    }
}

/// Runs one query with a deadline and wall-clock timing.
pub fn time_query(engine: &dyn SparqlEngine, query: &str, timeout: Duration) -> Measurement {
    let options = QueryOptions {
        deadline: Some(Instant::now() + timeout),
        ..Default::default()
    };
    let start = Instant::now();
    match engine.query_opt(query, &options) {
        Ok((solutions, _)) => Measurement::Ok(start.elapsed(), solutions.len()),
        Err(CoreError::Timeout) => Measurement::Timeout,
        Err(e) => {
            eprintln!("[{}] query failed: {e}", engine.name());
            Measurement::Error
        }
    }
}

/// Arithmetic mean of the successful runs; `None` if any run failed
/// (mirroring the paper's handling: an "F" makes the aggregate N/A).
pub fn aggregate(ms: &[Measurement]) -> Option<f64> {
    let mut total = 0.0;
    for m in ms {
        total += m.millis()?;
    }
    Some(total / ms.len() as f64)
}

/// Formats a table cell: milliseconds, or "F" for failures (timeouts), as
/// in the paper's Table 5.
pub fn cell(value: Option<f64>) -> String {
    match value {
        Some(ms) => format!("{ms:.1}"),
        None => "F".to_string(),
    }
}

/// The full engine lineup of the paper's comparison, built over one
/// dataset.
pub struct Engines {
    /// S2RDF store (ExtVP + VP paths).
    pub store: S2rdfStore,
    /// Triples-table baseline.
    pub triples_table: TriplesTableEngine,
    /// Property-table (Sempala-style) baseline.
    pub property_table: PropertyTableEngine,
    /// H2RDF+-style adaptive engine.
    pub adaptive: AdaptiveEngine,
    /// SHARD-style batch engine.
    pub shard: BatchEngine,
    /// PigSPARQL-style batch engine.
    pub pigsparql: BatchEngine,
    /// Centralized (Virtuoso-style) engine.
    pub centralized: CentralizedEngine,
    work_dir: std::path::PathBuf,
}

impl Engines {
    /// Builds every engine over a dataset. `batch_overhead` is the
    /// simulated per-job latency of the MapReduce engines.
    pub fn build(data: &Dataset, batch_overhead: Duration) -> Engines {
        let work_dir = std::env::temp_dir().join(format!(
            "s2rdf-bench-{}-{}",
            std::process::id(),
            data.graph.len()
        ));
        let store = S2rdfStore::build(&data.graph, &BuildOptions::default());
        let triples_table = TriplesTableEngine::new(&data.graph);
        let property_table = PropertyTableEngine::new(&data.graph);
        let shard = BatchEngine::new(
            &data.graph,
            work_dir.join("shard"),
            batch_overhead,
            JobGranularity::PerPattern,
        )
        .expect("batch engine setup");
        let pigsparql = BatchEngine::new(
            &data.graph,
            work_dir.join("pig"),
            batch_overhead,
            JobGranularity::MultiJoin,
        )
        .expect("batch engine setup");
        let centralized = CentralizedEngine::new(&data.graph);
        // H2RDF+-style budget: ~5% of the triples; larger patterns go to
        // the batch path like H2RDF+'s MapReduce fallback.
        let adaptive = AdaptiveEngine::new(
            &data.graph,
            work_dir.join("adaptive"),
            batch_overhead,
            data.graph.len() / 20,
        )
        .expect("adaptive engine setup");
        Engines {
            store,
            triples_table,
            property_table,
            adaptive,
            shard,
            pigsparql,
            centralized,
            work_dir,
        }
    }

    /// Iterates `(label, engine)` pairs in the paper's reporting order.
    pub fn for_each(&self, mut f: impl FnMut(&str, &dyn SparqlEngine)) {
        let extvp = self.store.engine(true);
        f("S2RDF ExtVP", &extvp);
        let vp = self.store.engine(false);
        f("S2RDF VP", &vp);
        f("H2RDF+-sim", &self.adaptive);
        f("Sempala-sim (PT)", &self.property_table);
        f("TriplesTable", &self.triples_table);
        f("PigSPARQL-sim", &self.pigsparql);
        f("SHARD-sim", &self.shard);
        f("Virtuoso-sim", &self.centralized);
    }

    /// Engine labels in reporting order.
    pub fn labels() -> Vec<&'static str> {
        vec![
            "S2RDF ExtVP",
            "S2RDF VP",
            "H2RDF+-sim",
            "Sempala-sim (PT)",
            "TriplesTable",
            "PigSPARQL-sim",
            "SHARD-sim",
            "Virtuoso-sim",
        ]
    }
}

impl Drop for Engines {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.work_dir);
    }
}

/// Generates the WatDiv-style dataset for a scale factor (fixed seed so
/// every binary sees the same data).
pub fn dataset(scale: u32) -> Dataset {
    generate(&Config { scale, seed: 42 })
}

/// Tiny CLI-argument reader: `--key value` flags with defaults, used by
/// all `repro_*` binaries.
pub struct Args {
    args: Vec<String>,
}

impl Args {
    /// Reads the process arguments.
    pub fn parse() -> Args {
        Args {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// The value of `--name <v>`, or the default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Right-aligned fixed-width table printing.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_handles_failures() {
        let ok = Measurement::Ok(Duration::from_millis(10), 1);
        assert_eq!(aggregate(&[ok, ok]), Some(10.0));
        assert_eq!(aggregate(&[ok, Measurement::Timeout]), None);
        assert_eq!(cell(None), "F");
        assert_eq!(cell(Some(1.25)), "1.2");
    }

    #[test]
    fn engines_build_and_agree_on_a_small_query() {
        let data = dataset(1);
        let engines = Engines::build(&data, Duration::ZERO);
        let q = "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
                 SELECT * WHERE { ?x wsdbm:subscribes ?w . ?x wsdbm:likes ?p }";
        let mut canon: Vec<Vec<String>> = Vec::new();
        engines.for_each(|label, e| {
            let s = e.query(q).unwrap_or_else(|err| panic!("{label}: {err}"));
            canon.push(s.canonical());
        });
        for c in &canon[1..] {
            assert_eq!(c, &canon[0]);
        }
    }
}
