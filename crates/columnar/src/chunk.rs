//! Chunked column compression for table format v3 — the crate's analogue
//! of a Parquet row group.
//!
//! Format v2 encodes each column as one monolithic varint/RLE stream: a
//! scan must decode every row of every touched column before the kernels
//! see a single value. v3 splits each column into fixed-size **chunks**
//! (default [`DEFAULT_CHUNK_ROWS`] rows, tunable via `--chunk-rows`), and
//! for each chunk independently picks the cheapest of five encodings:
//!
//! | tag | encoding | wins on |
//! |---|---|---|
//! | [`ENC_CHUNK_PLAIN`] | varint stream | incompressible ids |
//! | [`ENC_CHUNK_RLE`] | varint (value, run) pairs | long runs |
//! | [`ENC_CHUNK_CONST`] | single varint | single-valued chunks |
//! | [`ENC_CHUNK_FOR`] | frame-of-reference bit-packing | narrow value ranges |
//! | [`ENC_CHUNK_DELTA`] | delta + bit-packed gaps | sorted/monotone ids |
//!
//! Each chunk carries a **zone map** (min/max id plus an all-distinct
//! flag) and its own CRC-32; each column optionally carries a **Bloom
//! filter** over its values (high-cardinality join keys). The scan path
//! ([`scan_chunks`]) consults zone maps and Bloom filters to skip whole
//! chunks *before* decoding them — for bound-constant selections and for
//! runtime semi-join filters passed sideways from the smaller join side
//! ([`SidewaysFilter`]) — and feeds surviving chunks straight into the
//! 64-row bitmap kernels, so late materialization keeps working.

use std::sync::{Arc, OnceLock};

use rustc_hash::FxHashSet;

use crate::bitmap::Bitmap;
use crate::crc32::crc32;
use crate::error::ColumnarError;
use crate::io::{read_varint, write_varint};
use crate::metric_counter;
use crate::ops::kernels;
use crate::schema::Schema;
use crate::table::Table;

/// Chunk encoding tags (one byte each in the v3 header).
pub const ENC_CHUNK_PLAIN: u8 = 0;
/// Run-length: varint (value, run) pairs.
pub const ENC_CHUNK_RLE: u8 = 1;
/// Single-value chunk: one varint.
pub const ENC_CHUNK_CONST: u8 = 2;
/// Frame-of-reference: varint base + bit width + packed `value - base`.
pub const ENC_CHUNK_FOR: u8 = 3;
/// Delta (monotone non-decreasing chunks): varint first value + bit width
/// + packed gaps.
pub const ENC_CHUNK_DELTA: u8 = 4;

/// Default rows per chunk. A power of two aligned with the morsel/bitmap
/// kernels' 64-row words; `--chunk-rows` overrides it at write time.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Columns shorter than this never get a Bloom filter — zone maps alone
/// are enough, and the filter bytes would erode the compression win.
const BLOOM_MIN_ROWS: usize = 4096;
/// Bloom sizing: bits per value (rounded up to a power of two of bytes).
const BLOOM_BITS_PER_KEY: usize = 4;
/// Bloom hash count (≈ ln 2 · bits-per-key).
const BLOOM_HASHES: u8 = 3;
/// Values sampled for the distinct-ratio gate: Bloom filters only pay off
/// on high-cardinality columns (join keys), not on enum-like columns
/// where the zone map already tells the whole story.
const BLOOM_SAMPLE: usize = 4096;
/// Minimum distinct ratio over the sample for a column to get a Bloom
/// filter.
const BLOOM_MIN_DISTINCT_RATIO: f64 = 0.5;

/// Write-time knobs for the v3 encoder.
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Rows per chunk (zone-map granularity).
    pub chunk_rows: usize,
    /// Build per-column Bloom filters for high-cardinality columns
    /// (`--no-bloom` disables).
    pub bloom: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            chunk_rows: DEFAULT_CHUNK_ROWS,
            bloom: true,
        }
    }
}

fn corrupt(msg: &str) -> ColumnarError {
    ColumnarError::CorruptFile(msg.to_string())
}

fn read_u32_varint(data: &[u8], pos: &mut usize) -> Result<u32, ColumnarError> {
    let v = read_varint(data, pos)?;
    u32::try_from(v).map_err(|_| corrupt("chunk value exceeds u32"))
}

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

/// Packs `vals` LSB-first at `width` bits each onto `out`.
fn pack_bits(vals: &[u32], width: u32, out: &mut Vec<u8>) {
    debug_assert!(width <= 32);
    if width == 0 {
        return;
    }
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &v in vals {
        acc |= (v as u64) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
}

/// Exact byte length of `rows` values packed at `width` bits.
fn packed_len(rows: usize, width: u32) -> usize {
    (rows * width as usize).div_ceil(8)
}

/// Unpacks `rows` values of `width` bits each from `data` (which must be
/// exactly [`packed_len`] bytes — the caller enforces this).
fn unpack_bits(data: &[u8], width: u32, rows: usize) -> Vec<u32> {
    debug_assert!(width <= 32);
    debug_assert_eq!(data.len(), packed_len(rows, width));
    if width == 0 {
        return vec![0; rows];
    }
    let mask: u64 = if width == 32 {
        u32::MAX as u64
    } else {
        (1u64 << width) - 1
    };
    let mut out = Vec::with_capacity(rows);
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    let mut bytes = data.iter();
    for _ in 0..rows {
        while nbits < width {
            acc |= (*bytes.next().unwrap() as u64) << nbits;
            nbits += 8;
        }
        out.push((acc & mask) as u32);
        acc >>= width;
        nbits -= width;
    }
    out
}

/// Bits needed to represent `v` (0 → 0 bits).
fn bit_width(v: u32) -> u32 {
    32 - v.leading_zeros()
}

// ---------------------------------------------------------------------------
// Chunk encode / decode
// ---------------------------------------------------------------------------

/// Encodes one chunk with the cheapest of the five encodings. Returns the
/// encoding tag and the body bytes. `vals` must be non-empty.
pub fn encode_chunk(vals: &[u32]) -> (u8, Vec<u8>) {
    assert!(!vals.is_empty(), "empty chunk");
    let mut min = vals[0];
    let mut max = vals[0];
    let mut monotone = true;
    for w in vals.windows(2) {
        monotone &= w[0] <= w[1];
        min = min.min(w[1]);
        max = max.max(w[1]);
    }
    if min == max {
        let mut body = Vec::with_capacity(5);
        write_varint(&mut body, min as u64);
        return (ENC_CHUNK_CONST, body);
    }

    // Plain: varint stream.
    let mut plain = Vec::with_capacity(vals.len() * 2);
    for &v in vals {
        write_varint(&mut plain, v as u64);
    }
    let (mut best_enc, mut best) = (ENC_CHUNK_PLAIN, plain);

    // RLE: varint (value, run) pairs.
    let mut rle = Vec::new();
    let mut run_val = vals[0];
    let mut run_len: u64 = 1;
    for &v in &vals[1..] {
        if v == run_val {
            run_len += 1;
        } else {
            write_varint(&mut rle, run_val as u64);
            write_varint(&mut rle, run_len);
            run_val = v;
            run_len = 1;
        }
        if rle.len() >= best.len() {
            break; // already lost
        }
    }
    write_varint(&mut rle, run_val as u64);
    write_varint(&mut rle, run_len);
    if rle.len() < best.len() {
        (best_enc, best) = (ENC_CHUNK_RLE, rle);
    }

    // Frame-of-reference: base + fixed-width offsets.
    let width = bit_width(max - min);
    let mut fr = Vec::with_capacity(6 + packed_len(vals.len(), width));
    write_varint(&mut fr, min as u64);
    fr.push(width as u8);
    let offsets: Vec<u32> = vals.iter().map(|&v| v - min).collect();
    pack_bits(&offsets, width, &mut fr);
    if fr.len() < best.len() {
        (best_enc, best) = (ENC_CHUNK_FOR, fr);
    }

    // Delta: first value + bit-packed gaps (monotone chunks only — VP/ExtVP
    // subject columns written in sorted order compress to a few bits/row).
    if monotone {
        let deltas: Vec<u32> = vals.windows(2).map(|w| w[1] - w[0]).collect();
        let dwidth = bit_width(deltas.iter().copied().max().unwrap_or(0));
        let mut dl = Vec::with_capacity(6 + packed_len(deltas.len(), dwidth));
        write_varint(&mut dl, vals[0] as u64);
        dl.push(dwidth as u8);
        pack_bits(&deltas, dwidth, &mut dl);
        if dl.len() < best.len() {
            (best_enc, best) = (ENC_CHUNK_DELTA, dl);
        }
    }

    (best_enc, best)
}

/// Decodes a chunk body. Total: every malformed input (wrong length,
/// overlong runs, out-of-range values, overflow) is a `CorruptFile`
/// error, never a panic or over-allocation.
pub fn decode_chunk_body(enc: u8, body: &[u8], rows: usize) -> Result<Vec<u32>, ColumnarError> {
    let mut pos = 0usize;
    let out = match enc {
        ENC_CHUNK_PLAIN => {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                out.push(read_u32_varint(body, &mut pos)?);
            }
            out
        }
        ENC_CHUNK_RLE => {
            let mut out = Vec::with_capacity(rows);
            while out.len() < rows {
                let v = read_u32_varint(body, &mut pos)?;
                let run = read_varint(body, &mut pos)?;
                if run == 0 || run > (rows - out.len()) as u64 {
                    return Err(corrupt("RLE run overflows chunk"));
                }
                out.resize(out.len() + run as usize, v);
            }
            out
        }
        ENC_CHUNK_CONST => {
            let v = read_u32_varint(body, &mut pos)?;
            vec![v; rows]
        }
        ENC_CHUNK_FOR => {
            let base = read_u32_varint(body, &mut pos)?;
            let width = *body
                .get(pos)
                .ok_or_else(|| corrupt("truncated FOR chunk"))? as u32;
            pos += 1;
            if width > 32 {
                return Err(corrupt("FOR bit width exceeds 32"));
            }
            let packed = &body[pos..];
            if packed.len() != packed_len(rows, width) {
                return Err(corrupt("FOR chunk length mismatch"));
            }
            pos = body.len();
            let mut out = unpack_bits(packed, width, rows);
            for v in &mut out {
                *v = v
                    .checked_add(base)
                    .ok_or_else(|| corrupt("FOR offset overflows u32"))?;
            }
            out
        }
        ENC_CHUNK_DELTA => {
            let first = read_u32_varint(body, &mut pos)?;
            let width = *body
                .get(pos)
                .ok_or_else(|| corrupt("truncated delta chunk"))? as u32;
            pos += 1;
            if width > 32 {
                return Err(corrupt("delta bit width exceeds 32"));
            }
            let packed = &body[pos..];
            if packed.len() != packed_len(rows - 1, width) {
                return Err(corrupt("delta chunk length mismatch"));
            }
            pos = body.len();
            let deltas = unpack_bits(packed, width, rows - 1);
            let mut out = Vec::with_capacity(rows);
            let mut cur = first;
            out.push(cur);
            for d in deltas {
                cur = cur
                    .checked_add(d)
                    .ok_or_else(|| corrupt("delta overflows u32"))?;
                out.push(cur);
            }
            out
        }
        _ => return Err(corrupt("unknown chunk encoding")),
    };
    if pos != body.len() {
        return Err(corrupt("trailing bytes after chunk body"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------------

/// A small per-column Bloom filter over dictionary ids, used to skip
/// whole-table scans (and sideways-filter rows) when a sought id is
/// provably absent. ~[`BLOOM_BITS_PER_KEY`] bits per value,
/// [`BLOOM_HASHES`] probes via double hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    k: u8,
    bits: Vec<u8>,
}

/// SplitMix64 finalizer — cheap, well-mixed 64-bit hash of an id.
fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Bloom {
    /// Builds a filter over `vals` (power-of-two byte count, ≥ 8 bytes).
    pub fn build(vals: &[u32]) -> Bloom {
        let nbytes = (vals.len() * BLOOM_BITS_PER_KEY / 8)
            .next_power_of_two()
            .max(8);
        let mut bloom = Bloom {
            k: BLOOM_HASHES,
            bits: vec![0u8; nbytes],
        };
        for &v in vals {
            let (h1, h2) = bloom.hash_pair(v);
            for i in 0..bloom.k as u64 {
                let bit = (h1.wrapping_add(i.wrapping_mul(h2))) & bloom.bit_mask();
                bloom.bits[(bit / 8) as usize] |= 1 << (bit % 8);
            }
        }
        bloom
    }

    fn bit_mask(&self) -> u64 {
        (self.bits.len() as u64 * 8) - 1
    }

    fn hash_pair(&self, v: u32) -> (u64, u64) {
        let h = mix64(v as u64);
        (h, (h >> 32) | 1) // odd step so double hashing cycles all bits
    }

    /// False means `v` is definitely not in the column; true means maybe.
    pub fn may_contain(&self, v: u32) -> bool {
        let (h1, h2) = self.hash_pair(v);
        (0..self.k as u64).all(|i| {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2))) & self.bit_mask();
            self.bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0
        })
    }

    /// Serialized size in bytes (filter bits only).
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        out.push(self.k);
        write_varint(out, self.bits.len() as u64);
        out.extend_from_slice(&self.bits);
    }

    pub(crate) fn read(data: &[u8], pos: &mut usize) -> Result<Bloom, ColumnarError> {
        let k = *data
            .get(*pos)
            .ok_or_else(|| corrupt("truncated Bloom filter"))?;
        *pos += 1;
        if k == 0 || k > 16 {
            return Err(corrupt("implausible Bloom hash count"));
        }
        let nbytes = read_varint(data, pos)? as usize;
        if nbytes < 8 || !nbytes.is_power_of_two() || nbytes > data.len() {
            return Err(corrupt("implausible Bloom filter size"));
        }
        let end = pos
            .checked_add(nbytes)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| corrupt("truncated Bloom filter"))?;
        let bits = data[*pos..end].to_vec();
        *pos = end;
        Ok(Bloom { k, bits })
    }

    /// Whether a column qualifies for a filter: big enough, and
    /// high-cardinality over a sample (join-key-shaped, not enum-shaped).
    fn worthwhile(vals: &[u32]) -> bool {
        if vals.len() < BLOOM_MIN_ROWS {
            return false;
        }
        let sample = &vals[..vals.len().min(BLOOM_SAMPLE)];
        let distinct: FxHashSet<u32> = sample.iter().copied().collect();
        distinct.len() as f64 >= sample.len() as f64 * BLOOM_MIN_DISTINCT_RATIO
    }
}

// ---------------------------------------------------------------------------
// Compressed table
// ---------------------------------------------------------------------------

/// Zone map + location of one encoded chunk.
#[derive(Debug, Clone)]
pub struct ChunkMeta {
    /// Rows in this chunk (`chunk_rows` except possibly the last).
    pub rows: usize,
    /// Smallest id in the chunk.
    pub min: u32,
    /// Largest id in the chunk.
    pub max: u32,
    /// True when every value in the chunk is distinct — a bound-constant
    /// selection matches at most one row here (tightens row estimates).
    pub distinct: bool,
    /// Encoding tag (`ENC_CHUNK_*`).
    pub enc: u8,
    /// Body offset relative to the bodies region.
    pub offset: usize,
    /// Body length in bytes.
    pub len: usize,
    /// CRC-32 of the body bytes.
    pub crc: u32,
}

impl ChunkMeta {
    /// Zone-map test: can this chunk contain `v`?
    #[inline]
    pub fn may_contain(&self, v: u32) -> bool {
        self.min <= v && v <= self.max
    }

    /// Zone-map test: does `[lo, hi]` intersect this chunk's range?
    #[inline]
    pub fn overlaps(&self, lo: u32, hi: u32) -> bool {
        self.min <= hi && lo <= self.max
    }
}

/// Per-column chunk list plus the optional Bloom filter.
#[derive(Debug, Clone, Default)]
pub struct ColMeta {
    /// Chunk metadata in row order.
    pub chunks: Vec<ChunkMeta>,
    /// Optional Bloom filter over the whole column.
    pub bloom: Option<Bloom>,
}

/// A v3 table held in compressed form: schema + per-chunk metadata + the
/// concatenated encoded chunk bodies. This is what the [`TableStore`]
/// byte-budget LRU caches (compressed bytes, so more tables stay
/// resident), decoding chunks on demand and memoizing at most one full
/// materialization.
///
/// [`TableStore`]: crate::io::TableStore
#[derive(Debug)]
pub struct CompressedTable {
    pub(crate) schema: Schema,
    pub(crate) nrows: usize,
    pub(crate) chunk_rows: usize,
    pub(crate) cols: Vec<ColMeta>,
    /// Concatenated chunk bodies (column-major).
    pub(crate) body: Vec<u8>,
    /// Size of the whole serialized file (compressed footprint).
    pub(crate) file_bytes: usize,
    /// Pre-decoded table for v1/v2 files wrapped in this interface, and
    /// the memoized full materialization for v3.
    pub(crate) materialized: OnceLock<Arc<Table>>,
}

impl CompressedTable {
    /// Encodes an in-memory table (the write path).
    pub fn from_table(table: &Table, opts: &WriteOptions) -> CompressedTable {
        let chunk_rows = opts.chunk_rows.max(1);
        let nrows = table.num_rows();
        let mut body = Vec::new();
        let mut cols = Vec::with_capacity(table.schema().len());
        for col in table.columns() {
            let bloom = (opts.bloom && Bloom::worthwhile(col)).then(|| Bloom::build(col));
            let mut chunks = Vec::with_capacity(nrows.div_ceil(chunk_rows));
            for vals in col.chunks(chunk_rows) {
                let (enc, bytes) = encode_chunk(vals);
                let mut seen = FxHashSet::default();
                let distinct = vals.iter().all(|&v| seen.insert(v));
                chunks.push(ChunkMeta {
                    rows: vals.len(),
                    min: *vals.iter().min().unwrap(),
                    max: *vals.iter().max().unwrap(),
                    distinct,
                    enc,
                    offset: body.len(),
                    len: bytes.len(),
                    crc: crc32(&bytes),
                });
                body.extend_from_slice(&bytes);
            }
            cols.push(ColMeta { chunks, bloom });
        }
        CompressedTable {
            schema: table.schema().clone(),
            nrows,
            chunk_rows,
            cols,
            body,
            file_bytes: 0, // set by the serializer
            materialized: OnceLock::new(),
        }
    }

    /// Wraps an already-decoded table (v1/v2 files) so the cache and scan
    /// paths handle every format uniformly. No chunk metadata → no
    /// pruning, but also no re-decode: `materialize` is pre-seeded.
    pub fn from_plain(table: Arc<Table>, file_bytes: usize) -> CompressedTable {
        let ct = CompressedTable {
            schema: table.schema().clone(),
            nrows: table.num_rows(),
            chunk_rows: table.num_rows().max(1),
            cols: Vec::new(),
            body: Vec::new(),
            file_bytes,
            materialized: OnceLock::new(),
        };
        let _ = ct.materialized.set(table);
        ct
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Rows per chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of row-range chunks (0 for an empty table).
    pub fn num_chunks(&self) -> usize {
        self.cols.first().map_or(0, |c| c.chunks.len())
    }

    /// True when the table carries chunk metadata (v3) — i.e. the pruning
    /// scan path applies.
    pub fn is_chunked(&self) -> bool {
        !self.cols.is_empty()
    }

    /// Per-column metadata.
    pub fn col_meta(&self, col: usize) -> &ColMeta {
        &self.cols[col]
    }

    /// Compressed on-disk footprint in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.file_bytes
    }

    /// Decoded (logical) size in bytes: rows × columns × 4.
    pub fn logical_bytes(&self) -> usize {
        self.nrows * self.schema.len() * 4
    }

    /// Bloom-filter membership test; true (maybe) when the column has no
    /// filter.
    pub fn bloom_may_contain(&self, col: usize, v: u32) -> bool {
        self.cols[col]
            .bloom
            .as_ref()
            .is_none_or(|b| b.may_contain(v))
    }

    /// Decodes one chunk of one column, verifying its CRC first — a
    /// corrupt chunk only fails the scans that touch it.
    pub fn decode_chunk(&self, col: usize, k: usize) -> Result<Vec<u32>, ColumnarError> {
        let meta = &self.cols[col].chunks[k];
        let body = &self.body[meta.offset..meta.offset + meta.len];
        let actual = crc32(body);
        if actual != meta.crc {
            return Err(ColumnarError::ChecksumMismatch {
                expected: meta.crc,
                actual,
            });
        }
        decode_chunk_body(meta.enc, body, meta.rows)
    }

    /// Fully decodes the table, memoized: repeated calls (and every cache
    /// hit in [`TableStore::load`]) share one `Arc<Table>`.
    ///
    /// [`TableStore::load`]: crate::io::TableStore::load
    pub fn materialize(&self) -> Result<Arc<Table>, ColumnarError> {
        if let Some(t) = self.materialized.get() {
            return Ok(Arc::clone(t));
        }
        let mut out_cols = Vec::with_capacity(self.cols.len());
        for c in 0..self.cols.len() {
            let mut col = Vec::with_capacity(self.nrows);
            for k in 0..self.cols[c].chunks.len() {
                col.extend_from_slice(&self.decode_chunk(c, k)?);
            }
            out_cols.push(col);
        }
        metric_counter!("columnar.io.chunks_decoded").add(self.num_chunks() as u64);
        let table = Arc::new(Table::from_columns(self.schema.clone(), out_cols));
        Ok(Arc::clone(self.materialized.get_or_init(|| table)))
    }

    /// Zone-map row estimate for a bound-constant selection on `col ==
    /// v`: the sum of surviving chunk row counts (1 for all-distinct
    /// chunks), 0 when the Bloom filter rules the value out, and the full
    /// row count for un-chunked (legacy) tables.
    pub fn estimate_eq_rows(&self, col: usize, v: u32) -> usize {
        if !self.is_chunked() {
            return self.nrows;
        }
        if !self.bloom_may_contain(col, v) {
            return 0;
        }
        self.cols[col]
            .chunks
            .iter()
            .filter(|m| m.may_contain(v))
            .map(|m| if m.distinct { 1 } else { m.rows })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Sideways semi-join filter + pruning scan
// ---------------------------------------------------------------------------

/// A runtime semi-join filter built from the smaller join side's key
/// column and pushed sideways into the other side's scan (the shared-
/// memory analogue of Spark's runtime DPP/bloom pushdown): chunks whose
/// zone map misses `[min, max]` are skipped before decode, and surviving
/// rows are tested against the Bloom filter before they reach the join.
#[derive(Debug, Clone)]
pub struct SidewaysFilter {
    /// Smallest key on the build side.
    pub min: u32,
    /// Largest key on the build side.
    pub max: u32,
    /// Membership filter over the build keys (false positives only cost a
    /// discarded probe, never a wrong result).
    pub bloom: Option<Bloom>,
}

/// Build-side row cap above which constructing a sideways filter stops
/// paying for itself.
pub const SIDEWAYS_MAX_ROWS: usize = 1 << 16;

impl SidewaysFilter {
    /// Builds a filter from a join-key column; `None` for empty or
    /// oversized columns.
    pub fn build(keys: &[u32]) -> Option<SidewaysFilter> {
        if keys.is_empty() || keys.len() > SIDEWAYS_MAX_ROWS {
            return None;
        }
        Some(SidewaysFilter {
            min: *keys.iter().min().unwrap(),
            max: *keys.iter().max().unwrap(),
            bloom: Some(Bloom::build(keys)),
        })
    }

    /// Row-level test.
    #[inline]
    pub fn may_contain(&self, v: u32) -> bool {
        self.min <= v && v <= self.max && self.bloom.as_ref().is_none_or(|b| b.may_contain(v))
    }
}

/// Counters a pruning scan reports back (also mirrored into the
/// `columnar.io.chunks_{pruned,decoded}` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Row-range chunks skipped via zone maps / Bloom / sideways filters.
    pub chunks_pruned: usize,
    /// Row-range chunks decoded.
    pub chunks_decoded: usize,
}

/// Chunk-skipping scan: equivalent to decoding the whole table and
/// running the fused bitmap scan (`eq_const` per bound constant,
/// `and_eq_cols` per repeated variable, gather of `proj` columns) but
/// consults zone maps, column Bloom filters and the optional sideways
/// semi-join filter to skip chunks *before* decode. Returns the projected
/// columns, the matching row count, and pruning stats. Row order matches
/// the unpruned scan exactly (pruned chunks contribute no rows by
/// construction of the zone maps).
pub fn scan_chunks(
    ct: &CompressedTable,
    bounds: &[(usize, u32)],
    eq_pairs: &[(usize, usize)],
    proj: &[usize],
    sideways: Option<(usize, &SidewaysFilter)>,
) -> Result<(Vec<Vec<u32>>, usize, ScanStats), ColumnarError> {
    debug_assert!(ct.is_chunked());
    let mut stats = ScanStats::default();
    let nchunks = ct.num_chunks();
    let mut out_cols: Vec<Vec<u32>> = proj.iter().map(|_| Vec::new()).collect();
    let mut out_rows = 0usize;

    // Whole-column Bloom probe: a provably absent constant prunes the
    // entire table in O(k) probes.
    if bounds.iter().any(|&(c, v)| !ct.bloom_may_contain(c, v)) {
        stats.chunks_pruned = nchunks;
        metric_counter!("columnar.io.chunks_pruned").add(nchunks as u64);
        return Ok((out_cols, 0, stats));
    }

    // Columns the survivor path actually needs to decode.
    let mut needed: Vec<usize> = proj.to_vec();
    needed.extend(bounds.iter().map(|&(c, _)| c));
    needed.extend(eq_pairs.iter().flat_map(|&(a, b)| [a, b]));
    if let Some((c, _)) = sideways {
        needed.push(c);
    }
    needed.sort_unstable();
    needed.dedup();

    let mut decoded: Vec<Option<Vec<u32>>> = vec![None; ct.cols.len()];
    for k in 0..nchunks {
        let zone_miss = bounds
            .iter()
            .any(|&(c, v)| !ct.cols[c].chunks[k].may_contain(v))
            || sideways
                .map(|(c, f)| !ct.cols[c].chunks[k].overlaps(f.min, f.max))
                .unwrap_or(false);
        if zone_miss {
            stats.chunks_pruned += 1;
            continue;
        }
        stats.chunks_decoded += 1;
        for &c in &needed {
            decoded[c] = Some(ct.decode_chunk(c, k)?);
        }
        let rows = ct.cols[0].chunks[k].rows;
        let mut bm = match bounds.first() {
            Some(&(c, v)) => kernels::eq_const(decoded[c].as_deref().unwrap(), v),
            None => Bitmap::full(rows),
        };
        for &(c, v) in bounds.iter().skip(1) {
            kernels::and_eq_const(&mut bm, decoded[c].as_deref().unwrap(), v);
        }
        for &(a, b) in eq_pairs {
            kernels::and_eq_cols(
                &mut bm,
                decoded[a].as_deref().unwrap(),
                decoded[b].as_deref().unwrap(),
            );
        }
        if let Some((c, f)) = sideways {
            kernels::retain_rows(&mut bm, decoded[c].as_deref().unwrap(), |v| {
                f.may_contain(v)
            });
        }
        out_rows += bm.count_ones();
        for (out, &c) in out_cols.iter_mut().zip(proj) {
            out.extend(kernels::gather_column(decoded[c].as_deref().unwrap(), &bm));
        }
    }
    metric_counter!("columnar.io.chunks_pruned").add(stats.chunks_pruned as u64);
    metric_counter!("columnar.io.chunks_decoded").add(stats.chunks_decoded as u64);
    Ok((out_cols, out_rows, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(n: usize, card: u32, mut state: u64) -> Vec<u32> {
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as u32) % card
            })
            .collect()
    }

    fn roundtrip(vals: &[u32]) -> u8 {
        let (enc, body) = encode_chunk(vals);
        let back = decode_chunk_body(enc, &body, vals.len()).unwrap();
        assert_eq!(back, vals, "enc {enc}");
        enc
    }

    #[test]
    fn encodings_roundtrip_and_win_where_expected() {
        assert_eq!(roundtrip(&[7; 1000]), ENC_CHUNK_CONST);
        // Sorted with small gaps → delta.
        let sorted: Vec<u32> = (0..1000u32).map(|i| 10_000 + i * 3).collect();
        assert_eq!(roundtrip(&sorted), ENC_CHUNK_DELTA);
        // Narrow range, unsorted → frame-of-reference.
        let narrow: Vec<u32> = lcg(1000, 16, 5).iter().map(|v| 1_000_000 + v).collect();
        assert_eq!(roundtrip(&narrow), ENC_CHUNK_FOR);
        // Long runs → RLE... unless FOR's packed width is already
        // smaller; just require a correct roundtrip and a small body.
        let runs: Vec<u32> = (0..1000).map(|i| 500_000 + (i / 200) as u32).collect();
        roundtrip(&runs);
        // Single value.
        assert_eq!(roundtrip(&[42]), ENC_CHUNK_CONST);
        // Extremes.
        roundtrip(&[0, u32::MAX]);
        roundtrip(&[u32::MAX - 1, u32::MAX, 0, 3]);
    }

    #[test]
    fn for_beats_plain_varints_on_big_ids() {
        // 1000 ids near 2^27: plain varints spend 4 bytes each, FOR packs
        // the narrow offsets.
        let vals: Vec<u32> = lcg(1000, 256, 9).iter().map(|v| (1 << 27) + v).collect();
        let (enc, body) = encode_chunk(&vals);
        assert_eq!(enc, ENC_CHUNK_FOR);
        assert!(body.len() < 1500, "FOR body too large: {}", body.len());
    }

    #[test]
    fn hostile_chunk_bodies_rejected() {
        // Unknown encoding.
        assert!(decode_chunk_body(9, &[1, 2, 3], 4).is_err());
        // Truncated varint stream.
        assert!(decode_chunk_body(ENC_CHUNK_PLAIN, &[0x80], 1).is_err());
        // RLE run longer than the chunk.
        let mut rle = Vec::new();
        write_varint(&mut rle, 5);
        write_varint(&mut rle, 1000);
        assert!(decode_chunk_body(ENC_CHUNK_RLE, &rle, 10).is_err());
        // RLE zero-length run.
        let mut rle0 = Vec::new();
        write_varint(&mut rle0, 5);
        write_varint(&mut rle0, 0);
        assert!(decode_chunk_body(ENC_CHUNK_RLE, &rle0, 10).is_err());
        // Value exceeding u32.
        let mut big = Vec::new();
        write_varint(&mut big, u64::from(u32::MAX) + 1);
        assert!(decode_chunk_body(ENC_CHUNK_CONST, &big, 3).is_err());
        // FOR with an offset overflowing u32.
        let mut fr = Vec::new();
        write_varint(&mut fr, u32::MAX as u64);
        fr.push(1);
        fr.push(0xff);
        assert!(decode_chunk_body(ENC_CHUNK_FOR, &fr, 8).is_err());
        // Wrong packed length.
        let mut fr2 = Vec::new();
        write_varint(&mut fr2, 0);
        fr2.push(8);
        fr2.extend_from_slice(&[0; 3]);
        assert!(decode_chunk_body(ENC_CHUNK_FOR, &fr2, 8).is_err());
        // Trailing bytes.
        let (enc, mut body) = encode_chunk(&[1, 2, 3]);
        body.push(0);
        assert!(decode_chunk_body(enc, &body, 3).is_err());
    }

    #[test]
    fn bloom_finds_members_and_prunes_absent() {
        let vals: Vec<u32> = (0..10_000u32).map(|i| i * 7).collect();
        let bloom = Bloom::build(&vals);
        for &v in vals.iter().step_by(97) {
            assert!(bloom.may_contain(v));
        }
        // False-positive rate over absent keys stays well under 50 %.
        let fp = (0..10_000u32)
            .map(|i| i * 7 + 3)
            .filter(|&v| bloom.may_contain(v))
            .count();
        assert!(fp < 5_000, "implausible Bloom FP count {fp}");
        // Serialization roundtrip.
        let mut buf = Vec::new();
        bloom.write(&mut buf);
        let mut pos = 0;
        let back = Bloom::read(&buf, &mut pos).unwrap();
        assert_eq!(back, bloom);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn compressed_table_materialize_matches_source() {
        let schema = Schema::new(["s", "o"]);
        let s: Vec<u32> = (0..10_000).map(|i| i / 3).collect();
        let o = lcg(10_000, 1 << 20, 3);
        let table = Table::from_columns(schema, vec![s, o]);
        for chunk_rows in [64, 1000, 4096, 1 << 20] {
            let ct = CompressedTable::from_table(
                &table,
                &WriteOptions {
                    chunk_rows,
                    bloom: true,
                },
            );
            assert_eq!(*ct.materialize().unwrap(), table, "chunk_rows {chunk_rows}");
        }
    }

    #[test]
    fn scan_chunks_matches_full_scan() {
        let schema = Schema::new(["s", "o"]);
        // Sorted subjects → tight zone maps; random objects.
        let s: Vec<u32> = (0..20_000).map(|i| i / 4).collect();
        let o = lcg(20_000, 1 << 16, 7);
        let table = Table::from_columns(schema, vec![s.clone(), o.clone()]);
        let ct = CompressedTable::from_table(&table, &WriteOptions::default());

        // Bound subject: only one chunk's zone map can contain it.
        let (cols, rows, stats) = scan_chunks(&ct, &[(0, 1234)], &[], &[1], None).unwrap();
        let expect: Vec<u32> = (0..20_000)
            .filter(|&i| s[i] == 1234)
            .map(|i| o[i])
            .collect();
        assert_eq!(cols[0], expect);
        assert_eq!(rows, expect.len());
        assert!(stats.chunks_pruned > 0, "no chunks pruned: {stats:?}");
        assert_eq!(stats.chunks_pruned + stats.chunks_decoded, ct.num_chunks());

        // Out-of-range constant prunes everything.
        let (_, rows, stats) = scan_chunks(&ct, &[(0, 9_999_999)], &[], &[1], None).unwrap();
        assert_eq!(rows, 0);
        assert_eq!(stats.chunks_decoded, 0);

        // Repeated-variable scan (s == o) with no bound constant.
        let (cols, _, _) = scan_chunks(&ct, &[], &[(0, 1)], &[0], None).unwrap();
        let expect: Vec<u32> = (0..20_000)
            .filter(|&i| s[i] == o[i])
            .map(|i| s[i])
            .collect();
        assert_eq!(cols[0], expect);
    }

    #[test]
    fn sideways_filter_prunes_chunks_and_rows() {
        let schema = Schema::new(["s", "o"]);
        let s: Vec<u32> = (0..20_000).map(|i| i as u32).collect();
        let o: Vec<u32> = (0..20_000).map(|i| (i as u32) ^ 1).collect();
        let table = Table::from_columns(schema, vec![s.clone(), o]);
        let ct = CompressedTable::from_table(&table, &WriteOptions::default());
        // Build side holds keys 100..200 → every chunk past the first is
        // zone-pruned.
        let keys: Vec<u32> = (100..200).collect();
        let f = SidewaysFilter::build(&keys).unwrap();
        let (cols, rows, stats) = scan_chunks(&ct, &[], &[], &[0], Some((0, &f))).unwrap();
        assert!(stats.chunks_pruned > 0);
        assert_eq!(rows, cols[0].len());
        // Every build key survives (no false negatives)…
        for k in &keys {
            assert!(cols[0].contains(k), "sideways filter dropped key {k}");
        }
        // …and the survivor set is a small superset of the true keys.
        assert!(rows >= keys.len() && rows < 5_000, "rows {rows}");
    }

    #[test]
    fn estimate_eq_rows_uses_zone_maps() {
        let schema = Schema::new(["s", "o"]);
        let s: Vec<u32> = (0..20_000).map(|i| i as u32).collect(); // distinct
        let o: Vec<u32> = (0..20_000).map(|i| i / 100).collect();
        let table = Table::from_columns(schema, vec![s, o]);
        let ct = CompressedTable::from_table(&table, &WriteOptions::default());
        // Distinct column: estimate collapses to 1 (one surviving chunk,
        // all-distinct).
        assert_eq!(ct.estimate_eq_rows(0, 5000), 1);
        // Absent value: zone maps (or Bloom) report 0.
        assert_eq!(ct.estimate_eq_rows(0, 1 << 30), 0);
        // Non-distinct column: bounded by the surviving chunks' rows.
        let est = ct.estimate_eq_rows(1, 42);
        assert!(est >= 100 && est <= ct.num_rows(), "est {est}");
    }
}
